"""Tables 6–7: equivalent search terms and the Google study design.

Table 6 shows sample TaskRabbit queries with their five Keyword-Planner
formulations; Table 7 the number of study locations per query category
(yard work 4, general cleaning 3, event staffing / moving / run errand 1).
"""

from __future__ import annotations

from _util import emit
from repro.experiments.report import render_table
from repro.searchengine.keyword_planner import term_variants
from repro.searchengine.study import paper_design

_TABLE7_PAPER = {
    "yard work": 4,
    "general cleaning": 3,
    "event staffing": 1,
    "moving job": 1,
    "run errand": 1,
}


def _render_table6() -> str:
    rows = []
    for query in ("run errand", "yard work"):
        for term in term_variants(query):
            rows.append((query, term))
    return render_table(
        "Table 6 — equivalent Google search terms", ("query", "search term"), rows
    )


def _render_table7() -> str:
    counts = paper_design().locations_per_query()
    rows = [
        (query, float(counts[query]), float(_TABLE7_PAPER[query]))
        for query in _TABLE7_PAPER
    ]
    return render_table(
        "Table 7 — locations per job", ("job", "measured", "paper"), rows, decimals=0
    )


def test_table06_keyword_variants(benchmark):
    emit("table06_keyword_variants", _render_table6())
    benchmark(term_variants, "general cleaning")


def test_table07_study_design(benchmark):
    emit("table07_study_design", _render_table7())
    benchmark(lambda: paper_design().locations_per_query())
