"""Resize under load — what a live shard-pool resize costs the clients.

``POST /v1/admin/shards`` grows or shrinks the forked-worker pool while
the service keeps answering: moving datasets drain, migrate their full
write-path state, and flip routing atomically, while requests that land
inside a dataset's migration window wait a short grace period and then —
writes only — get a retryable 503 (``shard_resizing``).  This benchmark
prices that promise from the client's chair, once per storage core:

* ``STREAMS`` no-retry clients hammer ``/v1/quantify`` across the catalog
  while the pool resizes 2→4 and back 4→2 under them;
* every request is timed — the table reports p50/p99 both for the whole
  run and for requests that overlapped a resize;
* every 503 is timestamped — the "503 window" is the span from the first
  to the last one, i.e. how long the retryable blip actually lasts (the
  production client retries through it invisibly; retries are disabled
  here precisely to make the window measurable);
* any *other* failure is a hard failure, asserted to be zero.

Runnable two ways:

* ``pytest benchmarks/bench_resize_under_load.py`` (CI quick mode via
  ``BENCH_QUICK=1``);
* ``python benchmarks/bench_resize_under_load.py [--quick]`` directly.

Writes ``benchmarks/results/resize_under_load.txt``.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
from pathlib import Path
from time import monotonic

sys.path.insert(0, str(Path(__file__).parent))

from _util import emit  # noqa: E402

from repro.client import ClientError, FBoxClient, RetryPolicy  # noqa: E402
from repro.experiments.datasets import (  # noqa: E402
    build_taskrabbit_dataset,
    build_taskrabbit_site,
)
from repro.marketplace.crawl import emit_observations  # noqa: E402
from repro.service.registry import SMALL_CITIES, DatasetRegistry, DatasetSpec  # noqa: E402
from repro.service.server import make_server  # noqa: E402

DATASETS = 4
STREAMS = 3
CORES = ("dict", "columnar")
BASE_SHARDS = 2
GROWN_SHARDS = 4
# Traffic runs the whole time; the resizes fire at these offsets so the
# table can split latency into quiet vs mid-resize populations.
WARM_SECONDS = 1.0
SETTLE_SECONDS = 1.0
QUICK_WARM_SECONDS = 0.4
QUICK_SETTLE_SECONDS = 0.4

_QUERY = {"dimension": "group", "k": 5}


def _catalog() -> dict[str, object]:
    # "cat-1" and "cat-2" change ring owner between 2 and 4 shards, so the
    # 2→4→2 round trip migrates real state in both directions (a catalog
    # whose names happen to keep their owners would price nothing).
    return {
        f"cat-{index}": build_taskrabbit_dataset(
            seed=500 + index, cities=SMALL_CITIES
        )
        for index in range(DATASETS)
    }


def _registry(datasets: dict[str, object]) -> DatasetRegistry:
    registry = DatasetRegistry()
    for name, dataset in datasets.items():
        registry.register(
            DatasetSpec(
                name=name,
                site="taskrabbit",
                loader=lambda d=dataset: d,
                description="seeded crawl for the resize bench",
            )
        )
    return registry


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def _run_core(core: str, warm: float, settle: float) -> dict:
    """One full traffic run with a 2→4→2 resize in the middle of it."""
    datasets = _catalog()
    server = make_server(
        registry=_registry(datasets),
        port=0,
        request_timeout=120.0,
        max_concurrency=0,
        cache_size=0,  # every request exercises the owning worker
        shards=BASE_SHARDS,
        core=core,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    names = list(datasets)
    start = monotonic()
    # One (relative_time, latency) per success; one relative_time per 503.
    latencies: list[tuple[float, float]] = []
    blips: list[float] = []
    hard_failures: list[str] = []
    resize_spans: list[tuple[float, float, int]] = []
    stop = threading.Event()
    lock = threading.Lock()

    def no_retry_client() -> FBoxClient:
        return FBoxClient(
            server.url, timeout=120.0, retry=RetryPolicy(max_attempts=1)
        )

    def stream(index: int) -> None:
        client = no_retry_client()
        position = index
        try:
            while not stop.is_set():
                began = monotonic()
                try:
                    client.quantify(names[position % len(names)], **_QUERY)
                except ClientError as error:
                    with lock:
                        if error.status == 503:
                            blips.append(began - start)
                        else:
                            hard_failures.append(repr(error))
                else:
                    with lock:
                        latencies.append((began - start, monotonic() - began))
                position += 1
        finally:
            client.close()

    try:
        # Warm every dataset (cube + families build on first touch) and
        # seed the write path so the resize migrates a real journal.
        warm_client = FBoxClient(server.url, timeout=120.0)
        site = build_taskrabbit_site(seed=500)
        for position, name in enumerate(names):
            warm_client.quantify(name, **_QUERY)
            batch = next(
                emit_observations(
                    site, datasets[name], batches=1, batch_size=4, seed=position
                )
            )
            warm_client.ingest(name, batch, batch_id=f"bench-{name}")

        workers = [
            threading.Thread(target=stream, args=(index,), daemon=True)
            for index in range(STREAMS)
        ]
        for worker in workers:
            worker.start()
        stop.wait(warm)
        for count in (GROWN_SHARDS, BASE_SHARDS):
            began = monotonic()
            outcome = warm_client.resize(count)
            ended = monotonic()
            assert outcome["to"] == count and not outcome["noop"], outcome
            resize_spans.append(
                (began - start, ended - start, len(outcome["migrated"]))
            )
            stop.wait(settle)
        stop.set()
        for worker in workers:
            worker.join(timeout=30)
        # The migrated idempotency ledger must still answer the seeded
        # batches as replays after the round trip.
        for position, name in enumerate(names):
            batch = next(
                emit_observations(
                    site, datasets[name], batches=1, batch_size=4, seed=position
                )
            )
            document = warm_client.ingest(name, batch, batch_id=f"bench-{name}")
            assert document["replayed"] is True, (name, document)
        warm_client.close()
    finally:
        stop.set()
        server.shutdown()
        thread.join(timeout=10)
        server.server_close()

    in_resize = [
        lat
        for when, lat in latencies
        if any(begin <= when <= end for begin, end, _ in resize_spans)
    ]
    overall = sorted(lat for _, lat in latencies)
    mid = sorted(in_resize)
    return {
        "core": core,
        "requests": len(latencies),
        "p50_ms": _percentile(overall, 0.50) * 1e3,
        "p99_ms": _percentile(overall, 0.99) * 1e3,
        "mid_requests": len(mid),
        "mid_p50_ms": _percentile(mid, 0.50) * 1e3,
        "mid_p99_ms": _percentile(mid, 0.99) * 1e3,
        "blips": len(blips),
        "blip_window_ms": (max(blips) - min(blips)) * 1e3 if blips else 0.0,
        "resize_seconds": [end - begin for begin, end, _ in resize_spans],
        "migrated": [moved for _, _, moved in resize_spans],
        "hard_failures": hard_failures,
    }


def run_resize_under_load(quick: bool = False) -> dict[str, dict]:
    warm = QUICK_WARM_SECONDS if quick else WARM_SECONDS
    settle = QUICK_SETTLE_SECONDS if quick else SETTLE_SECONDS
    results = {core: _run_core(core, warm, settle) for core in CORES}

    lines = [
        "Resize under load — client-side cost of a live 2→4→2 pool resize",
        f"({STREAMS} no-retry client streams over {DATASETS} datasets; "
        "cache off;",
        " '503 window' spans first→last shard_resizing blip"
        + ("; quick mode)" if quick else ")"),
        "=" * 70,
        "",
        f"{'core':>8} {'reqs':>6} {'p50 ms':>8} {'p99 ms':>8} "
        f"{'mid-resize p50/p99 ms':>22} {'503s':>5} {'window ms':>10}",
        f"{'-' * 8} {'-' * 6} {'-' * 8} {'-' * 8} {'-' * 22} "
        f"{'-' * 5} {'-' * 10}",
    ]
    for core, row in results.items():
        mid = f"{row['mid_p50_ms']:.1f} / {row['mid_p99_ms']:.1f}"
        lines.append(
            f"{core:>8} {row['requests']:>6} {row['p50_ms']:>8.1f} "
            f"{row['p99_ms']:>8.1f} {mid:>22} {row['blips']:>5} "
            f"{row['blip_window_ms']:>10.1f}"
        )
    for core, row in results.items():
        durations = ", ".join(f"{value:.3f}s" for value in row["resize_seconds"])
        lines.append("")
        lines.append(
            f"{core}: resize durations {durations}; datasets moved "
            f"{row['migrated']}; {row['mid_requests']} requests overlapped "
            "a resize"
        )
    lines += [
        "",
        "Retries are disabled to expose the 503 window; the production",
        "FBoxClient retries those blips transparently (Retry-After led),",
        "so callers with the default policy observe zero failures — the",
        "property tests/test_service_resize.py asserts directly.",
    ]
    emit("resize_under_load", "\n".join(lines))

    for core, row in results.items():
        # The availability contract: nothing but retryable 503s, ever.
        assert row["hard_failures"] == [], (core, row["hard_failures"])
        assert row["requests"] > 0, core
        # Both resizes must have actually moved state (see _catalog).
        assert all(moved > 0 for moved in row["migrated"]), row["migrated"]
    return results


def test_resize_under_load():
    run_resize_under_load(quick=os.environ.get("BENCH_QUICK") == "1")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="short warm/settle windows (the CI configuration)",
    )
    arguments = parser.parse_args()
    run_resize_under_load(quick=arguments.quick)
