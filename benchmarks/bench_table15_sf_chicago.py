"""Table 15: SF Bay Area vs Chicago across General Cleaning sub-jobs (EMD).

Paper shape: San Francisco is the fairer of the two for General Cleaning
overall, but the trend inverts for Back To Organized, Organize & Declutter
and Organize Closet.
"""

from __future__ import annotations

from _util import emit
from repro.experiments.comparison import table15_locations_by_subjob
from repro.experiments.report import render_comparison

_PAPER_SUBJECTS = ("Back To Organized", "Organize & Declutter", "Organize Closet")


def test_table15_sf_chicago(benchmark):
    report = table15_locations_by_subjob()
    text = render_comparison(
        "Table 15 — SF Bay Area vs Chicago, General Cleaning sub-jobs (EMD); "
        f"paper reverses: {', '.join(_PAPER_SUBJECTS)}",
        report,
    )
    emit("table15_sf_chicago", text)
    benchmark(table15_locations_by_subjob)
