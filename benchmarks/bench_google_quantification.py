"""§5.2.2: Google job search fairness quantification.

Headline shape: White Females are the most discriminated against and Black
Males the least (their results diverge most/least); Washington, DC is the
fairest location and London, UK the unfairest; Yard Work queries are the
most unfair and Furniture Assembly the fairest — under both Kendall Tau and
Jaccard.
"""

from __future__ import annotations

import pytest

from _util import emit, paper_vs_measured
from repro.experiments.quantification import (
    google_fbox,
    google_group_ranking,
    google_location_ranking,
    google_query_ranking,
)

@pytest.mark.parametrize("measure", ["kendall", "jaccard"])
def test_google_group_quantification(benchmark, measure):
    rows = [(row.member, row.value) for row in google_group_ranking(measure)]
    emit(
        f"google_groups_{measure}",
        paper_vs_measured(
            f"§5.2.2 — Google group unfairness ({measure}); paper: White Female "
            "most, Black Male least",
            rows,
            None,
            "group",
        ),
    )
    fbox = google_fbox(measure)
    benchmark(fbox.quantify, "group", 11)


@pytest.mark.parametrize("measure", ["kendall", "jaccard"])
def test_google_location_quantification(benchmark, measure):
    rows = [(row.member, row.value) for row in google_location_ranking(measure)]
    emit(
        f"google_locations_{measure}",
        paper_vs_measured(
            f"§5.2.2 — Google location unfairness ({measure}); paper: London "
            "unfairest, Washington DC fairest",
            rows,
            None,
            "location",
        ),
    )
    fbox = google_fbox(measure)
    benchmark(fbox.quantify, "location", 12)


@pytest.mark.parametrize("measure", ["kendall", "jaccard"])
def test_google_query_quantification(benchmark, measure):
    rows = [(row.member, row.value) for row in google_query_ranking(measure)]
    emit(
        f"google_queries_{measure}",
        paper_vs_measured(
            f"§5.2.2 — Google query unfairness ({measure}); paper: Yard Work "
            "most unfair, Furniture Assembly fairest",
            rows,
            None,
            "query",
        ),
    )
    benchmark(google_query_ranking, measure)
