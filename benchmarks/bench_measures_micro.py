"""Microbenchmarks of the four unfairness measures.

Besides the per-measure latency probes, this module prices the vectorized
kernels against their loop-based reference implementations (the executable
specifications the fast paths are equivalence-checked against) and gates
the rewrite's reason to exist: the Kendall ``K^(p)`` kernel must beat its
reference by at least 2x on realistic list sizes.  Writes
``benchmarks/results/measures_micro.txt``.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np
import pytest

from _util import emit
from repro.core.measures.emd import emd_from_values, emd_from_values_reference
from repro.core.measures.exposure import exposure_deviation
from repro.core.measures.jaccard import JaccardMeasure
from repro.core.measures.kendall import (
    kendall_tau_distance,
    kendall_tau_distance_reference,
)
from repro.core.rankings import RankedList
from repro.experiments.report import render_table

KENDALL_SPEEDUP_FLOOR = 2.0

_RNG = np.random.default_rng(0)
_LEFT = RankedList([f"r{i}" for i in _RNG.permutation(20)])
_RIGHT = RankedList([f"r{i}" for i in _RNG.permutation(24)[:20]])
_RANKING = RankedList([f"w{i}" for i in range(50)])
_GROUP = [f"w{i}" for i in range(40, 50)]
_OTHERS = {"rest": [f"w{i}" for i in range(40)]}
_SCORES_A = list(_RNG.uniform(0.0, 0.6, size=12))
_SCORES_B = list(_RNG.uniform(0.3, 1.0, size=30))


def test_kendall_micro(benchmark):
    value = benchmark(kendall_tau_distance, _LEFT, _RIGHT)
    assert 0.0 <= value <= 1.0


def test_jaccard_micro(benchmark):
    measure = JaccardMeasure()
    value = benchmark(measure, _LEFT, _RIGHT)
    assert 0.0 <= value <= 1.0


def test_emd_micro(benchmark):
    value = benchmark(emd_from_values, _SCORES_A, _SCORES_B)
    assert 0.0 <= value <= 1.0


def test_exposure_micro(benchmark):
    value = benchmark(exposure_deviation, _RANKING, _GROUP, _OTHERS)
    assert value >= 0.0


# ----------------------------------------------------------------------
# Vectorized kernels vs their reference implementations
# ----------------------------------------------------------------------


def _best_seconds(fn, *args, loops: int = 20, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = perf_counter()
        for _ in range(loops):
            fn(*args)
        best = min(best, (perf_counter() - started) / loops)
    return best


def test_kernels_vs_reference():
    """The columnar-core PR's measure-kernel gate: the vectorized Kendall
    kernel must be >= 2x its case-by-case reference on 200-item lists, and
    both fast paths must agree with their references to the last bit."""
    rng = np.random.default_rng(1)
    left = RankedList([f"r{i}" for i in rng.permutation(200)])
    right = RankedList([f"r{i}" for i in rng.permutation(240)[:200]])
    scores_a = list(rng.uniform(0.0, 0.6, size=300))
    scores_b = list(rng.uniform(0.3, 1.0, size=500))

    assert kendall_tau_distance(left, right) == (
        kendall_tau_distance_reference(left, right)
    )
    assert emd_from_values(scores_a, scores_b) == (
        emd_from_values_reference(scores_a, scores_b)
    )

    kendall_fast = _best_seconds(kendall_tau_distance, left, right)
    kendall_ref = _best_seconds(
        kendall_tau_distance_reference, left, right, loops=3
    )
    emd_fast = _best_seconds(emd_from_values, scores_a, scores_b, loops=50)
    emd_ref = _best_seconds(
        emd_from_values_reference, scores_a, scores_b, loops=50
    )
    kendall_speedup = kendall_ref / kendall_fast
    emd_speedup = emd_ref / emd_fast
    emit(
        "measures_micro",
        render_table(
            "Vectorized measure kernels vs reference implementations"
            " (best-of timings)",
            ("kernel", "fast us", "reference us", "speedup"),
            [
                (
                    "kendall n=200",
                    kendall_fast * 1e6,
                    kendall_ref * 1e6,
                    kendall_speedup,
                ),
                ("emd 300v500", emd_fast * 1e6, emd_ref * 1e6, emd_speedup),
            ],
            decimals=2,
        ),
    )
    assert kendall_speedup >= KENDALL_SPEEDUP_FLOOR, (
        f"kendall kernel is only {kendall_speedup:.2f}x its reference "
        f"(floor {KENDALL_SPEEDUP_FLOOR}x)"
    )
    assert emd_speedup > 0.8, (
        f"the fast EMD path regressed below its reference "
        f"({emd_speedup:.2f}x)"
    )
