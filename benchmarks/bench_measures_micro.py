"""Microbenchmarks of the four unfairness measures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.measures.emd import emd_from_values
from repro.core.measures.exposure import exposure_deviation
from repro.core.measures.jaccard import JaccardMeasure
from repro.core.measures.kendall import kendall_tau_distance
from repro.core.rankings import RankedList

_RNG = np.random.default_rng(0)
_LEFT = RankedList([f"r{i}" for i in _RNG.permutation(20)])
_RIGHT = RankedList([f"r{i}" for i in _RNG.permutation(24)[:20]])
_RANKING = RankedList([f"w{i}" for i in range(50)])
_GROUP = [f"w{i}" for i in range(40, 50)]
_OTHERS = {"rest": [f"w{i}" for i in range(40)]}
_SCORES_A = list(_RNG.uniform(0.0, 0.6, size=12))
_SCORES_B = list(_RNG.uniform(0.3, 1.0, size=30))


def test_kendall_micro(benchmark):
    value = benchmark(kendall_tau_distance, _LEFT, _RIGHT)
    assert 0.0 <= value <= 1.0


def test_jaccard_micro(benchmark):
    measure = JaccardMeasure()
    value = benchmark(measure, _LEFT, _RIGHT)
    assert 0.0 <= value <= 1.0


def test_emd_micro(benchmark):
    value = benchmark(emd_from_values, _SCORES_A, _SCORES_B)
    assert 0.0 <= value <= 1.0


def test_exposure_micro(benchmark):
    value = benchmark(exposure_deviation, _RANKING, _GROUP, _OTHERS)
    assert value >= 0.0
