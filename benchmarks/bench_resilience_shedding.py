"""Overload shedding: p99 of accepted requests with admission control on vs off.

Boots two identical F-Box servers (small six-city TaskRabbit dataset) whose
``/quantify`` handler burns a fixed slice of thread-CPU per request via the
deterministic fault injector — real, GIL-contending work, so N concurrent
requests genuinely demand N × burn of interpreter time.  Both servers then
take the same 4x-capacity storm of simultaneous clients:

* **shedding on** — ``max_concurrency=2, queue_depth=4``: at most six
  requests ever share the interpreter; the rest get an immediate 429 with
  ``Retry-After``.  The p99 of *accepted* requests stays near
  ``(cap + queue) / cap × burn``.
* **shedding off** — ``max_concurrency=0``: every request executes at once
  and they all fight for the GIL, so everyone's latency grows with the whole
  backlog.

Writes ``benchmarks/results/resilience_shedding.txt`` and asserts the
headline claim: under overload, shedding keeps the accepted-request p99
strictly below the no-admission server's p99.
"""

from __future__ import annotations

import json
import math
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter

from _util import emit
from repro.experiments.datasets import build_taskrabbit_dataset
from repro.service.faults import FaultInjector, FaultRule
from repro.service.registry import SMALL_CITIES, DatasetRegistry, DatasetSpec
from repro.service.server import make_server

CLIENTS = 24
BURN_SECONDS = 0.03  # thread-CPU burned per storm request
DEADLINE = 10.0
CAP, QUEUE = 2, 4

_PAYLOAD = {"dataset": "taskrabbit", "dimension": "group", "k": 3}


def _injector() -> FaultInjector:
    # skip=1 exempts the warm-up request; every storm request burns CPU.
    return FaultInjector(
        [FaultRule(site="latency", match="/quantify", skip=1, busy=BURN_SECONDS)],
        seed=1,
    )


def _post(base: str) -> tuple[float, int]:
    request = urllib.request.Request(
        base + "/v1/quantify",
        data=json.dumps(_PAYLOAD).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    started = perf_counter()
    try:
        with urllib.request.urlopen(request) as response:
            status = response.status
            response.read()
    except urllib.error.HTTPError as error:
        status = error.code
        error.read()
    return perf_counter() - started, status


def _storm(base: str) -> tuple[list[float], list[int]]:
    barrier = threading.Barrier(CLIENTS)

    def one(_) -> tuple[float, int]:
        barrier.wait()
        return _post(base)

    with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
        outcomes = list(pool.map(one, range(CLIENTS)))
    return [d for d, _ in outcomes], [s for _, s in outcomes]


def _p99(values: list[float]) -> float:
    ranked = sorted(values)
    return ranked[max(0, math.ceil(0.99 * len(ranked)) - 1)]


def _run_server(dataset, max_concurrency: int):
    registry = DatasetRegistry()
    registry.register(
        DatasetSpec(name="taskrabbit", site="taskrabbit", loader=lambda: dataset)
    )
    server = make_server(
        registry=registry,
        port=0,
        request_timeout=DEADLINE,
        max_concurrency=max_concurrency,
        queue_depth=QUEUE,
        faults=_injector(),
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def _measure(dataset, max_concurrency: int) -> dict:
    server, thread = _run_server(dataset, max_concurrency)
    try:
        duration, status = _post(server.url)  # warm-up: build cube, fill cache
        assert status == 200
        durations, statuses = _storm(server.url)
        accepted = [d for d, s in zip(durations, statuses) if s == 200]
        return {
            "accepted": len(accepted),
            "shed": statuses.count(429),
            "p99_accepted": _p99(accepted),
            "max_latency": max(durations),
            "statuses": sorted(set(statuses)),
        }
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def test_resilience_shedding():
    dataset = build_taskrabbit_dataset(seed=7, cities=SMALL_CITIES)

    shedding = _measure(dataset, max_concurrency=CAP)
    unbounded = _measure(dataset, max_concurrency=0)

    lines = [
        "Overload shedding under a 4x-capacity storm "
        f"({CLIENTS} simultaneous clients, {BURN_SECONDS * 1000:.0f}ms "
        "thread-CPU burned per request)",
        "",
        f"{'':24}{'shedding on':>14}{'shedding off':>14}",
        f"{'concurrency cap':24}{CAP:>14}{'unbounded':>14}",
        f"{'queue depth':24}{QUEUE:>14}{'—':>14}",
        f"{'accepted (200)':24}{shedding['accepted']:>14}{unbounded['accepted']:>14}",
        f"{'shed (429)':24}{shedding['shed']:>14}{unbounded['shed']:>14}",
        f"{'p99 accepted (s)':24}{shedding['p99_accepted']:>14.4f}"
        f"{unbounded['p99_accepted']:>14.4f}",
        f"{'max latency (s)':24}{shedding['max_latency']:>14.4f}"
        f"{unbounded['max_latency']:>14.4f}",
        "",
        "Shedding keeps the p99 of accepted requests bounded by "
        "(cap + queue) / cap x burn; the unbounded server's latency grows "
        "with the whole backlog.",
    ]
    emit("resilience_shedding", "\n".join(lines))

    # The headline claims, asserted so a regression fails the bench run.
    assert shedding["statuses"] == [200, 429] or shedding["statuses"] == [200]
    assert unbounded["accepted"] == CLIENTS
    assert shedding["shed"] >= CLIENTS // 2
    assert shedding["max_latency"] < DEADLINE + 2.0
    assert unbounded["max_latency"] < DEADLINE + 2.0
    assert shedding["p99_accepted"] < unbounded["p99_accepted"]
