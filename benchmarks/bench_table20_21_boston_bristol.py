"""Tables 20–21: Boston vs Bristol across General Cleaning search terms.

Paper shape: Bristol is less fair than Boston for general cleaning overall,
but for the "office cleaning jobs" and "private cleaning jobs" term
variants the comparison reverses — consistently under Kendall and Jaccard
(the paper notes the two measures agree here).
"""

from __future__ import annotations

import pytest

from _util import emit
from repro.experiments.comparison import table20_21_locations_by_term
from repro.experiments.report import render_comparison

_TABLE = {"kendall": 20, "jaccard": 21}


@pytest.mark.parametrize("measure", ["kendall", "jaccard"])
def test_table20_21_boston_bristol(benchmark, measure):
    report = table20_21_locations_by_term(measure)
    text = render_comparison(
        f"Table {_TABLE[measure]} — Boston vs Bristol, cleaning terms "
        f"({measure}); paper reverses office/private cleaning jobs",
        report,
    )
    emit(f"table{_TABLE[measure]}_boston_bristol_{measure}", text)
    benchmark(table20_21_locations_by_term, measure)
