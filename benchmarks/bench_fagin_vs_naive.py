"""The algorithmic claim: Fagin-style TA vs the exhaustive baseline.

Sweeps cube sizes and k, comparing wall-clock and access counts.  The TA's
advantage is skew-dependent: on skewed unfairness distributions (the
realistic case — a few groups dominate) it terminates after a few rounds
with far fewer random accesses than the naive full scan.
"""

from __future__ import annotations

import numpy as np
import pytest

from time import perf_counter

from _util import emit
from repro.core.cube import UnfairnessCube
from repro.core.fagin import naive_top_k, top_k
from repro.core.groups import Group
from repro.core.indices import InvertedIndex, build_family
from repro.experiments.report import render_table


def _skewed_cube(n_members: int, n_queries: int, n_locations: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    groups = [Group({"gender": f"g{i}"}) for i in range(n_members)]
    queries = [f"q{i}" for i in range(n_queries)]
    locations = [f"l{i}" for i in range(n_locations)]
    # Zipf-like per-group levels plus small per-cell noise: realistic skew.
    levels = 1.0 / (1.0 + np.arange(n_members)) ** 0.7
    values = levels[:, None, None] * 0.8 + rng.uniform(
        0.0, 0.1, size=(n_members, n_queries, n_locations)
    )
    return UnfairnessCube(groups, queries, locations, np.clip(values, 0.0, 1.0))


def _access_report() -> str:
    rows = []
    for n_members in (20, 100, 400):
        cube = _skewed_cube(n_members, 8, 8)
        result = top_k(cube, "group", 5)
        full_scan = n_members * 8 * 8
        rows.append(
            (
                f"|G|={n_members}",
                float(result.stats.sorted_accesses),
                float(result.stats.random_accesses),
                float(full_scan),
                "yes" if result.early_stopped else "no",
            )
        )
    return render_table(
        "Threshold algorithm access counts (k=5, skewed cube)",
        ("size", "sorted acc", "random acc", "naive cells", "early stop"),
        rows,
        decimals=0,
    )


def test_access_counts_summary(benchmark):
    emit("fagin_access_counts", _access_report())
    cube = _skewed_cube(100, 8, 8)
    family = build_family(cube, "group")
    benchmark(top_k, cube, "group", 5, "most", family)


@pytest.mark.parametrize("n_members", [50, 200])
def test_fagin_topk(benchmark, n_members):
    cube = _skewed_cube(n_members, 8, 8)
    family = build_family(cube, "group")
    result = benchmark(top_k, cube, "group", 5, "most", family)
    assert len(result.entries) == 5


@pytest.mark.parametrize("n_members", [50, 200])
def test_naive_topk(benchmark, n_members):
    cube = _skewed_cube(n_members, 8, 8)
    result = benchmark(naive_top_k, cube, "group", 5)
    assert len(result.entries) == 5


def test_fagin_matches_naive_at_scale():
    cube = _skewed_cube(300, 10, 10, seed=3)
    fagin = top_k(cube, "group", 7)
    naive = naive_top_k(cube, "group", 7)
    assert fagin.keys() == naive.keys()


def _index_of_size(size: int) -> InvertedIndex:
    return InvertedIndex.from_pairs(
        [(f"k{i}", float((i * 7919) % 997) / 997.0) for i in range(size)]
    )


def _probe_seconds(index: InvertedIndex, size: int, probes: int = 20000) -> float:
    """Mean seconds per random access, probing across the whole key range."""
    keys = [f"k{(i * 31) % size}" for i in range(probes)]
    started = perf_counter()
    for key in keys:
        index.random_access(key)
    return (perf_counter() - started) / probes


def test_random_access_is_constant_time(benchmark):
    """The posting-list dict makes random access O(1), as the TA cost model
    assumes.  With the old linear scan a 100x larger list cost ~100x per
    probe; with the dict the ratio stays near 1 (20x is a generous bound
    covering cache effects and timer noise)."""
    small, large = _index_of_size(100), _index_of_size(10_000)
    small_seconds = _probe_seconds(small, 100)
    large_seconds = _probe_seconds(large, 10_000)
    ratio = large_seconds / small_seconds
    emit(
        "random_access_scaling",
        render_table(
            "InvertedIndex.random_access cost vs posting-list size",
            ("size", "ns/probe"),
            [
                ("100", small_seconds * 1e9),
                ("10000", large_seconds * 1e9),
                ("ratio", ratio),
            ],
            decimals=2,
        ),
    )
    assert ratio < 20.0
    benchmark(large.random_access, "k5000")
