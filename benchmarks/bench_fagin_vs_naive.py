"""The algorithmic claim: Fagin-style TA vs the exhaustive baseline.

Sweeps cube sizes and k, comparing wall-clock and access counts.  The TA's
advantage is skew-dependent: on skewed unfairness distributions (the
realistic case — a few groups dominate) it terminates after a few rounds
with far fewer random accesses than the naive full scan.
"""

from __future__ import annotations

import numpy as np
import pytest

from time import perf_counter

from _util import emit
from repro.core.colstore import ColumnarFamily, ColumnarStore
from repro.core.cube import UnfairnessCube
from repro.core.fagin import naive_top_k, top_k
from repro.core.groups import Group
from repro.core.indices import InvertedIndex, build_family
from repro.experiments.report import render_table


def _columnar_family(cube, dimension: str = "group") -> ColumnarFamily:
    store = ColumnarStore.from_cube(cube, [(dimension, True)])
    offsets, perm = store.families[(dimension, True)]
    return ColumnarFamily(cube, dimension, True, offsets, perm)


def _skewed_cube(n_members: int, n_queries: int, n_locations: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    groups = [Group({"gender": f"g{i}"}) for i in range(n_members)]
    queries = [f"q{i}" for i in range(n_queries)]
    locations = [f"l{i}" for i in range(n_locations)]
    # Zipf-like per-group levels plus small per-cell noise: realistic skew.
    levels = 1.0 / (1.0 + np.arange(n_members)) ** 0.7
    values = levels[:, None, None] * 0.8 + rng.uniform(
        0.0, 0.1, size=(n_members, n_queries, n_locations)
    )
    return UnfairnessCube(groups, queries, locations, np.clip(values, 0.0, 1.0))


def _access_report() -> str:
    rows = []
    for n_members in (20, 100, 400):
        cube = _skewed_cube(n_members, 8, 8)
        result = top_k(cube, "group", 5)
        full_scan = n_members * 8 * 8
        rows.append(
            (
                f"|G|={n_members}",
                float(result.stats.sorted_accesses),
                float(result.stats.random_accesses),
                float(full_scan),
                "yes" if result.early_stopped else "no",
            )
        )
    return render_table(
        "Threshold algorithm access counts (k=5, skewed cube)",
        ("size", "sorted acc", "random acc", "naive cells", "early stop"),
        rows,
        decimals=0,
    )


def test_access_counts_summary(benchmark):
    emit("fagin_access_counts", _access_report())
    cube = _skewed_cube(100, 8, 8)
    family = build_family(cube, "group")
    benchmark(top_k, cube, "group", 5, "most", family)


@pytest.mark.parametrize("n_members", [50, 200])
def test_fagin_topk(benchmark, n_members):
    cube = _skewed_cube(n_members, 8, 8)
    family = build_family(cube, "group")
    result = benchmark(top_k, cube, "group", 5, "most", family)
    assert len(result.entries) == 5


@pytest.mark.parametrize("n_members", [50, 200])
def test_naive_topk(benchmark, n_members):
    cube = _skewed_cube(n_members, 8, 8)
    result = benchmark(naive_top_k, cube, "group", 5)
    assert len(result.entries) == 5


@pytest.mark.parametrize("n_members", [50, 200])
def test_fagin_topk_columnar(benchmark, n_members):
    """The same sweep over the columnar core's flat arrays."""
    cube = _skewed_cube(n_members, 8, 8)
    family = _columnar_family(cube)
    result = benchmark(top_k, cube, "group", 5, "most", family)
    assert len(result.entries) == 5


def test_columnar_core_comparison():
    """Dict vs columnar TA, same sweeps: identical results, timed side by
    side.  Writes benchmarks/results/fagin_columnar.txt."""
    rows = []
    for n_members in (50, 200, 400):
        cube = _skewed_cube(n_members, 8, 8)
        dict_family = build_family(cube, "group")
        columnar_family = _columnar_family(cube)
        reference = top_k(cube, "group", 5, "most", dict_family)
        columnar = top_k(cube, "group", 5, "most", columnar_family)
        assert columnar.entries == reference.entries
        assert (
            columnar.stats.sorted_accesses == reference.stats.sorted_accesses
        )
        assert (
            columnar.stats.random_accesses == reference.stats.random_accesses
        )

        def best(family, repeats=5, loops=10):
            best_seconds = float("inf")
            for _ in range(repeats):
                started = perf_counter()
                for _ in range(loops):
                    top_k(cube, "group", 5, "most", family)
                best_seconds = min(
                    best_seconds, (perf_counter() - started) / loops
                )
            return best_seconds

        dict_seconds = best(dict_family)
        columnar_seconds = best(columnar_family)
        rows.append(
            (
                f"|G|={n_members}",
                dict_seconds * 1e6,
                columnar_seconds * 1e6,
                dict_seconds / columnar_seconds,
            )
        )
    emit(
        "fagin_columnar",
        render_table(
            "Threshold algorithm, dict core vs columnar core (k=5, best-of)",
            ("size", "dict us", "columnar us", "speedup"),
            rows,
            decimals=2,
        ),
    )
    # The flat-array sweep must not be slower than dict probing anywhere.
    assert all(speedup > 0.8 for _, _, _, speedup in rows), rows


def test_fagin_matches_naive_at_scale():
    cube = _skewed_cube(300, 10, 10, seed=3)
    fagin = top_k(cube, "group", 7)
    naive = naive_top_k(cube, "group", 7)
    assert fagin.keys() == naive.keys()


def _index_of_size(size: int) -> InvertedIndex:
    return InvertedIndex.from_pairs(
        [(f"k{i}", float((i * 7919) % 997) / 997.0) for i in range(size)]
    )


def _probe_seconds(index: InvertedIndex, size: int, probes: int = 20000) -> float:
    """Mean seconds per random access, probing across the whole key range."""
    keys = [f"k{(i * 31) % size}" for i in range(probes)]
    started = perf_counter()
    for key in keys:
        index.random_access(key)
    return (perf_counter() - started) / probes


def test_random_access_is_constant_time(benchmark):
    """The posting-list dict makes random access O(1), as the TA cost model
    assumes.  With the old linear scan a 100x larger list cost ~100x per
    probe; with the dict the ratio stays near 1 (20x is a generous bound
    covering cache effects and timer noise)."""
    small, large = _index_of_size(100), _index_of_size(10_000)
    small_seconds = _probe_seconds(small, 100)
    large_seconds = _probe_seconds(large, 10_000)
    ratio = large_seconds / small_seconds
    emit(
        "random_access_scaling",
        render_table(
            "InvertedIndex.random_access cost vs posting-list size",
            ("size", "ns/probe"),
            [
                ("100", small_seconds * 1e9),
                ("10000", large_seconds * 1e9),
                ("ratio", ratio),
            ],
            decimals=2,
        ),
    )
    assert ratio < 20.0
    benchmark(large.random_access, "k5000")
