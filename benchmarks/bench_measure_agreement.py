"""Measure-agreement ablation: the paper's consistency claims.

The paper reports that EMD and Exposure "yield the same observations" on
TaskRabbit and that Kendall Tau and Jaccard "report mostly similar results"
on Google.  This benchmark quantifies both claims as Spearman rank
correlations between the per-member orderings of the measure pairs — now
including the FA*IR ranked-group-fairness measure against both marketplace
measures — and sweeps the EMD histogram bin count (DESIGN.md ablation #2).

It also reports the what-if intervention deltas: the mean before/after of
every group-ranking measure when the FA*IR greedy re-ranking and the
Singh & Joachims exposure LP repair the crawl's populated cells, and checks
that the LP's exposure improvement is at least FA*IR's on one dataset.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import spearmanr

from _util import emit
from repro.core.fbox import FBox
from repro.core.attributes import default_schema
from repro.core.groups import Group
from repro.core.interventions import apply_intervention
from repro.core.unfairness import MarketplaceUnfairness
from repro.exceptions import DataError, MeasureError
from repro.experiments.datasets import build_google_dataset, build_taskrabbit_dataset
from repro.experiments.report import render_table

QUICK_CITIES = (
    "Birmingham, UK",
    "Oklahoma City, OK",
    "Chicago, IL",
    "San Francisco, CA",
    "Boston, MA",
    "Seattle, WA",
)


def _ranking_values(fbox, dimension):
    members = fbox.cube.domain(dimension)
    return [fbox.cube.aggregate_for(dimension, member) for member in members]


def _agreement_report(cities=None) -> str:
    schema = default_schema()
    rows = []

    taskrabbit = build_taskrabbit_dataset(level="category", cities=cities)
    marketplace = {
        name: FBox.for_marketplace(taskrabbit, schema, measure=name)
        for name in ("emd", "exposure", "fair")
    }
    pairs = (("emd", "exposure"), ("emd", "fair"), ("exposure", "fair"))
    for left, right in pairs:
        for dimension in ("group", "query", "location"):
            rho, _ = spearmanr(
                _ranking_values(marketplace[left], dimension),
                _ranking_values(marketplace[right], dimension),
            )
            rows.append(
                (f"TaskRabbit {left.upper()}↔{right.upper()} ({dimension}s)",
                 float(rho))
            )

    google = build_google_dataset(design="full")
    kendall = FBox.for_search(google, schema, measure="kendall")
    jaccard = FBox.for_search(google, schema, measure="jaccard")
    for dimension in ("group", "query", "location"):
        rho, _ = spearmanr(
            _ranking_values(kendall, dimension), _ranking_values(jaccard, dimension)
        )
        rows.append((f"Google Kendall↔Jaccard ({dimension}s)", float(rho)))

    return render_table(
        "Measure agreement (Spearman rank correlation)",
        ("measure pair", "rho"),
        rows,
    )


def _populated_cells(engine, group, cap):
    """Up to ``cap`` (ranking, members, populated) triples the group defines."""
    cells = []
    for query in engine.dataset.queries:
        for location in engine.dataset.locations:
            try:
                cells.append(engine.ranked_members(group, query, location))
            except DataError:
                continue
            if len(cells) >= cap:
                return cells
    return cells


def run_intervention_deltas(quick: bool = False) -> str:
    """Mean measure deltas of both interventions over crawl cells.

    Asserts the committed invariant: the exposure LP improves (reduces)
    exposure deviation at least as much as FA*IR does on at least one of
    the crawled datasets.
    """
    schema = default_schema()
    group = Group({"gender": "Female"})
    cap = 6 if quick else 24
    datasets = {
        "TaskRabbit": build_taskrabbit_dataset(
            level="category", cities=QUICK_CITIES if quick else None
        ),
    }
    if not quick:
        datasets["TaskRabbit biased"] = build_taskrabbit_dataset(
            level="category", bias_scale=2.0
        )
    rows = []
    lp_beats_fair_somewhere = False
    for label, dataset in datasets.items():
        engine = MarketplaceUnfairness(dataset, schema, measure="exposure")
        cells = _populated_cells(engine, group, cap)
        improvements = {}
        for intervention in ("fair", "exposure_lp"):
            totals: dict[str, list[float]] = {}
            for ranking, members, populated in cells:
                try:
                    result = apply_intervention(
                        intervention, ranking, members, populated
                    )
                except MeasureError:
                    continue
                for name in result.before:
                    totals.setdefault(name, []).append(0.0)
                    totals[name][-1] = result.before[name] - result.after[name]
                    totals.setdefault(f"{name}:before", []).append(
                        result.before[name]
                    )
                    totals.setdefault(f"{name}:after", []).append(
                        result.after[name]
                    )
            for name in sorted(n for n in totals if ":" not in n):
                rows.append(
                    (
                        f"{label} · {intervention} · {name}",
                        float(np.mean(totals[f"{name}:before"])),
                        float(np.mean(totals[f"{name}:after"])),
                        float(np.mean(totals[name])),
                    )
                )
            improvements[intervention] = float(
                np.mean(totals.get("exposure", [0.0]))
            )
        if improvements["exposure_lp"] >= improvements["fair"] - 1e-12:
            lp_beats_fair_somewhere = True
    assert lp_beats_fair_somewhere, (
        "exposure LP should improve exposure deviation at least as much as "
        f"FA*IR on one dataset; got {rows}"
    )
    return render_table(
        "Intervention deltas (mean over populated cells; improvement = before − after)",
        ("dataset · intervention · measure", "before", "after", "improvement"),
        rows,
    )


def _bin_sweep_report() -> str:
    schema = default_schema()
    taskrabbit = build_taskrabbit_dataset(level="category")
    reference = None
    rows = []
    for bins in (5, 10, 20, 40):
        fbox = FBox.for_marketplace(taskrabbit, schema, measure="emd", bins=bins)
        values = _ranking_values(fbox, "group")
        if reference is None:
            reference = values
            rho = 1.0
        else:
            rho, _ = spearmanr(reference, values)
        rows.append((f"bins={bins}", float(np.mean(values)), float(rho)))
    return render_table(
        "EMD bin-count ablation (group ranking stability vs bins=5)",
        ("setting", "mean unfairness", "rank corr vs first"),
        rows,
    )


def test_measure_agreement(benchmark):
    emit("measure_agreement", _agreement_report())
    schema = default_schema()
    taskrabbit = build_taskrabbit_dataset(level="category")
    fbox = FBox.for_marketplace(taskrabbit, schema, measure="emd")
    fbox.cube
    benchmark(lambda: _ranking_values(fbox, "group"))


def test_emd_bin_sweep(benchmark):
    emit("emd_bin_sweep", _bin_sweep_report())
    benchmark(lambda: None)


def test_intervention_deltas(benchmark):
    emit("intervention_deltas", run_intervention_deltas())
    schema = default_schema()
    taskrabbit = build_taskrabbit_dataset(level="category", cities=QUICK_CITIES)
    engine = MarketplaceUnfairness(taskrabbit, schema, measure="exposure")
    ranking, members, populated = _populated_cells(
        engine, Group({"gender": "Female"}), 1
    )[0]
    benchmark(lambda: apply_intervention("fair", ranking, members, populated))


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="six-city crawl, fewer cells"
    )
    arguments = parser.parse_args()
    cities = QUICK_CITIES if arguments.quick else None
    emit("measure_agreement", _agreement_report(cities=cities))
    emit("intervention_deltas", run_intervention_deltas(quick=arguments.quick))
    print("bench_measure_agreement: OK")
