"""Measure-agreement ablation: the paper's consistency claims.

The paper reports that EMD and Exposure "yield the same observations" on
TaskRabbit and that Kendall Tau and Jaccard "report mostly similar results"
on Google.  This benchmark quantifies both claims as Spearman rank
correlations between the per-member orderings of the measure pairs, and
sweeps the EMD histogram bin count (DESIGN.md ablation #2).
"""

from __future__ import annotations

import numpy as np
from scipy.stats import spearmanr

from _util import emit
from repro.core.fbox import FBox
from repro.core.attributes import default_schema
from repro.experiments.datasets import build_google_dataset, build_taskrabbit_dataset
from repro.experiments.report import render_table


def _ranking_values(fbox, dimension):
    members = fbox.cube.domain(dimension)
    return [fbox.cube.aggregate_for(dimension, member) for member in members]


def _agreement_report() -> str:
    schema = default_schema()
    rows = []

    taskrabbit = build_taskrabbit_dataset(level="category")
    emd = FBox.for_marketplace(taskrabbit, schema, measure="emd")
    exposure = FBox.for_marketplace(taskrabbit, schema, measure="exposure")
    for dimension in ("group", "query", "location"):
        rho, _ = spearmanr(
            _ranking_values(emd, dimension), _ranking_values(exposure, dimension)
        )
        rows.append((f"TaskRabbit EMD↔Exposure ({dimension}s)", float(rho)))

    google = build_google_dataset(design="full")
    kendall = FBox.for_search(google, schema, measure="kendall")
    jaccard = FBox.for_search(google, schema, measure="jaccard")
    for dimension in ("group", "query", "location"):
        rho, _ = spearmanr(
            _ranking_values(kendall, dimension), _ranking_values(jaccard, dimension)
        )
        rows.append((f"Google Kendall↔Jaccard ({dimension}s)", float(rho)))

    return render_table(
        "Measure agreement (Spearman rank correlation)",
        ("measure pair", "rho"),
        rows,
    )


def _bin_sweep_report() -> str:
    schema = default_schema()
    taskrabbit = build_taskrabbit_dataset(level="category")
    reference = None
    rows = []
    for bins in (5, 10, 20, 40):
        fbox = FBox.for_marketplace(taskrabbit, schema, measure="emd", bins=bins)
        values = _ranking_values(fbox, "group")
        if reference is None:
            reference = values
            rho = 1.0
        else:
            rho, _ = spearmanr(reference, values)
        rows.append((f"bins={bins}", float(np.mean(values)), float(rho)))
    return render_table(
        "EMD bin-count ablation (group ranking stability vs bins=5)",
        ("setting", "mean unfairness", "rank corr vs first"),
        rows,
    )


def test_measure_agreement(benchmark):
    emit("measure_agreement", _agreement_report())
    schema = default_schema()
    taskrabbit = build_taskrabbit_dataset(level="category")
    fbox = FBox.for_marketplace(taskrabbit, schema, measure="emd")
    fbox.cube
    benchmark(lambda: _ranking_values(fbox, "group"))


def test_emd_bin_sweep(benchmark):
    emit("emd_bin_sweep", _bin_sweep_report())
    benchmark(lambda: None)
