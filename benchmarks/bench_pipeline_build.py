"""Pipeline-stage timings: crawl, study, cube materialization, indexing.

Times the substrate stages the table benchmarks amortize away, on reduced
scopes so the harness stays quick.
"""

from __future__ import annotations

from repro.core.cube import UnfairnessCube
from repro.core.fbox import FBox
from repro.core.attributes import default_schema
from repro.core.indices import build_family
from repro.core.unfairness import MarketplaceUnfairness
from repro.marketplace.crawl import run_crawl
from repro.marketplace.site import TaskRabbitSite
from repro.searchengine.engine import GoogleJobsEngine
from repro.searchengine.study import StudyDesign, run_study

_CITIES = ["Chicago, IL", "Boston, MA", "Birmingham, UK"]


def test_marketplace_crawl(benchmark):
    site = TaskRabbitSite(seed=29)
    report = benchmark(run_crawl, site, "category", _CITIES)
    assert report.queries_run == 24


def test_google_study(benchmark):
    engine = GoogleJobsEngine(seed=29)
    design = StudyDesign(pairs=(("run errand", "London, UK"),))
    report = benchmark(run_study, engine, design)
    assert report.searches_executed == 90


def test_cube_materialization(benchmark):
    site = TaskRabbitSite(seed=29)
    dataset = run_crawl(site, level="category", cities=_CITIES).dataset
    schema = default_schema()
    engine = MarketplaceUnfairness(dataset, schema, measure="emd")
    fbox = FBox.for_marketplace(dataset, schema)
    cube = benchmark(
        UnfairnessCube.compute, engine, fbox.groups, fbox.queries, fbox.locations
    )
    assert cube.values.size == 11 * 8 * 3


def test_index_family_build(benchmark):
    site = TaskRabbitSite(seed=29)
    dataset = run_crawl(site, level="category", cities=_CITIES).dataset
    fbox = FBox.for_marketplace(dataset, default_schema())
    cube = fbox.cube
    family = benchmark(build_family, cube, "group")
    assert len(family.pair_keys) == 8 * 3
