"""Incremental ingest vs full rebuild — the live write path's reason to exist.

``POST /v1/observations`` folds new rankings into the live F-Box with
:meth:`FBox.apply_observations`: only the dirty ``(query, location)`` cube
columns are recomputed and only the posting lists those columns feed are
re-sorted.  This benchmark prices that delta against the alternative the
service would otherwise pay — re-registering the dataset and rebuilding the
cube plus every hot index family from scratch — at 1% and 10% churn of the
TaskRabbit category crawl, and verifies the delta's whole point: the
incrementally-maintained state is byte-identical to a cold rebuild of the
final dataset.

Writes benchmarks/results/incremental_ingest.txt.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from _util import emit  # noqa: E402

from repro.core.attributes import default_schema  # noqa: E402
from repro.core.cube import UnfairnessCube  # noqa: E402
from repro.core.fbox import FBox  # noqa: E402
from repro.core.indices import refresh_family  # noqa: E402
from repro.data.schema import MarketplaceDataset  # noqa: E402
from repro.experiments.datasets import (  # noqa: E402
    build_taskrabbit_dataset,
    build_taskrabbit_site,
)
from repro.marketplace.crawl import emit_observations  # noqa: E402
from repro.service.ingest import decode_observations  # noqa: E402
from repro.service.registry import SMALL_CITIES  # noqa: E402

SEED = 7
CHURN_LEVELS = (0.01, 0.10)
# The families the service's quantify/compare paths keep hot.
FAMILY_DIMENSIONS = ("group", "query", "location")
REPEATS = 3
QUICK_REPEATS = 2
# The ingest subsystem's acceptance gate: at 1% churn the delta must beat a
# full rebuild by 5x.  Quick mode shrinks the crawl to 48 pairs, where the
# rebuild is only milliseconds, so it gates at 2x to stay timer-noise-proof.
SPEEDUP_FLOOR = 5.0
QUICK_SPEEDUP_FLOOR = 2.0


def _copy(dataset: MarketplaceDataset) -> MarketplaceDataset:
    """A mutation-safe copy (profiles and observations are frozen)."""
    return MarketplaceDataset(
        workers=dataset.workers.values(), observations=dataset.observations()
    )


def _materialize(fbox: FBox) -> FBox:
    """Touch the cube and every hot family, as a serving registry does."""
    fbox.cube
    for dimension in FAMILY_DIMENSIONS:
        fbox.family(dimension, "most")
    return fbox


def _assert_identical(live: FBox, cold: FBox) -> None:
    """The delta-maintenance invariant: live state == cold rebuild, bytewise."""
    assert live.cube.groups == cold.cube.groups
    assert live.cube.queries == cold.cube.queries
    assert live.cube.locations == cold.cube.locations
    assert np.array_equal(live.cube.values, cold.cube.values, equal_nan=True)
    for dimension in FAMILY_DIMENSIONS:
        ours, theirs = live.family(dimension, "most"), cold.family(dimension, "most")
        assert ours.pair_keys == theirs.pair_keys
        for pair in ours.pair_keys:
            assert (
                ours.posting_list(pair).entries == theirs.posting_list(pair).entries
            )


def _coarse_lists(base: MarketplaceDataset, decoded: list) -> int:
    """Lists the coarse dirty-pair predicate would rebuild for this batch.

    The fallback staleness rule (no ``changed`` mask) marks a QUERY- or
    LOCATION-family list stale whenever its column shares a dirty location
    (resp. query) — every group's list, cells touched or not.  The exact
    predicate the live path uses rebuilds only lists whose own cells
    changed; this measures the over-rebuild it eliminates.
    """
    data = _copy(base)
    box = _materialize(FBox.for_marketplace(data, default_schema()))
    old_cube = box.cube
    old_families = {
        dimension: box.family(dimension, "most")
        for dimension in FAMILY_DIMENSIONS
    }
    touched = data.upsert_observations(decoded)
    fresh = UnfairnessCube.compute_delta(
        old_cube, box.engine, data.queries, data.locations, touched
    )
    total = 0
    for dimension in FAMILY_DIMENSIONS:
        _, rebuilt = refresh_family(
            fresh, dimension, True, old_families[dimension], touched
        )
        total += rebuilt
    return total


def _measure(
    base: MarketplaceDataset, site, churn: float, repeats: int
) -> dict[str, float]:
    """Best-of-``repeats`` timings for one churn level, plus delta counters."""
    pair_count = len(base.observations())
    dirty_count = max(1, round(churn * pair_count))
    batch = next(
        emit_observations(
            site,
            base,
            batches=1,
            batch_size=dirty_count,
            seed=SEED + dirty_count,
            swaps=3,
        )
    )
    decoded = decode_observations("taskrabbit", batch)

    incremental_best = float("inf")
    rebuild_best = float("inf")
    cells = lists = 0
    for attempt in range(repeats):
        live_data = _copy(base)
        live = _materialize(FBox.for_marketplace(live_data, default_schema()))
        started = time.perf_counter()
        touched = live_data.upsert_observations(decoded)
        counters = live.apply_observations(
            live_data.queries, live_data.locations, touched
        )
        incremental_best = min(incremental_best, time.perf_counter() - started)

        cold_data = _copy(base)
        started = time.perf_counter()
        cold_data.upsert_observations(decoded)
        cold = _materialize(FBox.for_marketplace(cold_data, default_schema()))
        rebuild_best = min(rebuild_best, time.perf_counter() - started)

        if attempt == 0:
            _assert_identical(live, cold)
            cells, lists = counters["cells_recomputed"], counters["lists_rebuilt"]

    coarse = _coarse_lists(base, decoded)
    return {
        "churn": churn,
        "dirty": dirty_count,
        "cells": cells,
        "lists": lists,
        "coarse": coarse,
        "incremental": incremental_best,
        "rebuild": rebuild_best,
        "speedup": rebuild_best / incremental_best,
    }


def run_incremental_ingest(quick: bool = False) -> None:
    cities = SMALL_CITIES if quick else None
    repeats = QUICK_REPEATS if quick else REPEATS
    base = _copy(build_taskrabbit_dataset(seed=SEED, cities=cities))
    site = build_taskrabbit_site(SEED)
    pair_count = len(base.observations())
    groups = len(FBox.for_marketplace(base, default_schema()).groups)

    rows = [_measure(base, site, churn, repeats) for churn in CHURN_LEVELS]

    scope = "6-city quick crawl" if quick else "full category crawl"
    lines = [
        "Incremental ingest vs full rebuild — delta cube/index maintenance",
        f"(TaskRabbit {scope}: {pair_count} (query, city) pairs x {groups}",
        f" groups; cube + {len(FAMILY_DIMENSIONS)} index families hot;"
        f" best of {repeats} runs)",
        "=" * 68,
        "",
        " churn  dirty  cells  lists coarse    incr s  rebuild s  speedup",
        "------ ------ ------ ------ ------ --------- ---------- --------",
    ]
    for row in rows:
        lines.append(
            f"{row['churn']:5.0%} {row['dirty']:6d} {row['cells']:6d}"
            f" {row['lists']:6d} {row['coarse']:6d} {row['incremental']:9.4f}"
            f" {row['rebuild']:10.4f} {row['speedup']:7.1f}x"
        )
    lines += [
        "",
        "identity: cube values and every posting list byte-identical to a",
        "cold rebuild of the post-ingest dataset, at both churn levels.",
        "'lists' uses the exact changed-cell staleness predicate; 'coarse'",
        "is what the dirty-pair fallback would have rebuilt instead.",
    ]
    emit("incremental_ingest", "\n".join(lines))

    by_churn = {row["churn"]: row for row in rows}
    floor = QUICK_SPEEDUP_FLOOR if quick else SPEEDUP_FLOOR
    assert by_churn[0.01]["speedup"] >= floor, (
        f"incremental ingest at 1% churn is only "
        f"{by_churn[0.01]['speedup']:.1f}x a full rebuild (floor {floor}x)"
    )
    assert by_churn[0.10]["speedup"] > 1.0, (
        f"incremental ingest at 10% churn is slower than a full rebuild "
        f"({by_churn[0.10]['speedup']:.2f}x)"
    )
    # The exact staleness predicate's reason to exist: it must rebuild
    # strictly fewer posting lists than the coarse dirty-pair fallback
    # (which marks whole rows of QUERY/LOCATION lists stale) — while the
    # byte-identity assertions above prove nothing stale survived.
    for row in rows:
        assert row["lists"] < row["coarse"], (
            f"exact staleness rebuilt {row['lists']} lists at "
            f"{row['churn']:.0%} churn, not fewer than the coarse "
            f"predicate's {row['coarse']}"
        )


def test_incremental_ingest() -> None:
    run_incremental_ingest(quick=os.environ.get("BENCH_QUICK") == "1")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small crawl, fewer repeats"
    )
    arguments = parser.parse_args()
    run_incremental_ingest(quick=arguments.quick)
    print("bench_incremental_ingest: OK")
