"""Sharded scaling: cold-sweep throughput at ``--shards`` 0 / 2 / 4.

Runs the whole sweep once per storage core (``--core dict``, ``--core
columnar``, or the default ``both``): the columnar core answers sharded
reads front-side from the workers' published shared-memory segments
(no socket hop) and runs its TA sweeps over flat numpy views, so at every
shard count it must at least match the dict core's throughput — that
floor is asserted.

The question the shard pool exists to answer: once TA sweeps for distinct
datasets run in distinct *processes*, does aggregate cold-sweep throughput
scale past the GIL?  Four seeded TaskRabbit datasets are spread over the
shard ring, caching is disabled (every request is a full top-k sweep), and
``STREAMS`` concurrent clients hammer the pool for a fixed window at each
shard count.  Answers are also cross-checked across configurations — the
sharded backend must be answer-identical to the in-process one.

Reading the numbers: shard scaling is *CPU* scaling, so the headline
speedup only materializes on a multi-core runner.  The output therefore
leads with ``os.cpu_count()``; on a single-core container the 2x-at-4-
shards expectation is reported but not asserted (forked workers time-slice
one core, and process overhead makes sharding a small net loss there).

Runnable two ways:

* ``pytest benchmarks/bench_sharded_scaling.py`` (CI uses the quick mode
  via ``python benchmarks/bench_sharded_scaling.py --quick``);
* ``python benchmarks/bench_sharded_scaling.py [--quick]`` directly.

Writes ``benchmarks/results/sharded_scaling.txt``.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
from pathlib import Path
from time import monotonic

sys.path.insert(0, str(Path(__file__).parent))

from _util import emit
from repro.client import FBoxClient, RetryPolicy
from repro.experiments.datasets import build_taskrabbit_dataset
from repro.service.registry import SMALL_CITIES, DatasetRegistry, DatasetSpec
from repro.service.server import make_server
from repro.service.sharding import shard_for

DATASETS = 4
STREAMS = 4
CORES = ("dict", "columnar")
SHARD_COUNTS = (0, 2, 4)
WINDOW_SECONDS = 6.0
QUICK_WINDOW_SECONDS = 1.5
QUICK_SHARD_COUNTS = (0, 2)
SPEEDUP_TARGET = 2.0  # --shards 4 vs --shards 0, on a 4+-core runner

_QUERY = {"dimension": "group", "k": 5}


def _datasets() -> dict[str, object]:
    return {
        f"tr-{index}": build_taskrabbit_dataset(
            seed=300 + index, cities=SMALL_CITIES
        )
        for index in range(DATASETS)
    }


def _registry(datasets: dict[str, object]) -> DatasetRegistry:
    registry = DatasetRegistry()
    for name, dataset in datasets.items():
        registry.register(
            DatasetSpec(
                name=name,
                site="taskrabbit",
                loader=lambda d=dataset: d,
                description="seeded crawl for the scaling bench",
            )
        )
    return registry


def _client(server) -> FBoxClient:
    return FBoxClient(server.url, timeout=120.0, retry=RetryPolicy(max_attempts=1))


def _run_config(
    datasets: dict[str, object], shards: int, window: float, core: str = "dict"
) -> dict:
    """Throughput of ``STREAMS`` cold-sweep streams at one shard count."""
    server = make_server(
        registry=_registry(datasets),
        port=0,
        request_timeout=120.0,
        max_concurrency=0,  # no shedding: measure raw execution throughput
        cache_size=0,  # every request is a full TA sweep
        shards=shards,
        core=core,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    names = list(datasets)
    answers: dict[str, tuple] = {}
    counts = [0] * STREAMS
    try:
        warm = _client(server)
        for name in names:
            # First touch builds the cube + index family in whichever
            # process owns the dataset; the measured window is sweeps only.
            document = warm.quantify(name, **_QUERY)
            answers[name] = tuple(
                (entry["name"], entry["unfairness"])
                for entry in document["entries"]
            )
        warm.close()

        deadline = monotonic() + window

        def stream(index: int) -> None:
            client = _client(server)
            position = index  # stagger starting datasets across streams
            try:
                while monotonic() < deadline:
                    client.quantify(names[position % len(names)], **_QUERY)
                    counts[index] += 1
                    position += 1
            finally:
                client.close()

        workers = [
            threading.Thread(target=stream, args=(index,), daemon=True)
            for index in range(STREAMS)
        ]
        started = monotonic()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=window + 120.0)
        elapsed = monotonic() - started
    finally:
        server.shutdown()
        thread.join(timeout=10)
        server.server_close()
    total = sum(counts)
    return {
        "core": core,
        "shards": shards,
        "requests": total,
        "elapsed": elapsed,
        "throughput": total / elapsed if elapsed > 0 else 0.0,
        "answers": answers,
    }


def run_sharded_scaling(
    quick: bool = False, which_cores: tuple[str, ...] = CORES
) -> dict[tuple[str, int], dict]:
    cores = os.cpu_count() or 1
    window = QUICK_WINDOW_SECONDS if quick else WINDOW_SECONDS
    shard_counts = QUICK_SHARD_COUNTS if quick else SHARD_COUNTS
    datasets = _datasets()
    results = {
        (core, shards): _run_config(datasets, shards, window, core)
        for core in which_cores
        for shards in shard_counts
    }

    baselines = {
        core: results[(core, 0)]["throughput"] for core in which_cores
    }
    placement = {
        shards: [shard_for(name, shards) for name in datasets]
        for shards in shard_counts
        if shards > 0
    }
    lines = [
        "Sharded scaling — cold-sweep throughput by worker-process count",
        f"(cores visible: {cores}; {STREAMS} client streams; {DATASETS} "
        "datasets; cache off,",
        f" every request a full top-k sweep; {window:g}s window per config"
        + ("; quick mode)" if quick else ")"),
        "=" * 68,
        "",
        f"{'core':>8} {'shards':>6} {'requests':>9} {'seconds':>8} "
        f"{'req/s':>9} {'vs shards=0':>12}",
        f"{'-' * 8} {'-' * 6} {'-' * 9} {'-' * 8} {'-' * 9} {'-' * 12}",
    ]
    for (core, shards), row in results.items():
        baseline = baselines[core]
        speedup = row["throughput"] / baseline if baseline > 0 else 0.0
        lines.append(
            f"{core:>8} {shards:>6} {row['requests']:>9} "
            f"{row['elapsed']:>8.2f} {row['throughput']:>9.1f} "
            f"{speedup:>11.2f}x"
        )
    for shards, owners in placement.items():
        lines.append("")
        lines.append(
            f"placement at {shards} shards: "
            + ", ".join(
                f"{name}→{owner}" for name, owner in zip(datasets, owners)
            )
        )
    lines += [
        "",
        f"Shard scaling is CPU scaling: the {SPEEDUP_TARGET:g}x-at-4-shards "
        "target presumes a",
        "4+-core runner.  On fewer cores the forked workers time-slice the",
        "same silicon and the table above mostly prices the socket hop.",
        "The columnar core answers sharded reads front-side from the",
        "workers' published segments, so it is gated to never trail dict.",
    ]
    emit("sharded_scaling", "\n".join(lines))

    # Correctness is asserted everywhere: every configuration — any shard
    # count, either core — must produce the exact same answers.
    reference = results[(which_cores[0], 0)]["answers"]
    for row in results.values():
        assert row["answers"] == reference
        assert row["requests"] > 0
    # The columnar floor: at every shard count, at least dict throughput.
    if set(which_cores) == set(CORES):
        for shards in shard_counts:
            dict_rate = results[("dict", shards)]["throughput"]
            columnar_rate = results[("columnar", shards)]["throughput"]
            assert columnar_rate >= 1.0 * dict_rate, (
                f"columnar core at {shards} shards is slower than dict "
                f"({columnar_rate:.1f} vs {dict_rate:.1f} req/s)"
            )
    # The throughput claim only holds where the cores exist to back it.
    for core in which_cores:
        if not quick and cores >= 4 and (core, 4) in results:
            assert (
                results[(core, 4)]["throughput"]
                >= SPEEDUP_TARGET * baselines[core]
            )
    return results


def test_sharded_scaling():
    run_sharded_scaling(quick=os.environ.get("BENCH_QUICK") == "1")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="short windows, shards {0, 2} only (the CI configuration)",
    )
    parser.add_argument(
        "--core",
        choices=["dict", "columnar", "both"],
        default="both",
        help="storage core(s) to sweep; 'both' also gates columnar >= dict",
    )
    arguments = parser.parse_args()
    selected = CORES if arguments.core == "both" else (arguments.core,)
    run_sharded_scaling(quick=arguments.quick, which_cores=selected)
    print("sharded scaling bench: OK")
