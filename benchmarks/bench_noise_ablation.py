"""Noise-control ablation: the Chrome-extension protocol matters.

The paper's extension controls four noise sources (carry-over, A/B tests,
geolocation, infrastructure).  This ablation runs the same study with the
protocol on and off against an *unpersonalized* engine: with no real
personalization, any measured unfairness is pure noise — the controlled
protocol should report (almost) none, the uncontrolled one plenty.
"""

from __future__ import annotations

from _util import emit
from repro.core.fbox import FBox
from repro.core.attributes import default_schema
from repro.experiments.report import render_table
from repro.searchengine.engine import GoogleJobsEngine
from repro.searchengine.extension import ExtensionConfig
from repro.searchengine.study import StudyDesign, run_study

_DESIGN = StudyDesign(
    pairs=(("yard work", "London, UK"), ("run errand", "Boston, MA"))
)

_CONTROLLED = ExtensionConfig()
_UNCONTROLLED = ExtensionConfig(spacing_minutes=1.0, repeats=1, use_proxy=False)


def _measured_noise(extension_config) -> float:
    engine = GoogleJobsEngine(seed=23, personalization_scale=0.0)
    dataset = run_study(engine, _DESIGN, extension_config=extension_config).dataset
    fbox = FBox.for_search(dataset, default_schema(), measure="kendall")
    return fbox.aggregate()


def _report() -> str:
    controlled = _measured_noise(_CONTROLLED)
    uncontrolled = _measured_noise(_UNCONTROLLED)
    rows = [
        ("paper protocol (12-min spacing, repeats, proxy)", controlled),
        ("no controls (1-min spacing, single run, no proxy)", uncontrolled),
    ]
    return render_table(
        "Noise ablation — apparent unfairness of an unbiased engine",
        ("protocol", "measured 'unfairness'"),
        rows,
    )


def test_noise_ablation(benchmark):
    text = _report()
    emit("noise_ablation", text)
    benchmark(lambda: None)


def test_controlled_protocol_reports_less_noise():
    assert _measured_noise(_CONTROLLED) < _measured_noise(_UNCONTROLLED)
