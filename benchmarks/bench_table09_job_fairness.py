"""Table 9: TaskRabbit job categories ranked by unfairness.

Headline shape: Handyman and Yard Work are the most unfair jobs; Furniture
Assembly and Delivery the fairest, under both EMD and Exposure.
"""

from __future__ import annotations

import pytest

from _util import emit, paper_vs_measured
from repro.calibration import TASKRABBIT_JOB_EMD, TASKRABBIT_JOB_EXPOSURE
from repro.experiments.quantification import table9_job_ranking

_PAPER = {"emd": TASKRABBIT_JOB_EMD, "exposure": TASKRABBIT_JOB_EXPOSURE}


@pytest.mark.parametrize("measure", ["emd", "exposure"])
def test_table09_job_fairness(benchmark, measure):
    rows = [(row.member, row.value) for row in table9_job_ranking(measure)]
    emit(
        f"table09_jobs_{measure}",
        paper_vs_measured(
            f"Table 9 — job unfairness ({measure})", rows, _PAPER[measure], "job"
        ),
    )
    benchmark(table9_job_ranking, measure)
