"""Figures 7–8: gender and ethnicity breakdown of the tasker population.

The paper observed 3,311 unique taskers, ≈72% male and ≈66% white.  The
simulated population reproduces those shares (plus a small slice of
profiles the AMT labeling step cannot classify).
"""

from __future__ import annotations

from _util import emit
from repro.experiments.quantification import figure7_8_demographics
from repro.experiments.report import render_table
from repro.marketplace.workers import TOTAL_WORKERS, generate_population


def _render() -> str:
    breakdown = figure7_8_demographics()
    rows = [("total taskers", float(TOTAL_WORKERS), 3311.0)]
    paper = {"Male": 0.72, "Female": 0.28, "White": 0.66, "Black": 0.21, "Asian": 0.13}
    for attribute in ("gender", "ethnicity"):
        for value, share in breakdown[attribute].items():
            rows.append((f"{attribute}: {value}", share, paper.get(value, "—")))
    return render_table(
        "Figures 7-8 — tasker demographics", ("quantity", "measured", "paper"), rows
    )


def test_fig7_8_demographics(benchmark):
    emit("fig7_8_demographics", _render())
    benchmark(generate_population, 7)
