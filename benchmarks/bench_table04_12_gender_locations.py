"""Tables 4 and 12: Male vs Female across TaskRabbit locations.

Table 4 illustrates group-comparison output (Oklahoma City and Salt Lake
City reversing the overall ordering); Table 12 reports the locations where
females are treated more fairly than males under Exposure — in our
calibration, the cities of ``FEMALE_FAIRER_LOCATIONS``.

Deviation note (EXPERIMENTS.md): under the paper's literal comparables-only
normalization, Male and Female — jointly exhaustive, mutually comparable —
provably receive identical deviations, so this experiment runs with
ranking-wide normalization, the only reading compatible with the paper's
unequal published numbers.
"""

from __future__ import annotations

from _util import emit
from repro.calibration import FEMALE_FAIRER_LOCATIONS
from repro.experiments.comparison import table4_and_12_gender_by_location
from repro.experiments.report import render_comparison, render_table


def _render() -> str:
    report = table4_and_12_gender_by_location()
    female_better = sorted(
        (row for row in report.rows if row.value_r2 < row.value_r1),
        key=lambda row: row.value_r2 - row.value_r1,
    )
    rows = [
        (
            str(row.member),
            row.value_r1,
            row.value_r2,
            "calibrated flip" if row.member in FEMALE_FAIRER_LOCATIONS else "",
        )
        for row in female_better[:10]
    ]
    header = render_table(
        "Tables 4/12 — locations where females fare better than males "
        f"(overall M={report.overall_r1:.3f} F={report.overall_r2:.3f})",
        ("location", "Males", "Females", "note"),
        rows,
    )
    return header + "\n\n" + render_comparison("Full comparison report", report)


def test_table04_12_gender_by_location(benchmark):
    emit("table04_12_gender_locations", _render())
    benchmark(table4_and_12_gender_by_location)
