"""Tables 13–14: Lawn Mowing vs Event Decorating by ethnicity.

Paper shape: overall, Lawn Mowing is less fair than Event Decorating; the
comparison reverses for Whites under EMD (Table 13) and for Blacks under
Exposure (Table 14) — the paper itself flags the measure disagreement as
future work.
"""

from __future__ import annotations

import pytest

from _util import emit
from repro.experiments.comparison import table13_14_jobs_by_ethnicity
from repro.experiments.report import render_comparison

_PAPER_SUBJECT = {"emd": "White", "exposure": "Black"}


@pytest.mark.parametrize("measure", ["emd", "exposure"])
def test_table13_14_jobs_by_ethnicity(benchmark, measure):
    report = table13_14_jobs_by_ethnicity(measure)
    table_number = 13 if measure == "emd" else 14
    text = render_comparison(
        f"Table {table_number} — Lawn Mowing vs Event Decorating ({measure}); "
        f"paper: {_PAPER_SUBJECT[measure]} reverses",
        report,
    )
    emit(f"table{table_number}_jobs_ethnicity_{measure}", text)
    benchmark(table13_14_jobs_by_ethnicity, measure)
