"""The batching claim: one shared index sweep vs N sequential queries.

Boots two identical cold F-Box servers and runs the same 16-point audit
grid (k = 1..16 over one ``(dataset, measure, dimension, order)`` group)
against each — once as 16 sequential ``POST /quantify`` calls, once as a
single ``POST /batch``.  The planner answers the whole batched grid with
one family build and one threshold-algorithm sweep at ``k_max``, so both
the wall clock and the sorted+random access counters (read from
``/metrics``) should drop sharply.

Writes ``benchmarks/results/batch_vs_sequential.txt``.
"""

from __future__ import annotations

import json
import threading
import urllib.request
from time import perf_counter

from _util import emit
from repro.experiments.datasets import build_taskrabbit_dataset
from repro.service.registry import SMALL_CITIES, DatasetRegistry, DatasetSpec
from repro.service.server import make_server

GRID_KS = range(1, 17)


def _post(base: str, path: str, payload) -> dict:
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        assert response.status == 200
        return json.loads(response.read())


def _metric(text: str, prefix: str) -> int:
    line = next(line for line in text.splitlines() if line.startswith(prefix))
    return int(line.rsplit(" ", 1)[1])


def _boot(dataset):
    registry = DatasetRegistry()
    registry.register(
        DatasetSpec(name="taskrabbit", site="taskrabbit", loader=lambda: dataset)
    )
    server = make_server(registry=registry, port=0, request_timeout=300.0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def _teardown(server, thread) -> None:
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _scrape(base: str) -> dict:
    with urllib.request.urlopen(base + "/v1/metrics") as response:
        text = response.read().decode("utf-8")
    return {
        "sorted": _metric(text, 'fbox_index_accesses_total{mode="sorted"}'),
        "random": _metric(text, 'fbox_index_accesses_total{mode="random"}'),
        "family_builds": _metric(text, "fbox_index_family_builds_total"),
        "cube_builds": _metric(text, "fbox_cube_builds_total"),
    }


def test_batch_vs_sequential():
    dataset = build_taskrabbit_dataset(seed=7, cities=SMALL_CITIES)
    grid = [
        {"dataset": "taskrabbit", "dimension": "group", "k": k} for k in GRID_KS
    ]

    server, thread = _boot(dataset)
    try:
        started = perf_counter()
        for payload in grid:
            document = _post(server.url, "/v1/quantify", payload)
            assert document["cached"] is False
        sequential_seconds = perf_counter() - started
        sequential = _scrape(server.url)
    finally:
        _teardown(server, thread)

    server, thread = _boot(dataset)
    try:
        started = perf_counter()
        envelope = _post(
            server.url, "/v1/batch", [{"op": "quantify", **payload} for payload in grid]
        )
        batch_seconds = perf_counter() - started
        batched = _scrape(server.url)
    finally:
        _teardown(server, thread)

    assert envelope["succeeded"] == len(grid)
    assert envelope["sweep_groups"] == 1
    assert envelope["shared_items"] == len(grid)

    def row(label: str, seconds: float, counters: dict) -> tuple:
        return (
            label,
            seconds * 1000.0,
            float(counters["sorted"]),
            float(counters["random"]),
            float(counters["sorted"] + counters["random"]),
            float(counters["family_builds"]),
        )

    lines = [
        "Shared-sweep batch vs sequential POSTs — 16-point audit grid",
        "=" * 62,
        f"{'strategy':<12} {'ms':>9} {'sorted':>8} {'random':>8} {'total':>8} {'builds':>7}",
        f"{'-' * 12} {'-' * 9} {'-' * 8} {'-' * 8} {'-' * 8} {'-' * 7}",
    ]
    for label, ms, sorted_, random_, total, builds in (
        row("sequential", sequential_seconds, sequential),
        row("batch", batch_seconds, batched),
    ):
        lines.append(
            f"{label:<12} {ms:>9.1f} {sorted_:>8.0f} {random_:>8.0f} "
            f"{total:>8.0f} {builds:>7.0f}"
        )
    total_sequential = sequential["sorted"] + sequential["random"]
    total_batched = batched["sorted"] + batched["random"]
    lines.append("")
    lines.append(
        f"access reduction: {total_sequential}/{total_batched} = "
        f"{total_sequential / max(1, total_batched):.1f}x"
    )
    emit("batch_vs_sequential", "\n".join(lines))

    assert batched["family_builds"] == 1
    assert batched["cube_builds"] == 1
    assert total_batched < total_sequential
