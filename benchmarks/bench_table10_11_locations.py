"""Tables 10–11: the ten least and most fair TaskRabbit cities.

Headline shape: Birmingham, UK and Oklahoma City, OK are the least fair;
Chicago and San Francisco among the fairest, over the full 5,361-query
job-level crawl.
"""

from __future__ import annotations

import pytest

from _util import emit, paper_vs_measured
from repro.calibration import (
    TASKRABBIT_FAIREST_LOCATIONS,
    TASKRABBIT_UNFAIREST_LOCATIONS,
)
from repro.experiments.quantification import (
    table10_unfairest_locations,
    table11_fairest_locations,
    taskrabbit_fbox,
)


@pytest.mark.parametrize("measure", ["emd", "exposure"])
def test_table10_unfairest_locations(benchmark, measure):
    rows = [(row.member, row.value) for row in table10_unfairest_locations(measure)]
    emit(
        f"table10_unfairest_locations_{measure}",
        paper_vs_measured(
            f"Table 10 — ten unfairest cities ({measure})",
            rows,
            TASKRABBIT_UNFAIREST_LOCATIONS,
            "city",
        ),
    )
    fbox = taskrabbit_fbox(measure)
    benchmark(fbox.quantify, "location", 10)


@pytest.mark.parametrize("measure", ["emd", "exposure"])
def test_table11_fairest_locations(benchmark, measure):
    rows = [(row.member, row.value) for row in table11_fairest_locations(measure)]
    emit(
        f"table11_fairest_locations_{measure}",
        paper_vs_measured(
            f"Table 11 — ten fairest cities ({measure})",
            rows,
            TASKRABBIT_FAIREST_LOCATIONS,
            "city",
        ),
    )
    fbox = taskrabbit_fbox(measure)
    benchmark(fbox.quantify, "location", 10, "least")
