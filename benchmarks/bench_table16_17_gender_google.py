"""Tables 16–17: Google gender comparison by location (Kendall / Jaccard).

Paper shape: overall, females' results diverge slightly more than males';
at Birmingham, Bristol, Detroit and New York City the ordering reverses.
The reproduction compares White Male vs White Female (full profiles, whose
comparable groups differ) because the literal marginal Male-vs-Female
comparison is provably tied cell-by-cell under any pairwise-symmetric DIST
— see EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from _util import emit
from repro.calibration import GOOGLE_FEMALE_FAIRER_LOCATIONS
from repro.experiments.comparison import table16_17_gender_by_location
from repro.experiments.report import render_comparison

_TABLE = {"kendall": 16, "jaccard": 17}


@pytest.mark.parametrize("measure", ["kendall", "jaccard"])
def test_table16_17_gender_by_location(benchmark, measure):
    report = table16_17_gender_by_location(measure)
    text = render_comparison(
        f"Table {_TABLE[measure]} — WM vs WF by location ({measure}); paper "
        f"reverses: {', '.join(sorted(GOOGLE_FEMALE_FAIRER_LOCATIONS))}",
        report,
    )
    emit(f"table{_TABLE[measure]}_gender_locations_{measure}", text)
    benchmark(table16_17_gender_by_location, measure)
