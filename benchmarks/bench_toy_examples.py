"""Figures 1–5 and Tables 1–3: the paper's worked examples.

Regenerates every number in the walkthrough section: the illustrative
averages of Figures 1–4 with the paper's stated inputs, the true measure
values on the Tables 1–3 toy data, and the exactly-computable Figure 5
exposure derivation (0.94 / 4.0 exposure mass, 0.5 / 2.9 relevance mass,
unfairness |0.19 − 0.15| ≈ 0.04).
"""

from __future__ import annotations

from _util import emit
from repro.experiments import toy
from repro.experiments.report import render_table


def _render() -> str:
    fig5 = toy.figure5_exposure()
    rows = [
        ("Figure 1 Kendall average (paper inputs)", toy.figure1_unfairness(), 0.50),
        ("Figure 1 Kendall measured (Table 1 data)", toy.figure1_measured(), "—"),
        ("Figure 2 EMD average (paper inputs)", toy.figure2_unfairness(), 0.45),
        ("Figure 3 Jaccard average (paper inputs)", toy.figure3_partial_unfairness(), 0.65),
        ("Figure 3 Jaccard measured (Table 1 data)", toy.figure3_measured(), "—"),
        ("Figure 4 EMD average (paper inputs)", toy.figure4_unfairness(), 0.50),
        ("Figure 5 group exposure mass", fig5.group_exposure, 0.94),
        ("Figure 5 comparable exposure mass", fig5.comparable_exposure, 4.0),
        ("Figure 5 group relevance mass", fig5.group_relevance, 0.5),
        ("Figure 5 comparable relevance mass", fig5.comparable_relevance, 2.9),
        ("Figure 5 exposure share", fig5.exposure_share, 0.19),
        ("Figure 5 relevance share", fig5.relevance_share, 0.15),
        ("Figure 5 exposure unfairness", fig5.unfairness, 0.04),
    ]
    return render_table(
        "Figures 1-5 / Tables 1-3 — worked examples",
        ("quantity", "measured", "paper"),
        rows,
    )


def test_toy_examples(benchmark):
    emit("toy_examples", _render())
    benchmark(toy.figure5_exposure)
