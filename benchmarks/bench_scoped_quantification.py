"""§5.2.1 drill-down: fairest/unfairest locations per job and jobs per city.

The paper reports, e.g., that for Handyman and Run Errands the fairest
location is in the San Francisco area and the unfairest Birmingham, UK; and
that for Birmingham/Detroit/Nashville the fairest jobs are Delivery and
Furniture Assembly while the unfairest are Yard Work / General Cleaning.
"""

from __future__ import annotations

from _util import emit
from repro.experiments.quantification import scoped_drilldown
from repro.experiments.report import render_table


def _render() -> str:
    drill = scoped_drilldown()
    blocks = []
    for scope, rows in drill.items():
        top = rows[:3]
        bottom = rows[-3:]
        table_rows = [("unfairest: " + r.member, r.value) for r in top]
        table_rows += [("fairest: " + r.member, r.value) for r in reversed(bottom)]
        blocks.append(
            render_table(f"§5.2.1 drill-down — {scope}", ("member", "measured"), table_rows)
        )
    return "\n\n".join(blocks)


def test_scoped_quantification(benchmark):
    emit("scoped_quantification", _render())
    benchmark(scoped_drilldown)
