"""Tables 18–19: Running Errands vs General Cleaning by ethnicity.

Paper shape: the two queries are nearly tied overall with Running Errands a
hair less fair; for Blacks (both tables) and Asians (Table 18) General
Cleaning is the less fair of the two — a reversal.
"""

from __future__ import annotations

import pytest

from _util import emit
from repro.experiments.comparison import table18_19_queries_by_ethnicity
from repro.experiments.report import render_comparison

_TABLE = {"kendall": 18, "jaccard": 19}


@pytest.mark.parametrize("measure", ["kendall", "jaccard"])
def test_table18_19_errands_cleaning(benchmark, measure):
    report = table18_19_queries_by_ethnicity(measure)
    text = render_comparison(
        f"Table {_TABLE[measure]} — Running Errands vs General Cleaning "
        f"({measure}); paper reverses Black (+ Asian under Kendall)",
        report,
    )
    emit(f"table{_TABLE[measure]}_errands_cleaning_{measure}", text)
    benchmark(table18_19_queries_by_ethnicity, measure)
