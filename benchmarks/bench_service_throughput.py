"""Service throughput: warm-cache vs cold-cache requests/sec, p50/p95.

Boots a real F-Box server on an ephemeral port (small six-city datasets),
then measures three request populations over HTTP, on **both transport
backends** (``threads`` and ``asyncio``):

* **build** — the very first request, which materializes the cube;
* **cold cache** — distinct parameterizations (every one a cache miss that
  runs a real top-k / comparison on the shared, already-built F-Box);
* **warm cache** — one hot request repeated (every one an LRU hit).

Run under pytest it writes ``benchmarks/results/service_throughput.txt``.
It is also a script, for CI smoke runs that should *not* overwrite the
committed results::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py \
        --quick --backend asyncio
"""

from __future__ import annotations

import argparse
import json
import statistics
import threading
import urllib.request
from time import perf_counter

from _util import emit
from repro.core.attributes import default_schema  # noqa: F401  (import check)
from repro.experiments.datasets import build_taskrabbit_dataset
from repro.service.registry import SMALL_CITIES, DatasetRegistry, DatasetSpec
from repro.service.server import BACKENDS, make_server

COLD_REQUESTS = 60
WARM_REQUESTS = 300
QUICK_COLD_REQUESTS = 15
QUICK_WARM_REQUESTS = 60


def _post(base: str, path: str, payload: dict) -> float:
    """One POST; returns elapsed seconds (asserts HTTP 200)."""
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    started = perf_counter()
    with urllib.request.urlopen(request) as response:
        assert response.status == 200
        response.read()
    return perf_counter() - started


def _percentiles(latencies: list[float]) -> tuple[float, float]:
    ordered = sorted(latencies)
    p50 = ordered[len(ordered) // 2]
    p95 = ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]
    return p50, p95


def _cold_population(count: int) -> list[dict]:
    """Distinct request parameterizations — every one a cache miss."""
    population = []
    for dimension in ("group", "query", "location"):
        for order in ("most", "least"):
            for k in range(1, 6):
                population.append(
                    {
                        "dataset": "taskrabbit",
                        "dimension": dimension,
                        "order": order,
                        "k": k,
                    }
                )
    return population[:count]


def _run_backend(dataset, backend: str, cold: int, warm: int) -> dict:
    """Boot one server on ``backend`` and measure the three populations."""
    registry = DatasetRegistry()
    registry.register(
        DatasetSpec(name="taskrabbit", site="taskrabbit", loader=lambda: dataset)
    )
    server = make_server(
        registry=registry, port=0, request_timeout=300.0, backend=backend
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = server.url
    try:
        build_seconds = _post(
            base, "/v1/quantify", {"dataset": "taskrabbit", "dimension": "group", "k": 11}
        )
        cold_latencies = [
            _post(base, "/v1/quantify", payload) for payload in _cold_population(cold)
        ]
        hot = {"dataset": "taskrabbit", "dimension": "group", "k": 11}
        warm_latencies = [_post(base, "/v1/quantify", hot) for _ in range(warm)]
    finally:
        server.shutdown()
        thread.join(timeout=10)
        server.server_close()

    rows = []
    for label, latencies in (("cold cache", cold_latencies), ("warm cache", warm_latencies)):
        p50, p95 = _percentiles(latencies)
        rows.append(
            (
                label,
                len(latencies),
                1.0 / statistics.fmean(latencies),
                p50 * 1000.0,
                p95 * 1000.0,
            )
        )
    return {"build_seconds": build_seconds, "rows": rows}


def _report(results: dict[str, dict]) -> str:
    lines = [
        "Service throughput — F-Box query server (six-city TaskRabbit crawl)",
        "=" * 66,
    ]
    for backend, result in results.items():
        lines += [
            "",
            f"backend: {backend}",
            f"first request (cube + index build): "
            f"{result['build_seconds'] * 1000.0:.1f} ms",
            f"{'population':<12} {'requests':>8} {'req/s':>10} {'p50 ms':>9} {'p95 ms':>9}",
            f"{'-' * 12} {'-' * 8} {'-' * 10} {'-' * 9} {'-' * 9}",
        ]
        for label, count, rps, p50, p95 in result["rows"]:
            lines.append(f"{label:<12} {count:>8} {rps:>10.1f} {p50:>9.3f} {p95:>9.3f}")
    return "\n".join(lines)


def _measure(backends: tuple[str, ...], cold: int, warm: int) -> dict[str, dict]:
    dataset = build_taskrabbit_dataset(seed=7, cities=SMALL_CITIES)
    results = {
        backend: _run_backend(dataset, backend, cold, warm) for backend in backends
    }
    for result in results.values():
        cold_rps = result["rows"][0][2]
        warm_rps = result["rows"][1][2]
        assert warm_rps > cold_rps  # the cache must actually pay for itself
    return results


def test_service_throughput():
    results = _measure(BACKENDS, COLD_REQUESTS, WARM_REQUESTS)
    emit("service_throughput", _report(results))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backend",
        choices=BACKENDS + ("both",),
        default="both",
        help="transport backend to measure (default: both)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke sizing; prints the table without touching results/",
    )
    args = parser.parse_args()
    backends = BACKENDS if args.backend == "both" else (args.backend,)
    cold = QUICK_COLD_REQUESTS if args.quick else COLD_REQUESTS
    warm = QUICK_WARM_REQUESTS if args.quick else WARM_REQUESTS
    results = _measure(backends, cold, warm)
    if args.quick:
        print(_report(results))
    else:
        emit("service_throughput", _report(results))


if __name__ == "__main__":
    main()
