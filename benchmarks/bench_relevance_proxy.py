"""Relevance-proxy ablation (DESIGN.md #3): rank proxy vs true scores.

The paper must use ``rel = 1 − rank/N`` because marketplaces hide scores.
The simulator can expose its true scores, so this ablation checks how much
the proxy distorts the group ranking: Spearman correlation between the
EMD group orderings under proxy vs true-score relevance.
"""

from __future__ import annotations

from scipy.stats import spearmanr

from _util import emit
from repro.core.fbox import FBox
from repro.core.attributes import default_schema
from repro.experiments.report import render_table
from repro.marketplace.crawl import run_crawl
from repro.marketplace.site import TaskRabbitSite

_CITIES = ["Birmingham, UK", "Oklahoma City, OK", "Chicago, IL", "Boston, MA"]


def _group_values(with_scores: bool) -> list[float]:
    site = TaskRabbitSite(seed=17)
    dataset = run_crawl(
        site, level="category", cities=_CITIES, with_scores=with_scores
    ).dataset
    fbox = FBox.for_marketplace(dataset, default_schema(), measure="emd")
    return [fbox.cube.aggregate_for("group", g) for g in fbox.cube.groups]


def _report() -> str:
    proxy = _group_values(with_scores=False)
    true_scores = _group_values(with_scores=True)
    rho, _ = spearmanr(proxy, true_scores)
    rows = [
        ("rank proxy mean group unfairness", sum(proxy) / len(proxy)),
        ("true-score mean group unfairness", sum(true_scores) / len(true_scores)),
        ("Spearman correlation of group orderings", float(rho)),
    ]
    return render_table(
        "Relevance-proxy ablation (rank proxy vs true scores, EMD)",
        ("quantity", "value"),
        rows,
    )


def test_relevance_proxy_ablation(benchmark):
    emit("relevance_proxy", _report())
    benchmark(lambda: None)
