"""Backend contention: cheap-request p50/p99 while slow work is in flight.

The question the asyncio transport exists to answer: what happens to a
*cheap* request (a warm ``/quantify`` cache hit on one keep-alive
connection) when the server is simultaneously doing *slow* CPU-bound
work?  Three conditions, measured on both backends:

* **idle** — nothing else in flight; the floor.
* **builds in flight** — one background client cold-touches a chain of
  unbuilt datasets, so a dataset build (crawl + cube + index) is in
  flight for the whole window.  The registry's lock serializes builds,
  so both backends face exactly one GIL-holding builder; neither can do
  better than the interpreter allows.
* **cold-sweep streams** — six concurrent clients each hammer uncached
  top-k sweeps (distinct ``k`` → every request a cache miss).  Here the
  architectures diverge: the threaded backend gives each stream its own
  OS thread, so six sweeps fight the cheap request for the GIL at once;
  the asyncio backend (``executor_workers=1``) funnels them through one
  executor thread, and the cheap hit is answered on the event loop's
  fast path without ever queueing behind them.

Caveat for reading the numbers: on a single-core box even ONE background
CPU burner puts a GIL-scheduling floor of several milliseconds under any
sub-millisecond request, whichever backend is serving it.  The claim the
bench asserts is therefore relative: the asyncio backend's loaded p99
stays near that floor (bounded by ``max(2 x idle p99, GIL_FLOOR)``)
while the threaded backend's grows with the number of streams.

Writes ``benchmarks/results/backend_contention.txt``.
"""

from __future__ import annotations

import itertools
import math
import threading
from time import monotonic, perf_counter

from _util import emit
from repro.client import FBoxClient, RetryPolicy
from repro.experiments.datasets import build_taskrabbit_dataset
from repro.service.registry import SMALL_CITIES, DatasetRegistry, DatasetSpec
from repro.service.server import make_server

IDLE_REQUESTS = 300
BUILD_DATASETS = 8  # serial cold builds ~0.3s each: the in-flight window
SWEEP_STREAMS = 6
SWEEP_SECONDS = 4.0
# Single-core GIL-scheduling floor for a cheap request sharing the
# interpreter with one CPU-bound thread (default switch interval 5ms,
# several wakeups per request).
GIL_FLOOR_SECONDS = 0.050

_CHEAP = {"dimension": "group", "k": 3}


def _client(server, timeout: float = 120.0) -> FBoxClient:
    return FBoxClient(
        server.url, timeout=timeout, retry=RetryPolicy(max_attempts=1)
    )


def _stats(latencies: list[float]) -> dict:
    ranked = sorted(latencies)

    def pctl(q: float) -> float:
        return ranked[max(0, math.ceil(q * len(ranked)) - 1)]

    return {"count": len(ranked), "p50": pctl(0.50), "p99": pctl(0.99)}


def _measure_until(client: FBoxClient, finished) -> list[float]:
    """Cheap warm hits on one keep-alive connection until ``finished()``."""
    latencies: list[float] = []
    while not finished() or not latencies:
        started = perf_counter()
        client.quantify("taskrabbit", **_CHEAP)
        latencies.append(perf_counter() - started)
    return latencies


def _registry(seed_base: int) -> DatasetRegistry:
    hot = build_taskrabbit_dataset(seed=7, cities=SMALL_CITIES)
    registry = DatasetRegistry()
    registry.register(
        DatasetSpec(name="taskrabbit", site="taskrabbit", loader=lambda: hot)
    )
    # Unbuilt datasets for the build phase; distinct seeds per backend so
    # the builder's memoization never turns a build into a cache hit.
    for index in range(BUILD_DATASETS):
        seed = seed_base + index
        registry.register(
            DatasetSpec(
                name=f"cold-{index}",
                site="taskrabbit",
                loader=lambda s=seed: build_taskrabbit_dataset(
                    seed=s, cities=SMALL_CITIES
                ),
            )
        )
    return registry


def _build_phase(server) -> list[float]:
    """Cheap latencies while a chain of dataset builds is in flight."""
    done = threading.Event()

    def builder() -> None:
        client = _client(server)
        try:
            for index in range(BUILD_DATASETS):
                client.quantify(f"cold-{index}", "group", k=3)
        finally:
            client.close()
            done.set()

    thread = threading.Thread(target=builder, daemon=True)
    cheap = _client(server)
    try:
        thread.start()
        latencies = _measure_until(cheap, done.is_set)
    finally:
        thread.join(timeout=60)
        cheap.close()
    return latencies


def _sweep_phase(server) -> list[float]:
    """Cheap latencies under ``SWEEP_STREAMS`` concurrent cold sweeps."""
    stop = threading.Event()

    def sweeper(stream: int) -> None:
        client = _client(server)
        dimensions = itertools.cycle(("group", "query", "location"))
        # Disjoint k sequences per stream: every request a cache miss.
        k = 1000 + stream
        try:
            while not stop.is_set():
                client.quantify("taskrabbit", next(dimensions), k=k)
                k += SWEEP_STREAMS
        finally:
            client.close()

    streams = [
        threading.Thread(target=sweeper, args=(index,), daemon=True)
        for index in range(SWEEP_STREAMS)
    ]
    deadline = monotonic() + SWEEP_SECONDS
    cheap = _client(server)
    try:
        for stream in streams:
            stream.start()
        latencies = _measure_until(cheap, lambda: monotonic() >= deadline)
    finally:
        stop.set()
        for stream in streams:
            stream.join(timeout=60)
        cheap.close()
    return latencies


def _run_backend(backend: str, seed_base: int) -> dict:
    server = make_server(
        registry=_registry(seed_base),
        port=0,
        request_timeout=60.0,
        max_concurrency=0,  # no shedding: measure raw contention
        backend=backend,
        executor_workers=1,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        cheap = _client(server)
        cheap.quantify("taskrabbit", **_CHEAP)  # build the hot cube + cache
        idle = []
        for _ in range(IDLE_REQUESTS):
            started = perf_counter()
            cheap.quantify("taskrabbit", **_CHEAP)
            idle.append(perf_counter() - started)
        cheap.close()
        build = _build_phase(server)
        sweeps = _sweep_phase(server)
    finally:
        server.shutdown()
        thread.join(timeout=10)
        server.server_close()
    return {
        "idle": _stats(idle),
        "builds": _stats(build),
        "sweeps": _stats(sweeps),
    }


def test_backend_contention():
    threads = _run_backend("threads", seed_base=100)
    aio = _run_backend("asyncio", seed_base=200)

    lines = [
        "Backend contention — cheap /quantify p50/p99 while slow work runs",
        "(one keep-alive client; six-city TaskRabbit crawl; admission off;",
        f" asyncio executor_workers=1; {SWEEP_STREAMS} cold-sweep streams)",
        "=" * 68,
        "",
        f"{'phase':<22} {'backend':<9} {'requests':>8} {'p50 ms':>9} {'p99 ms':>9}",
        f"{'-' * 22} {'-' * 9} {'-' * 8} {'-' * 9} {'-' * 9}",
    ]
    for phase, label in (
        ("idle", "idle"),
        ("builds", "builds in flight"),
        ("sweeps", f"{SWEEP_STREAMS} sweep streams"),
    ):
        for backend, result in (("threads", threads), ("asyncio", aio)):
            row = result[phase]
            lines.append(
                f"{label:<22} {backend:<9} {row['count']:>8} "
                f"{row['p50'] * 1000.0:>9.3f} {row['p99'] * 1000.0:>9.3f}"
            )
    lines += [
        "",
        "Builds serialize on the registry lock, so both backends face one",
        "GIL-holding builder and degrade alike.  The sweep streams are the",
        "contrast: the threaded backend runs one OS thread per stream and",
        "the cheap request queues behind all of them for the GIL, while",
        "the asyncio backend caps CPU concurrency at one executor worker",
        "and answers the warm hit on the event loop's fast path.",
    ]
    emit("backend_contention", "\n".join(lines))

    # Sanity: the idle floor is sub-GIL-floor on both backends.
    assert threads["idle"]["p99"] < GIL_FLOOR_SECONDS
    assert aio["idle"]["p99"] < GIL_FLOOR_SECONDS
    # Under the sweep streams the threaded backend degrades with the
    # stream count — even its MEDIAN queues behind the six sweeps...
    assert threads["sweeps"]["p99"] >= 3.0 * threads["idle"]["p99"]
    assert aio["sweeps"]["p50"] * 4.0 <= threads["sweeps"]["p50"]
    # ...while the asyncio backend stays near its idle p99 (up to the
    # single-core GIL floor) and below the threaded backend.
    assert aio["sweeps"]["p99"] <= max(
        2.0 * aio["idle"]["p99"], GIL_FLOOR_SECONDS
    )
    assert aio["sweeps"]["p99"] * 1.5 <= threads["sweeps"]["p99"]
