"""Benchmark utilities: result emission and paper-vs-measured rendering.

Every benchmark regenerates one of the paper's tables or figures, renders
it next to the paper's reported values, prints it (visible with ``pytest
-s``), and writes it to ``benchmarks/results/<name>.txt`` so the harness
leaves an inspectable record.  EXPERIMENTS.md summarizes these outputs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence

from repro.experiments.report import render_table

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a rendered experiment and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n")


def paper_vs_measured(
    title: str,
    measured: Sequence[tuple[str, float]],
    paper: Mapping[str, float] | None = None,
    member_label: str = "member",
) -> str:
    """Render measured rows with the paper's reported value alongside."""
    if paper is None:
        rows = [(member, value) for member, value in measured]
        return render_table(title, (member_label, "measured"), rows)
    rows = []
    for member, value in measured:
        reported = paper.get(member)
        rows.append(
            (member, value, reported if reported is not None else "—")
        )
    return render_table(title, (member_label, "measured", "paper"), rows)
