"""Table 8: all TaskRabbit groups ranked by unfairness (EMD and Exposure).

Headline shape to reproduce: Asian Females and Asian Males are the most
discriminated against; White/Male groups sit at the bottom.  The benchmark
times the group-fairness threshold query on the pre-materialized cube (the
paper's Algorithm 1), not the crawl.
"""

from __future__ import annotations

import pytest

from _util import emit, paper_vs_measured
from repro.calibration import TASKRABBIT_GROUP_EMD, TASKRABBIT_GROUP_EXPOSURE
from repro.experiments.quantification import table8_group_ranking, taskrabbit_fbox

_PAPER = {"emd": TASKRABBIT_GROUP_EMD, "exposure": TASKRABBIT_GROUP_EXPOSURE}


@pytest.mark.parametrize("measure", ["emd", "exposure"])
def test_table08_group_fairness(benchmark, measure):
    rows = [(row.member, row.value) for row in table8_group_ranking(measure)]
    emit(
        f"table08_groups_{measure}",
        paper_vs_measured(
            f"Table 8 — group unfairness ({measure})", rows, _PAPER[measure], "group"
        ),
    )
    fbox = taskrabbit_fbox(measure)
    benchmark(fbox.quantify, "group", 11)
