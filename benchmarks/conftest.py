"""Benchmark-suite configuration."""

from __future__ import annotations

import sys
from pathlib import Path

# Make `import _util` work regardless of invocation directory.
sys.path.insert(0, str(Path(__file__).parent))
