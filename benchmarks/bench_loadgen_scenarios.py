"""Scenario load harness: seeded traffic mixes vs a 2-shard columnar server.

Each preset is registered at runtime through ``POST /v1/datasets`` (the
scenario-first dataset API) on one shared server — two shard workers, the
columnar core, admission control on — and then hammered with the seeded
closed-loop mix from :mod:`repro.scenarios.loadgen` (quantify / compare /
batch / whatif / observations at the default 45/20/15/10/10 ratios).  The
report per preset: p50/p95/p99/mean latency, throughput, and per-operation
error counts.

The gate is the error budget: **zero hard failures** for every preset —
shed answers (429/503) that retries absorbed are backpressure working, but
any 4xx/5xx that survives retries means the payload corpus and the served
dataset disagree, which is exactly the drift the declarative scenario
framework exists to prevent.  ``mega_marketplace`` runs at its full
10^6-worker population: the lazily materializing site keeps the build
bounded by the crawl, not the roster.

Runnable two ways:

* ``pytest benchmarks/bench_loadgen_scenarios.py`` (CI uses
  ``python benchmarks/bench_loadgen_scenarios.py --quick``);
* ``python benchmarks/bench_loadgen_scenarios.py [--quick]`` directly.

Writes ``benchmarks/results/loadgen_scenarios.txt``.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
from pathlib import Path
from time import monotonic

sys.path.insert(0, str(Path(__file__).parent))

from _util import emit
from repro.client import FBoxClient, RetryPolicy
from repro.scenarios import build_scenario, get_scenario, run_loadgen
from repro.service.server import make_server

ADMIN_TOKEN = "bench-loadgen"
PRESETS = ("null_no_bias", "paper_taskrabbit", "mega_marketplace")
SHARDS = 2
CORE = "columnar"
SEED = 11

REQUESTS, WARMUP, WORKERS = 160, 16, 4
QUICK_REQUESTS, QUICK_WARMUP = 40, 8
OPEN_RATE = 120.0  # full mode only: one open-loop run on the first preset


def _boot_server():
    server = make_server(
        port=0,
        request_timeout=120.0,
        shards=SHARDS,
        core=CORE,
        admin_token=ADMIN_TOKEN,
        quiet=True,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def _run_preset(server, name: str, quick: bool, mode: str = "closed") -> dict:
    config = get_scenario(name)
    dataset_name = f"lg-{name}"
    built_at = monotonic()
    dataset = build_scenario(config)  # the loadgen payload corpus
    build_seconds = monotonic() - built_at
    report = run_loadgen(
        server.url,
        dataset_name,
        config,
        mode=mode,
        requests=QUICK_REQUESTS if quick else REQUESTS,
        workers=WORKERS,
        rate=OPEN_RATE,
        warmup=QUICK_WARMUP if quick else WARMUP,
        seed=SEED,
        prebuilt=dataset,
    )
    report["preset"] = name
    report["population"] = config.population
    report["build_seconds"] = round(build_seconds, 2)
    return report


def run_loadgen_scenarios(quick: bool = False) -> list[dict]:
    server, thread = _boot_server()
    reports = []
    try:
        with FBoxClient(
            server.url, timeout=120.0, retry=RetryPolicy(max_attempts=1, seed=0)
        ) as client:
            for name in PRESETS:
                client.register_scenario(
                    f"lg-{name}", name, token=ADMIN_TOKEN
                )
        for name in PRESETS:
            reports.append(_run_preset(server, name, quick))
        if not quick:
            reports.append(
                _run_preset(server, PRESETS[0], quick, mode="open")
            )
    finally:
        server.shutdown()
        thread.join(timeout=10)
        server.server_close()

    lines = [
        "Scenario loadgen — seeded mixes vs a 2-shard columnar server",
        f"(shards={SHARDS}, core={CORE}, runtime registration via "
        "POST /v1/datasets,",
        f" mix quantify/compare/batch/whatif/observations, seed={SEED}"
        + ("; quick mode)" if quick else ")"),
        "=" * 74,
        "",
        f"{'preset':>18} {'mode':>6} {'pop':>9} {'reqs':>5} "
        f"{'p50ms':>7} {'p95ms':>7} {'p99ms':>7} {'req/s':>7} "
        f"{'hard':>4} {'shed':>4}",
        f"{'-' * 18} {'-' * 6} {'-' * 9} {'-' * 5} {'-' * 7} {'-' * 7} "
        f"{'-' * 7} {'-' * 7} {'-' * 4} {'-' * 4}",
    ]
    for report in reports:
        latency = report["latency_ms"]
        lines.append(
            f"{report['preset']:>18} {report['mode']:>6} "
            f"{report['population']:>9} {report['requests']:>5} "
            f"{latency['p50']:>7.2f} {latency['p95']:>7.2f} "
            f"{latency['p99']:>7.2f} {report['throughput_rps']:>7.1f} "
            f"{report['errors']['hard']:>4} {report['errors']['shed']:>4}"
        )
    lines.append("")
    lines.append("per-operation error budget (hard/shed by mix entry):")
    for report in reports:
        ops = ", ".join(
            f"{op}={stats['requests']}r/{stats['hard']}h/{stats['shed']}s"
            for op, stats in sorted(report["mix"].items())
        )
        lines.append(f"  {report['preset']} ({report['mode']}): {ops}")
    lines += [
        "",
        "mega_marketplace serves a 10^6-worker roster; its corpus builds in",
        f"{reports[PRESETS.index('mega_marketplace')]['build_seconds']:.2f}s "
        "because only availability-sampled workers materialize "
        "(crawl-bounded memory).",
        "Gate: zero hard failures everywhere — shed answers absorbed by",
        "retries are backpressure, anything else is corpus/dataset drift.",
    ]
    emit("loadgen_scenarios", "\n".join(lines))

    for report in reports:
        assert report["errors"]["hard"] == 0, (
            f"{report['preset']} ({report['mode']}): "
            f"{report['errors']['hard']} hard failures — "
            f"{report['hard_failure_samples']}"
        )
        assert report["throughput_rps"] > 0
        assert report["measured"] > 0
    return reports


def test_loadgen_scenarios():
    run_loadgen_scenarios(quick=os.environ.get("BENCH_QUICK") == "1")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fewer requests per preset, closed loop only (the CI mode)",
    )
    arguments = parser.parse_args()
    run_loadgen_scenarios(quick=arguments.quick)
    print("loadgen scenarios bench: OK")
