"""The sharded execution backend: placement, crash chaos, batch fan-out.

The conftest ``shards`` parameter already runs every existing service suite
against a two-worker pool, so byte-compatibility is covered there.  This
module tests what only sharding has: deterministic consistent-hash
placement, the frame protocol, shard-crash quarantine and recovery
(scripted through ``FBOX_FAULTS`` worker_exit rules, exactly how an
operator would chaos-test a deployment), cross-shard ``/batch`` planning,
and the per-dataset registry locks that let distinct datasets build
concurrently.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.error
import urllib.request
from collections import Counter

import pytest

from repro.service.errors import ShardUnavailable
from repro.service.faults import FAULTS_ENV_VAR
from repro.service.registry import DatasetRegistry, DatasetSpec
from repro.service.server import make_server
from repro.service.sharding import build_ring, recv_frame, send_frame, shard_for


def _registry(small_marketplace_dataset, small_search_dataset) -> DatasetRegistry:
    registry = DatasetRegistry()
    registry.register(
        DatasetSpec(
            name="taskrabbit",
            site="taskrabbit",
            loader=lambda: small_marketplace_dataset,
            description="six-city category crawl",
        )
    )
    registry.register(
        DatasetSpec(
            name="google",
            site="google",
            loader=lambda: small_search_dataset,
            description="two-location study",
        )
    )
    return registry


def _get(base: str, path: str):
    try:
        with urllib.request.urlopen(base + path) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _post(base: str, path: str, payload):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture
def run_server():
    """Boot servers with explicit knobs (chaos tests pin their own shards)."""
    running: list = []

    def _start(registry, **kwargs):
        kwargs.setdefault("port", 0)
        server = make_server(registry=registry, **kwargs)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        running.append((server, thread))
        return server

    yield _start
    for server, thread in running:
        server.shutdown()
        thread.join(timeout=5)
        server.server_close()


# ----------------------------------------------------------------------
# Placement: the consistent-hash ring
# ----------------------------------------------------------------------


class TestPlacement:
    def test_shard_for_is_deterministic_across_calls(self):
        for name in ("taskrabbit", "google", "α-dataset", ""):
            assert shard_for(name, 4) == shard_for(name, 4)

    def test_single_shard_owns_everything(self):
        assert shard_for("anything", 1) == 0
        assert shard_for("else", 0) == 0

    def test_every_shard_owns_some_names(self):
        ring = build_ring(4)
        owners = Counter(
            shard_for(f"dataset-{i}", 4, ring) for i in range(400)
        )
        assert set(owners) == {0, 1, 2, 3}
        # Consistent hashing with 64 vnodes keeps the split roughly even.
        assert min(owners.values()) > 40

    def test_ring_is_stable_under_reconstruction(self):
        assert build_ring(3) == build_ring(3)

    def test_growing_the_pool_moves_few_names(self):
        names = [f"dataset-{i}" for i in range(300)]
        before = {name: shard_for(name, 4) for name in names}
        after = {name: shard_for(name, 5) for name in names}
        moved = sum(1 for name in names if before[name] != after[name])
        # Consistent hashing: ~1/5 of keys move when a fifth shard joins,
        # nothing like the ~4/5 a modulo scheme would reshuffle.
        assert moved < len(names) // 2

    def test_fixture_datasets_land_on_distinct_shards(self):
        # The chaos tests below rely on this split to show one shard dying
        # while the other keeps serving.
        assert shard_for("taskrabbit", 2) != shard_for("google", 2)


class TestFrameProtocol:
    def test_roundtrip(self):
        left, right = socket.socketpair()
        try:
            document = {"op": "call", "payload": {"k": [1, 2, 3], "s": "α"}}
            send_frame(left, document)
            assert recv_frame(right) == document
        finally:
            left.close()
            right.close()

    def test_clean_eof_returns_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert recv_frame(right) is None
        finally:
            right.close()

    def test_oversized_announcement_is_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall((1 << 30).to_bytes(4, "big"))
            with pytest.raises(ConnectionError):
                recv_frame(right)
        finally:
            left.close()
            right.close()


# ----------------------------------------------------------------------
# Shard-crash chaos: kill a worker mid-request, watch quarantine + recovery
# ----------------------------------------------------------------------


class TestShardCrash:
    def test_worker_death_quarantines_then_recovers(
        self,
        backend,
        run_server,
        monkeypatch,
        small_marketplace_dataset,
        small_search_dataset,
    ):
        # Scripted through FBOX_FAULTS, the same knob an operator would use.
        # The rule matches /compare so only the worker we aim a compare at
        # dies (every worker holds the same rules; a /quantify rule would
        # also kill the "surviving" shard on its first query below).
        monkeypatch.setenv(
            FAULTS_ENV_VAR,
            json.dumps(
                {"rules": [{"site": "worker_exit", "match": "/compare", "times": 1}]}
            ),
        )
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        server = run_server(
            registry,
            backend=backend,
            shards=2,
            request_timeout=60.0,
            cache_size=0,
        )
        router = server.context.router
        victim_shard = shard_for("taskrabbit", 2)
        # Widen the monitor's poll so the quarantine window is observable
        # deterministically instead of racing a 100ms revive.
        router.poll_interval = 2.0
        time.sleep(0.3)  # let the monitor settle into the slow cadence

        status, body = _post(
            server.url,
            "/v1/compare",
            {
                "dataset": "taskrabbit",
                "dimension": "group",
                "r1": "gender=Male",
                "r2": "gender=Female",
                "breakdown": "location",
            },
        )
        assert status == 503
        error = body["error"]
        assert error["code"] == "shard_unavailable"
        assert error["retryable"] is True
        assert error["shard"] == victim_shard
        assert "retry_after" in error

        # Quarantine: /readyz flags the dead shard's dataset, and only it.
        status, ready = _get(server.url, "/v1/readyz")
        assert status == 503
        assert ready["status"] == "unavailable"
        assert any("taskrabbit" in blocker for blocker in ready["blockers"])
        entries = {entry["name"]: entry for entry in ready["datasets"]}
        assert entries["taskrabbit"]["breaker"] != "closed"
        assert entries["taskrabbit"]["shard"] == victim_shard
        assert entries["google"]["breaker"] == "closed"

        # The surviving shard keeps answering while its peer is down.
        status, answer = _post(
            server.url,
            "/v1/quantify",
            {"dataset": "google", "dimension": "group", "k": 3},
        )
        assert status == 200
        assert answer["kind"] == "quantification"

        # Recovery: the monitor respawns the worker (whose injector knows
        # the exit fault is spent), the breaker closes, answers come back.
        router.poll_interval = 0.05
        deadline = time.monotonic() + 20.0
        status, body = 0, {}
        while time.monotonic() < deadline:
            status, body = _post(
                server.url,
                "/v1/quantify",
                {"dataset": "taskrabbit", "dimension": "group", "k": 3},
            )
            if status == 200:
                break
            time.sleep(0.1)
        assert status == 200, body
        assert body["kind"] == "quantification"
        status, ready = _get(server.url, "/v1/readyz")
        assert status == 200
        assert ready["status"] == "ready"

    def test_shard_unavailable_is_a_circuit_open(self):
        # The degraded-answer path catches CircuitOpen; a dead shard must
        # ride the same rail so allow_stale answers survive worker death.
        from repro.service.errors import CircuitOpen

        assert issubclass(ShardUnavailable, CircuitOpen)
        assert ShardUnavailable.kind == "shard_unavailable"


# ----------------------------------------------------------------------
# Cross-shard /batch
# ----------------------------------------------------------------------


class TestCrossShardBatch:
    BATCH = [
        {"op": "quantify", "dataset": "taskrabbit", "dimension": "group", "k": 3},
        {"op": "quantify", "dataset": "google", "dimension": "group", "k": 3},
        {"op": "quantify", "dataset": "taskrabbit", "dimension": "query", "k": 2},
        {"op": "quantify", "dataset": "google", "dimension": "query", "k": 2},
    ]

    def test_batch_spanning_shards_matches_the_unsharded_answer(
        self, backend, run_server, small_marketplace_dataset, small_search_dataset
    ):
        sharded = run_server(
            _registry(small_marketplace_dataset, small_search_dataset),
            backend=backend,
            shards=2,
            request_timeout=120.0,
            cache_size=0,
        )
        inproc = run_server(
            _registry(small_marketplace_dataset, small_search_dataset),
            backend=backend,
            shards=0,
            request_timeout=120.0,
            cache_size=0,
        )
        status_a, body_a = _post(
            sharded.url, "/v1/batch", {"requests": self.BATCH}
        )
        status_b, body_b = _post(
            inproc.url, "/v1/batch", {"requests": self.BATCH}
        )
        assert status_a == status_b == 200
        assert body_a == body_b
        assert body_a["succeeded"] == len(self.BATCH)

    def test_bad_item_fails_alone_across_shards(
        self, backend, run_server, small_marketplace_dataset, small_search_dataset
    ):
        server = run_server(
            _registry(small_marketplace_dataset, small_search_dataset),
            backend=backend,
            shards=2,
            request_timeout=120.0,
            cache_size=0,
        )
        batch = [
            self.BATCH[0],
            {"op": "quantify", "dataset": "missing", "dimension": "group"},
            self.BATCH[1],
        ]
        status, body = _post(server.url, "/v1/batch", {"requests": batch})
        assert status == 200
        assert [item["status"] for item in body["results"]] == [200, 404, 200]
        failed = body["results"][1]["error"]
        assert failed["code"] == "not_found"
        assert failed["retryable"] is False
        assert body["succeeded"] == 2 and body["failed"] == 1


# ----------------------------------------------------------------------
# Per-dataset registry locks
# ----------------------------------------------------------------------


class TestPerDatasetLocks:
    def test_slow_builds_on_distinct_datasets_overlap(
        self, small_marketplace_dataset, small_search_dataset
    ):
        """Regression: dataset loads used to serialize on one global lock.

        Both loaders rendezvous on a barrier *inside* the build; under the
        old registry-wide lock the second loader could never start, the
        barrier timed out, and this test failed with BrokenBarrierError.
        """
        barrier = threading.Barrier(2, timeout=5.0)
        registry = DatasetRegistry()
        registry.register(
            DatasetSpec(
                name="taskrabbit",
                site="taskrabbit",
                loader=lambda: (barrier.wait(), small_marketplace_dataset)[1],
                description="slow build a",
            )
        )
        registry.register(
            DatasetSpec(
                name="google",
                site="google",
                loader=lambda: (barrier.wait(), small_search_dataset)[1],
                description="slow build b",
            )
        )
        failures: list[BaseException] = []

        def load(name: str) -> None:
            try:
                registry.dataset(name)
            except BaseException as error:  # noqa: BLE001 - surfaced below
                failures.append(error)

        threads = [
            threading.Thread(target=load, args=(name,))
            for name in ("taskrabbit", "google")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert not failures, failures
        assert registry.is_loaded("taskrabbit") and registry.is_loaded("google")

    def test_same_dataset_still_builds_exactly_once(
        self, small_marketplace_dataset
    ):
        calls = []
        registry = DatasetRegistry()
        registry.register(
            DatasetSpec(
                name="taskrabbit",
                site="taskrabbit",
                loader=lambda: (calls.append(1), small_marketplace_dataset)[1],
                description="counted build",
            )
        )
        threads = [
            threading.Thread(target=registry.dataset, args=("taskrabbit",))
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert len(calls) == 1
