"""Shared fixtures: toy datasets, small crawls, and synthetic cubes.

Session-scoped fixtures keep the suite fast: the simulators run once on a
reduced scope (a handful of cities / two study locations) and every test
module reuses the result.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.attributes import default_schema
from repro.core.cube import UnfairnessCube
from repro.core.groups import Group
from repro.experiments.toy import table1_dataset, toy_marketplace_dataset
from repro.marketplace.crawl import run_crawl
from repro.marketplace.site import TaskRabbitSite
from repro.searchengine.engine import GoogleJobsEngine
from repro.searchengine.study import StudyDesign, run_study

SMALL_CITIES = (
    "Birmingham, UK",
    "Oklahoma City, OK",
    "Chicago, IL",
    "San Francisco, CA",
    "Boston, MA",
    "Seattle, WA",
)


@pytest.fixture(scope="session")
def schema():
    return default_schema()


@pytest.fixture(scope="session")
def toy_search_dataset():
    """The paper's Table 1 data as a search dataset."""
    return table1_dataset()


@pytest.fixture(scope="session")
def toy_market_dataset():
    """The paper's Tables 2–3 data as a marketplace dataset."""
    return toy_marketplace_dataset()


@pytest.fixture(scope="session")
def site():
    """A small deterministic marketplace."""
    return TaskRabbitSite(seed=11)


@pytest.fixture(scope="session")
def small_marketplace_dataset(site):
    """Category-level crawl over six cities (48 observations)."""
    return run_crawl(site, level="category", cities=list(SMALL_CITIES)).dataset


@pytest.fixture(scope="session")
def small_search_dataset():
    """A two-location, two-query Google study (20 observations)."""
    engine = GoogleJobsEngine(seed=11)
    design = StudyDesign(
        pairs=(
            ("yard work", "Boston, MA"),
            ("furniture assembly", "Boston, MA"),
            ("yard work", "Washington, DC"),
            ("furniture assembly", "Washington, DC"),
        )
    )
    return run_study(engine, design).dataset


from tests.helpers import make_cube


@pytest.fixture
def cube():
    return make_cube()


# ----------------------------------------------------------------------
# Service backends
# ----------------------------------------------------------------------


@pytest.fixture(params=["threads", "asyncio"])
def backend(request):
    """Every service test runs once per transport: both fronts share one
    application layer, so the whole HTTP surface must be byte-compatible."""
    return request.param


@pytest.fixture(params=[0, 2], ids=["inproc", "shards2"])
def shards(request):
    """Every service test also runs against both execution backends: the
    in-process executor and a two-worker shard pool.  Responses must be
    byte-compatible, so the whole suite doubles as the routing oracle."""
    return request.param


@pytest.fixture
def start_service(backend, shards):
    """A factory booting a live server on the parameterized backend.

    Returns the server (ephemeral port, ``server.url`` ready); every server
    started through the factory is shut down and closed at teardown.  The
    ``shards`` execution-backend parameter is applied unless the test pins
    its own ``shards=`` explicitly.
    """
    from repro.service.server import make_server

    running: list = []

    def _start(registry=None, **kwargs):
        kwargs.setdefault("shards", shards)
        server = make_server(registry=registry, port=0, backend=backend, **kwargs)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        running.append((server, thread))
        return server

    yield _start
    for server, thread in running:
        server.shutdown()
        thread.join(timeout=5)
        server.server_close()
