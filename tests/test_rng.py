"""Deterministic RNG derivation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.rng import derive, spawn_keys, stable_hash


class TestStableHash:
    def test_is_deterministic(self):
        assert stable_hash("a", 1, ("x",)) == stable_hash("a", 1, ("x",))

    def test_differs_by_key(self):
        assert stable_hash("a") != stable_hash("b")

    def test_separator_prevents_concatenation_collisions(self):
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_order_matters(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    @given(st.lists(st.text(), min_size=1, max_size=4))
    def test_is_a_128_bit_integer(self, keys):
        value = stable_hash(*keys)
        assert 0 <= value < 2**128


class TestDerive:
    def test_same_keys_same_stream(self):
        a = derive(7, "workers", "Chicago").uniform(size=5)
        b = derive(7, "workers", "Chicago").uniform(size=5)
        assert np.array_equal(a, b)

    def test_different_keys_different_streams(self):
        a = derive(7, "workers", "Chicago").uniform(size=5)
        b = derive(7, "workers", "Boston").uniform(size=5)
        assert not np.array_equal(a, b)

    def test_different_seeds_different_streams(self):
        a = derive(7, "x").uniform(size=5)
        b = derive(8, "x").uniform(size=5)
        assert not np.array_equal(a, b)

    def test_returns_independent_generator_objects(self):
        gen = derive(1, "a")
        gen.uniform(size=100)  # consume
        fresh = derive(1, "a")
        assert fresh.uniform() != gen.uniform()


class TestSpawnKeys:
    def test_spawns_requested_count(self):
        assert len(spawn_keys(1, ("p",), 4)) == 4

    def test_streams_are_distinct(self):
        gens = spawn_keys(1, ("p",), 3)
        draws = [g.uniform() for g in gens]
        assert len(set(draws)) == 3

    def test_matches_explicit_derivation(self):
        spawned = spawn_keys(1, ("p",), 2)
        assert spawned[1].uniform() == derive(1, "p", 1).uniform()
