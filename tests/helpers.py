"""Test helpers shared across modules."""

from __future__ import annotations

import numpy as np

from repro.core.cube import UnfairnessCube
from repro.core.groups import Group


def make_cube(
    n_groups: int = 4, n_queries: int = 3, n_locations: int = 3, seed: int = 0
) -> UnfairnessCube:
    """A dense synthetic cube with deterministic pseudo-random values."""
    rng = np.random.default_rng(seed)
    genders = [f"g{i}" for i in range(n_groups)]
    schema_groups = [Group({"gender": gender}) for gender in genders]
    queries = [f"q{i}" for i in range(n_queries)]
    locations = [f"l{i}" for i in range(n_locations)]
    values = rng.uniform(0.0, 1.0, size=(n_groups, n_queries, n_locations))
    return UnfairnessCube(schema_groups, queries, locations, values)
