"""Earth Mover's Distance on unit-interval histograms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from scipy.stats import wasserstein_distance

from repro.core.measures.emd import EmdMeasure, emd, emd_from_values
from repro.exceptions import MeasureError
from repro.stats.histograms import UnitHistogram

unit_floats = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
samples = st.lists(unit_floats, min_size=1, max_size=30)


class TestKnownValues:
    def test_identical_distributions(self):
        assert emd_from_values([0.1, 0.5, 0.9], [0.1, 0.5, 0.9]) == 0.0

    def test_opposite_point_masses(self):
        # All mass in the first bin vs all in the last: maximal transport.
        value = emd_from_values([0.0], [1.0], bins=10)
        assert value == pytest.approx(0.9)

    def test_adjacent_bins(self):
        value = emd_from_values([0.05], [0.15], bins=10)
        assert value == pytest.approx(0.1)

    def test_group_size_invariance(self):
        small = [0.25, 0.75]
        large = [0.25, 0.75] * 50
        assert emd_from_values(small, large) == pytest.approx(0.0)


class TestMetricProperties:
    @given(samples, samples)
    def test_symmetry(self, left, right):
        assert emd_from_values(left, right) == pytest.approx(
            emd_from_values(right, left)
        )

    @given(samples)
    def test_identity(self, values):
        assert emd_from_values(values, values) == 0.0

    @given(samples, samples, samples)
    def test_triangle_inequality(self, a, b, c):
        assert emd_from_values(a, c) <= (
            emd_from_values(a, b) + emd_from_values(b, c) + 1e-9
        )

    @given(samples, samples)
    def test_bounded_by_one(self, left, right):
        assert 0.0 <= emd_from_values(left, right) <= 1.0


class TestAgainstScipy:
    @given(samples, samples)
    def test_matches_wasserstein_on_bin_centers(self, left, right):
        bins = 10
        value = emd_from_values(left, right, bins=bins)
        centers = UnitHistogram.from_values(left, bins=bins).bin_centers()
        left_counts = UnitHistogram.from_values(left, bins=bins).pmf()
        right_counts = UnitHistogram.from_values(right, bins=bins).pmf()
        reference = wasserstein_distance(
            centers, centers, left_counts, right_counts
        )
        assert value == pytest.approx(reference, abs=1e-9)


class TestErrors:
    def test_bin_mismatch(self):
        a = UnitHistogram.from_values([0.5], bins=5)
        b = UnitHistogram.from_values([0.5], bins=10)
        with pytest.raises(MeasureError, match="bin counts"):
            emd(a, b)

    def test_empty_side_rejected(self):
        with pytest.raises(MeasureError, match="empty"):
            emd_from_values([], [0.5])

    def test_measure_object_validates_bins(self):
        with pytest.raises(MeasureError, match="positive"):
            EmdMeasure(bins=0)

    def test_measure_object_callable(self):
        measure = EmdMeasure(bins=10)
        assert measure([0.0], [1.0]) == pytest.approx(0.9)
