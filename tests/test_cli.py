"""The command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.data.io import save_marketplace_dataset, save_search_dataset


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert "repro" in capsys.readouterr().out

    def test_quantify_arguments(self):
        args = build_parser().parse_args(
            ["quantify", "taskrabbit", "group", "-k", "3", "--order", "least"]
        )
        assert args.site == "taskrabbit"
        assert args.k == 3
        assert args.order == "least"
        assert args.json is False

    def test_serve_arguments(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--scope", "full", "--cache-size", "64"]
        )
        assert args.command == "serve"
        assert args.port == 0
        assert args.scope == "full"
        assert args.cache_size == 64
        assert args.timeout == 30.0
        assert args.preload is False


class TestToyCommand:
    def test_prints_all_figures(self, capsys):
        assert main(["toy"]) == 0
        out = capsys.readouterr().out
        for figure in ("Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5"):
            assert figure in out
        assert "0.041" in out  # Figure 5 exact unfairness


class TestWithSavedDatasets:
    def test_quantify_on_saved_marketplace_dataset(
        self, small_marketplace_dataset, tmp_path, capsys
    ):
        path = tmp_path / "tr.jsonl"
        save_marketplace_dataset(small_marketplace_dataset, path)
        code = main(
            ["quantify", "taskrabbit", "group", "-k", "2", "--dataset", str(path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "unfairness" in out
        assert "sorted accesses" in out

    def test_quantify_naive_algorithm(
        self, small_marketplace_dataset, tmp_path, capsys
    ):
        path = tmp_path / "tr.jsonl"
        save_marketplace_dataset(small_marketplace_dataset, path)
        code = main(
            [
                "quantify", "taskrabbit", "location", "-k", "2",
                "--dataset", str(path), "--algorithm", "naive",
            ]
        )
        assert code == 0

    def test_compare_with_group_syntax(
        self, small_marketplace_dataset, tmp_path, capsys
    ):
        path = tmp_path / "tr.jsonl"
        save_marketplace_dataset(small_marketplace_dataset, path)
        code = main(
            [
                "compare", "taskrabbit", "group",
                "gender=Male", "gender=Female", "location",
                "--dataset", str(path), "--measure", "emd",
            ]
        )
        assert code == 0
        assert "All" in capsys.readouterr().out

    def test_bad_group_syntax_reports_error(
        self, small_marketplace_dataset, tmp_path, capsys
    ):
        path = tmp_path / "tr.jsonl"
        save_marketplace_dataset(small_marketplace_dataset, path)
        code = main(
            [
                "compare", "taskrabbit", "group", "Male", "Female", "location",
                "--dataset", str(path),
            ]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_explain_command(self, small_marketplace_dataset, tmp_path, capsys):
        path = tmp_path / "tr.jsonl"
        save_marketplace_dataset(small_marketplace_dataset, path)
        query = small_marketplace_dataset.queries[0]
        location = small_marketplace_dataset.locations[0]
        code = main(
            [
                "explain", "taskrabbit",
                "gender=Female,ethnicity=Asian", query, location,
                "--dataset", str(path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "driven most by" in out
        assert "comparable group" in out

    def test_quantify_json_output(self, small_marketplace_dataset, tmp_path, capsys):
        path = tmp_path / "tr.jsonl"
        save_marketplace_dataset(small_marketplace_dataset, path)
        code = main(
            [
                "quantify", "taskrabbit", "group", "-k", "2",
                "--dataset", str(path), "--json",
            ]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "quantification"
        assert document["dimension"] == "group"
        assert len(document["entries"]) == 2
        entry = document["entries"][0]
        assert set(entry) == {"name", "predicates", "unfairness"}
        assert document["access_stats"]["sorted_accesses"] > 0

    def test_compare_json_output(self, small_marketplace_dataset, tmp_path, capsys):
        path = tmp_path / "tr.jsonl"
        save_marketplace_dataset(small_marketplace_dataset, path)
        code = main(
            [
                "compare", "taskrabbit", "group",
                "gender=Male", "gender=Female", "location",
                "--dataset", str(path), "--json",
            ]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "comparison"
        assert document["r1"]["predicates"] == {"gender": "Male"}
        assert isinstance(document["reversed_members"], list)
        assert document["rows"]

    def test_quantify_on_saved_search_dataset(
        self, small_search_dataset, tmp_path, capsys
    ):
        path = tmp_path / "g.jsonl"
        save_search_dataset(small_search_dataset, path)
        code = main(
            [
                "quantify", "google", "location", "-k", "2",
                "--dataset", str(path), "--measure", "jaccard",
            ]
        )
        assert code == 0


class TestBatchCommand:
    """Exit-code policy: 1 only when *every* sub-request failed.

    Partial failures are data — the envelope carries per-item errors and the
    failure count goes to stderr — so audit pipelines keep the answers they
    did get.
    """

    def _requests_file(self, tmp_path, items) -> str:
        path = tmp_path / "requests.json"
        path.write_text(json.dumps(items), encoding="utf-8")
        return str(path)

    def test_all_failed_batch_exits_1_with_stderr_count(self, tmp_path, capsys):
        # Unknown datasets fail during validation, before any dataset loads.
        path = self._requests_file(
            tmp_path,
            [
                {"op": "quantify", "dataset": "nope", "dimension": "group"},
                {"op": "quantify", "dataset": "missing", "dimension": "group"},
            ],
        )
        code = main(["batch", path])
        captured = capsys.readouterr()
        assert code == 1
        document = json.loads(captured.out)
        assert document["count"] == 2
        assert document["failed"] == 2
        assert all(item["status"] == 404 for item in document["results"])
        assert "2 of 2 sub-requests failed" in captured.err

    def test_partial_failure_exits_0_but_still_reports(
        self, small_marketplace_dataset, tmp_path, capsys
    ):
        data = tmp_path / "tr.jsonl"
        save_marketplace_dataset(small_marketplace_dataset, data)
        path = self._requests_file(
            tmp_path,
            [
                {"op": "quantify", "dataset": "taskrabbit", "dimension": "group", "k": 2},
                {"op": "quantify", "dataset": "atlantis", "dimension": "group"},
            ],
        )
        code = main(["batch", path, "--taskrabbit-data", str(data)])
        captured = capsys.readouterr()
        assert code == 0
        document = json.loads(captured.out)
        assert document["count"] == 2
        assert document["failed"] == 1
        assert document["results"][0]["status"] == 200
        assert document["results"][0]["body"]["entries"]
        assert document["results"][1]["status"] == 404
        assert "1 of 2 sub-requests failed" in captured.err

    def test_fully_successful_batch_is_quiet_on_stderr(
        self, small_marketplace_dataset, tmp_path, capsys
    ):
        data = tmp_path / "tr.jsonl"
        save_marketplace_dataset(small_marketplace_dataset, data)
        path = self._requests_file(
            tmp_path,
            [{"op": "quantify", "dataset": "taskrabbit", "dimension": "group", "k": 2}],
        )
        code = main(["batch", path, "--taskrabbit-data", str(data)])
        captured = capsys.readouterr()
        assert code == 0
        assert json.loads(captured.out)["failed"] == 0
        assert captured.err == ""
