"""The three-layer split: import hygiene, async admission, drain, keep-alive.

The refactor's contract is structural, so these tests assert structure:

* **layering** — the application layer (``app``, ``handlers``,
  ``resilience``, ``faults``, ``cache``) imports nothing from
  ``http.server`` or ``repro.service.transports``, checked in a clean
  subprocess so this suite's own imports cannot mask a violation;
* **async admission** — ``AdmissionController.acquire_async`` shares the
  sync path's counters and shed policy (grant, queue-full shed, queue
  timeout, slot hand-off to a parked waiter);
* **graceful drain** — at shutdown, requests already admitted or queued
  complete while new arrivals get 503 + ``Connection: close``, on both
  backends;
* **client keep-alive** — ``FBoxClient`` drives many requests over one
  connection, asserted via the server's ``fbox_connections_total``.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import subprocess
import sys
import textwrap
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

import repro
from repro.client import FBoxClient, RetryPolicy
from repro.service.errors import TooManyRequests
from repro.service.faults import FaultInjector, FaultRule
from repro.service.resilience import AdmissionController

from tests.test_service import ServiceHarness, _registry

_SRC = str(Path(repro.__file__).resolve().parents[1])


# ----------------------------------------------------------------------
# Layering
# ----------------------------------------------------------------------


class TestLayering:
    def test_application_layer_never_imports_a_transport(self):
        """The acceptance criterion, checked in a pristine interpreter."""
        code = textwrap.dedent(
            """
            import sys

            import repro.service.app
            import repro.service.handlers
            import repro.service.resilience
            import repro.service.faults
            import repro.service.cache

            offenders = sorted(
                name
                for name in sys.modules
                if name == "http.server"
                or name.startswith("repro.service.transports")
            )
            if offenders:
                raise SystemExit(f"transport leaked into the app layer: {offenders}")
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [_SRC] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
        )
        result = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True
        )
        assert result.returncode == 0, result.stderr

    def test_lazy_server_exports_still_resolve(self):
        import repro.service as service
        from repro.service.transports.aio import AioFBoxServer
        from repro.service.transports.threaded import FBoxServer

        assert service.FBoxServer is FBoxServer
        assert service.AioFBoxServer is AioFBoxServer
        assert callable(service.make_server)
        with pytest.raises(AttributeError):
            service.no_such_export


# ----------------------------------------------------------------------
# Async admission
# ----------------------------------------------------------------------


class TestAsyncAdmission:
    def test_grant_within_capacity(self):
        admission = AdmissionController(max_concurrency=2, max_queue=0)

        async def scenario():
            await admission.acquire_async()

        asyncio.run(scenario())
        snapshot = admission.snapshot()
        assert snapshot["accepted"] == 1
        assert snapshot["active"] == 1
        admission.release()
        assert admission.snapshot()["active"] == 0

    def test_disabled_controller_is_a_noop(self):
        admission = AdmissionController(max_concurrency=0)

        async def scenario():
            await admission.acquire_async()

        asyncio.run(scenario())
        assert admission.snapshot()["accepted"] == 0

    def test_sheds_immediately_when_queue_is_full(self):
        admission = AdmissionController(max_concurrency=1, max_queue=0)
        admission.acquire()

        async def scenario():
            with pytest.raises(TooManyRequests, match="queue is full"):
                await admission.acquire_async()

        asyncio.run(scenario())
        snapshot = admission.snapshot()
        assert snapshot["shed"] == 1
        assert snapshot["accepted"] == 1
        admission.release()

    def test_queued_waiter_sheds_after_queue_timeout(self):
        admission = AdmissionController(
            max_concurrency=1, max_queue=4, queue_timeout=0.05
        )
        admission.acquire()

        async def scenario():
            started = time.monotonic()
            with pytest.raises(TooManyRequests, match="queued longer"):
                await admission.acquire_async()
            return time.monotonic() - started

        elapsed = asyncio.run(scenario())
        assert elapsed >= 0.05
        snapshot = admission.snapshot()
        assert snapshot["shed"] == 1
        assert snapshot["queue_depth"] == 0
        admission.release()

    def test_parked_waiter_gets_the_freed_slot(self):
        admission = AdmissionController(max_concurrency=1, max_queue=1)
        admission.acquire()

        async def scenario():
            waiter = asyncio.ensure_future(admission.acquire_async())
            await asyncio.sleep(0.05)
            assert not waiter.done()
            assert admission.snapshot()["queue_depth"] == 1
            # Release from another thread, like the executor callback path.
            threading.Thread(target=admission.release, daemon=True).start()
            await asyncio.wait_for(waiter, 2.0)

        asyncio.run(scenario())
        snapshot = admission.snapshot()
        assert snapshot["accepted"] == 2
        assert snapshot["queue_depth"] == 0
        assert snapshot["active"] == 1
        admission.release()


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------


class TestGracefulDrain:
    def test_drain_completes_queued_work_and_refuses_new_arrivals(
        self, start_service, small_marketplace_dataset, small_search_dataset
    ):
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        faults = FaultInjector(
            [FaultRule(site="latency", match="/quantify", skip=1, latency=0.6)]
        )
        server = start_service(
            registry=registry,
            request_timeout=30.0,
            max_concurrency=1,
            queue_depth=4,
            faults=faults,
        )
        harness = ServiceHarness(server)
        payload = {"dataset": "taskrabbit", "dimension": "group", "k": 3}
        assert harness.post("/v1/quantify", payload)[0] == 200  # warm-up, no delay

        outcomes: list[tuple[int, dict]] = []

        def slow_request():
            outcomes.append(harness.post("/v1/quantify", payload))

        # One request admitted (executing the 0.6s stall), one queued.
        workers = [
            threading.Thread(target=slow_request, daemon=True) for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        time.sleep(0.2)

        drainer = threading.Thread(target=server.drain, args=(10.0,), daemon=True)
        drainer.start()
        time.sleep(0.1)  # drain flips the app to draining before polling

        # A new arrival while draining: refused, and told to hang up.
        request = urllib.request.Request(
            harness.base + "/v1/quantify",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 503
        assert excinfo.value.headers.get("Connection") == "close"
        body = json.loads(excinfo.value.read())
        assert body["error"]["kind"] == "shutting_down"

        # The admitted and the queued request both finish with answers.
        for worker in workers:
            worker.join(timeout=10)
        drainer.join(timeout=10)
        assert not drainer.is_alive(), "drain never finished"
        assert [status for status, _ in outcomes] == [200, 200]
        assert all(body["entries"] for _, body in outcomes)


# ----------------------------------------------------------------------
# Client keep-alive
# ----------------------------------------------------------------------


class TestClientKeepAlive:
    def test_many_requests_share_one_connection(
        self, start_service, small_marketplace_dataset, small_search_dataset
    ):
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        server = start_service(registry=registry, request_timeout=60.0)
        with FBoxClient(server.url, retry=RetryPolicy(seed=5)) as client:
            client.healthz()
            client.quantify("taskrabbit", "group", k=3)
            client.quantify("taskrabbit", "group", k=3)  # cache hit
            client.datasets()
            text = client.metrics_text()
        assert client.connections_opened == 1
        assert "fbox_connections_total 1" in text

    def test_connection_is_reopened_after_the_server_drops_it(
        self, start_service, small_marketplace_dataset, small_search_dataset
    ):
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        server = start_service(registry=registry, request_timeout=60.0)
        client = FBoxClient(server.url, retry=RetryPolicy(seed=5))
        assert client.healthz()["status"] == "ok"
        # Simulate an idled-out keep-alive: the connection is dead on the
        # wire but the client still holds the connection object.
        client._connection.sock.shutdown(socket.SHUT_RDWR)
        assert client.healthz()["status"] == "ok"
        assert client.connections_opened == 2
        # The silent replay consumed no retry-policy attempts.
        assert client.retries == 0
        assert client.sleeps == []

    def test_rejects_non_http_base_urls(self):
        with pytest.raises(ValueError, match="http://"):
            FBoxClient("ftp://example.org")
