"""Exposure unfairness (§3.3.2) and the Figure 5 walkthrough."""

from __future__ import annotations

import pytest

from repro.core.measures.exposure import (
    ExposureMeasure,
    exposure_deviation,
    group_exposure_mass,
    group_relevance_mass,
)
from repro.core.rankings import RankedList
from repro.exceptions import MeasureError
from repro.experiments.toy import figure5_exposure, table3_ranking


class TestFigure5:
    """The paper's exactly-computable worked example."""

    def test_group_exposure_mass(self):
        result = figure5_exposure()
        assert result.group_exposure == pytest.approx(0.94, abs=0.01)

    def test_comparable_exposure_mass(self):
        result = figure5_exposure()
        assert result.comparable_exposure == pytest.approx(4.0, abs=0.06)

    def test_group_relevance_mass(self):
        result = figure5_exposure()
        assert result.group_relevance == pytest.approx(0.5)

    def test_comparable_relevance_mass(self):
        result = figure5_exposure()
        assert result.comparable_relevance == pytest.approx(2.9)

    def test_shares(self):
        result = figure5_exposure()
        assert result.exposure_share == pytest.approx(0.19, abs=0.005)
        assert result.relevance_share == pytest.approx(0.15, abs=0.005)

    def test_unfairness(self):
        assert figure5_exposure().unfairness == pytest.approx(0.04, abs=0.005)


class TestMasses:
    def test_exposure_mass_sums_members(self):
        ranking = RankedList(["a", "b", "c"])
        total = group_exposure_mass(ranking, ["a", "c"])
        assert total == pytest.approx(ranking.exposure("a") + ranking.exposure("c"))

    def test_relevance_mass_uses_proxy(self):
        ranking = table3_ranking()
        assert group_relevance_mass(ranking, ["w3"]) == pytest.approx(0.9)

    def test_relevance_mass_uses_true_scores(self):
        ranking = table3_ranking(with_scores=True)
        assert group_relevance_mass(ranking, ["w8"]) == pytest.approx(0.8)


class TestDeviation:
    def test_empty_group_rejected(self):
        ranking = RankedList(["a", "b"])
        with pytest.raises(MeasureError, match="no members"):
            exposure_deviation(ranking, [], {"other": ["b"]})

    def test_invalid_denominator_rejected(self):
        ranking = RankedList(["a", "b"])
        with pytest.raises(MeasureError, match="denominator"):
            exposure_deviation(ranking, ["a"], {}, denominator="global")

    def test_binary_complement_symmetry_under_comparables(self):
        """Two jointly exhaustive groups get identical deviations.

        This is the property that makes the paper's unequal Male/Female
        exposure values unreproducible from its formulas (EXPERIMENTS.md).
        """
        ranking = RankedList(["a", "b", "c", "d"])
        males = ["a", "c"]
        females = ["b", "d"]
        dev_m = exposure_deviation(ranking, males, {"Female": females})
        dev_f = exposure_deviation(ranking, females, {"Male": males})
        assert dev_m == pytest.approx(dev_f)

    def test_ranking_denominator_breaks_symmetry_with_unlabeled(self):
        ranking = RankedList(["a", "b", "c", "d", "u"])  # 'u' in no group
        males = ["a", "c"]
        females = ["b", "d"]
        dev_m = exposure_deviation(ranking, males, {"Female": females}, "ranking")
        dev_f = exposure_deviation(ranking, females, {"Male": males}, "ranking")
        assert dev_m != pytest.approx(dev_f)

    def test_perfectly_proportional_group_has_low_deviation(self):
        # A group spread evenly through the ranking tracks its relevance.
        ranking = RankedList([f"w{i}" for i in range(1, 11)])
        evens = [f"w{i}" for i in range(2, 11, 2)]
        odds = [f"w{i}" for i in range(1, 11, 2)]
        deviation = exposure_deviation(ranking, evens, {"odds": odds})
        assert deviation < 0.1

    def test_bottom_group_deviates_more_than_spread_group(self):
        ranking = RankedList([f"w{i}" for i in range(1, 11)])
        bottom = ["w9", "w10"]
        spread = ["w2", "w8"]
        rest = [w for w in ranking if w not in bottom and w not in spread]
        dev_bottom = exposure_deviation(ranking, bottom, {"rest": rest + spread})
        dev_spread = exposure_deviation(ranking, spread, {"rest": rest + bottom})
        assert dev_bottom > dev_spread

    def test_measure_object(self):
        measure = ExposureMeasure()
        ranking = RankedList(["a", "b"])
        assert measure(ranking, ["a"], {"other": ["b"]}) >= 0.0
