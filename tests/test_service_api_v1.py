"""The versioned /v1 API surface: byte-compatibility, deprecation headers,
the unified error envelope, and the machine-readable /v1/schema document.

Every test runs over both transports *and* both execution backends (the
``backend``/``shards`` conftest parameters).  Legacy unversioned paths are
retired by default — known routes answer ``410 gone`` with a ``v1_path``
pointer — and the straggler passthrough (``legacy_routes="serve"``) must
stay byte-identical to ``/v1/...`` with the RFC 8594
``Deprecation``/``Sunset`` headers attached.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.client import FBoxClient, RetryPolicy
from repro.service.errors import error_catalog
from repro.service.handlers import API_PREFIX, API_VERSION, LEGACY_SUNSET
from repro.service.registry import DatasetRegistry, DatasetSpec


def _registry(small_marketplace_dataset, small_search_dataset) -> DatasetRegistry:
    registry = DatasetRegistry()
    registry.register(
        DatasetSpec(
            name="taskrabbit",
            site="taskrabbit",
            loader=lambda: small_marketplace_dataset,
            description="six-city category crawl",
        )
    )
    registry.register(
        DatasetSpec(
            name="google",
            site="google",
            loader=lambda: small_search_dataset,
            description="two-location study",
        )
    )
    return registry


def _exchange(base: str, method: str, path: str, payload=None):
    """One raw HTTP exchange returning ``(status, body_bytes, headers)``."""
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        base + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, error.read(), dict(error.headers)


@pytest.fixture
def service(start_service, small_marketplace_dataset, small_search_dataset):
    registry = _registry(small_marketplace_dataset, small_search_dataset)
    # cache_size=0 keeps repeated POSTs byte-identical (no "cached" flip),
    # which is what lets the /v1-vs-legacy comparison demand equality.
    # legacy_routes="serve" opts into the straggler passthrough these
    # compatibility tests exist to pin down; the retirement default is
    # covered by TestLegacyRetired.
    return start_service(
        registry=registry,
        request_timeout=60.0,
        cache_size=0,
        legacy_routes="serve",
    )


QUANTIFY = {"dataset": "taskrabbit", "dimension": "group", "k": 3}

PROBES = [
    ("GET", "/healthz", None),
    ("GET", "/readyz", None),
    ("GET", "/datasets", None),
    ("GET", "/schema", None),
    ("POST", "/quantify", QUANTIFY),
    ("POST", "/nope", {"x": 1}),  # 404s must be versioned consistently too
    ("POST", "/quantify", {"dataset": "missing", "dimension": "group"}),
]


class TestVersionedPaths:
    def test_v1_and_legacy_answers_are_byte_identical(self, service):
        for method, path, payload in PROBES:
            legacy = _exchange(service.url, method, path, payload)
            versioned = _exchange(service.url, method, API_PREFIX + path, payload)
            assert versioned[0] == legacy[0], path
            assert versioned[1] == legacy[1], path

    def test_legacy_paths_carry_deprecation_and_sunset(self, service):
        for method, path, payload in PROBES:
            _, _, headers = _exchange(service.url, method, path, payload)
            assert headers.get("Deprecation") == "true", path
            assert headers.get("Sunset") == LEGACY_SUNSET, path

    def test_v1_paths_are_not_deprecated(self, service):
        for method, path, payload in PROBES:
            _, _, headers = _exchange(service.url, method, API_PREFIX + path, payload)
            assert "Deprecation" not in headers, path
            assert "Sunset" not in headers, path

    def test_metrics_served_under_both_mounts(self, service):
        legacy_status, legacy_body, headers = _exchange(
            service.url, "GET", "/metrics"
        )
        v1_status, v1_body, v1_headers = _exchange(
            service.url, "GET", API_PREFIX + "/metrics"
        )
        assert legacy_status == v1_status == 200
        assert headers.get("Deprecation") == "true"
        assert "Deprecation" not in v1_headers
        # Bodies are scraped at different instants (request counters moved),
        # but both must be the Prometheus exposition of the same families.
        assert b"fbox_requests_total" in legacy_body
        assert b"fbox_requests_total" in v1_body


class TestLegacyRetired:
    """The default build (no ``legacy_routes`` override) retires the
    unversioned mount: known routes answer 410 with a pointer."""

    @pytest.fixture
    def gone_service(
        self, start_service, small_marketplace_dataset, small_search_dataset
    ):
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        return start_service(registry=registry, request_timeout=60.0)

    def test_known_legacy_paths_answer_410_with_pointer(self, gone_service):
        for method, path, payload in PROBES:
            if path == "/nope":
                continue  # unknown everywhere; stays 404 below
            status, body, _ = _exchange(gone_service.url, method, path, payload)
            assert status == 410, path
            error = json.loads(body)["error"]
            assert error["code"] == "gone"
            assert error["retryable"] is False
            assert error["v1_path"] == API_PREFIX + path

    def test_unknown_legacy_paths_stay_404(self, gone_service):
        status, body, _ = _exchange(gone_service.url, "POST", "/nope", {"x": 1})
        assert status == 404
        assert json.loads(body)["error"]["code"] == "not_found"

    def test_versioned_paths_are_unaffected(self, gone_service):
        status, body, _ = _exchange(
            gone_service.url, "POST", API_PREFIX + "/quantify", QUANTIFY
        )
        assert status == 200
        assert json.loads(body)["kind"] == "quantification"

    def test_client_surfaces_410_as_non_retryable(self, gone_service):
        from repro.client import ClientError

        with FBoxClient(
            gone_service.url, retry=RetryPolicy(max_attempts=3, seed=0)
        ) as client:
            with pytest.raises(ClientError) as excinfo:
                client.request("GET", "/healthz")
        assert excinfo.value.status == 410


class TestErrorEnvelope:
    def test_validation_error_envelope(self, service):
        status, body, _ = _exchange(
            service.url, "POST", "/v1/quantify", {"dataset": "taskrabbit"}
        )
        assert status == 400
        error = json.loads(body)["error"]
        assert error["code"] == error["kind"]
        assert isinstance(error["message"], str) and error["message"]
        assert error["retryable"] is False

    def test_not_found_envelope(self, service):
        status, body, _ = _exchange(service.url, "GET", "/v1/missing")
        assert status == 404
        error = json.loads(body)["error"]
        assert error["code"] == "not_found"
        assert error["retryable"] is False

    def test_unknown_dataset_envelope(self, service):
        status, body, _ = _exchange(
            service.url,
            "POST",
            "/v1/quantify",
            {"dataset": "nope", "dimension": "group"},
        )
        assert status == 404
        error = json.loads(body)["error"]
        assert error["code"] == "not_found"
        assert error["kind"] == "not_found"  # the deprecated alias survives

    def test_catalog_codes_are_unique_and_complete(self):
        catalog = error_catalog()
        codes = [entry["code"] for entry in catalog]
        assert len(codes) == len(set(codes))
        for expected in (
            "bad_request",
            "not_found",
            "timeout",
            "circuit_open",
            "shard_unavailable",
            "overloaded",
            "shutting_down",
            "internal",
        ):
            assert expected in codes
        for entry in catalog:
            assert set(entry) >= {"code", "status", "retryable", "description"}


class TestSchemaEndpoint:
    def test_schema_document_shape(self, service):
        status, body, _ = _exchange(service.url, "GET", "/v1/schema")
        assert status == 200
        doc = json.loads(body)
        assert doc["version"] == API_VERSION
        assert doc["mount"] == API_PREFIX
        assert doc["legacy"]["deprecated"] is True
        assert doc["legacy"]["sunset"] == LEGACY_SUNSET
        paths = {endpoint["path"] for endpoint in doc["endpoints"]}
        for suffix in (
            "/quantify", "/compare", "/explain", "/batch",
            "/datasets", "/schema", "/healthz", "/readyz", "/metrics",
        ):
            assert API_PREFIX + suffix in paths
        for endpoint in doc["endpoints"]:
            assert endpoint["path"].startswith(API_PREFIX)
            assert endpoint["legacy_path"] == endpoint["path"][len(API_PREFIX):]
            assert endpoint["method"] in ("GET", "POST")

    def test_schema_reflects_validation_constants(self, service):
        _, body, _ = _exchange(service.url, "GET", "/v1/schema")
        doc = json.loads(body)
        by_path = {endpoint["path"]: endpoint for endpoint in doc["endpoints"]}
        quantify = by_path["/v1/quantify"]
        fields = {f["name"]: f for f in quantify["request_fields"]}
        assert set(fields["dimension"]["enum"]) == {"group", "query", "location"}
        assert set(fields["algorithm"]["enum"]) == {"fagin", "naive"}
        assert fields["k"]["default"] == 5
        batch = by_path["/v1/batch"]
        assert batch["batch"]["max_items"] == 64
        assert set(batch["batch"]["ops"]) == {"quantify", "compare", "explain"}
        assert doc["errors"] == error_catalog()


class TestClientSpeaksV1:
    def test_endpoint_sugar_uses_the_versioned_mount(self, service):
        with FBoxClient(
            service.url, retry=RetryPolicy(max_attempts=1, seed=0)
        ) as client:
            assert client.api_prefix == API_PREFIX
            answer = client.quantify("taskrabbit", "group", k=3)
            assert answer["kind"] == "quantification"
            assert client.schema()["version"] == API_VERSION
            assert client.healthz()["status"] == "ok"
            names = [d["name"] for d in client.datasets()["datasets"]]
            assert names == ["taskrabbit", "google"]
            # The raw surface still reaches legacy paths for compat tests.
            status, body = client.request("POST", "/quantify", QUANTIFY)
            assert status == 200 and body["kind"] == "quantification"
