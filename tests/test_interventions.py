"""What-if interventions: FA*IR re-ranking, the exposure LP, and /v1/whatif.

Three layers under test:

* the core re-rankers (`fair_rerank`, `exposure_lp_rerank`) and their
  mathematical guarantees — prefix fairness, double stochasticity, weak
  improvement, determinism;
* the intervention registry and `FBox.whatif`;
* the service endpoint, including byte-identity across every core ×
  transport × execution-backend combination and the robustness of an
  intervention's benefit under position-biased click feedback.
"""

from __future__ import annotations

import json
import math
import random
import urllib.request

import numpy as np
import pytest

from repro.core.attributes import default_schema
from repro.core.fbox import FBox
from repro.core.groups import Group
from repro.core.interventions import (
    InterventionResult,
    _exposure_lp_matrix,
    apply_intervention,
    available_interventions,
    exposure_lp_rerank,
    fair_rerank,
    intervention_info,
    measure_deltas,
    register_intervention,
)
from repro.core.measures.base import (
    GROUP_RANKING,
    register_measure,
    unregister_measure,
)
from repro.core.measures.exposure import exposure_deviation
from repro.core.measures.fair import DEFAULT_ALPHA, FairMeasure, prefix_failures
from repro.core.rankings import RankedList
from repro.exceptions import MeasureError
from repro.data.schema import MarketplaceDataset
from repro.service.registry import DatasetRegistry, DatasetSpec

from tests.test_service import ServiceHarness


# ----------------------------------------------------------------------
# Ranking builders
# ----------------------------------------------------------------------


def _ranking(n: int, protected_at: list[int], scores: bool = False):
    """A ranking of ``n`` items, the protected group at the given ranks."""
    items = [f"w{i}" for i in range(n)]
    protected = [items[i] for i in protected_at]
    score_map = None
    if scores:
        score_map = {item: 1.0 - 0.9 * i / n for i, item in enumerate(items)}
    return RankedList(items, score_map), protected


def _degrade(ranking: RankedList, members) -> RankedList:
    """Push every group member to the bottom, keeping relative order."""
    mem = set(members)
    return RankedList(
        [w for w in ranking.items if w not in mem]
        + [w for w in ranking.items if w in mem],
        ranking.scores,
    )


def _comparables(ranking: RankedList, protected) -> dict[str, list[str]]:
    return {"rest": [item for item in ranking.items if item not in set(protected)]}


# ----------------------------------------------------------------------
# FA*IR greedy re-ranking
# ----------------------------------------------------------------------


class TestFairRerank:
    @pytest.mark.parametrize(
        "n,protected_at,alpha",
        [
            (20, list(range(14, 20)), DEFAULT_ALPHA),  # stacked at the bottom
            (30, list(range(20, 30)), 0.05),
            (50, [48, 49], DEFAULT_ALPHA),  # tiny group
            (12, [0, 1, 2, 3], 0.2),  # already on top
        ],
    )
    def test_fair_at_every_prefix(self, n, protected_at, alpha):
        ranking, protected = _ranking(n, protected_at)
        out = fair_rerank(ranking, protected, alpha=alpha)
        p = len(protected) / n
        assert prefix_failures(out, frozenset(protected), p, alpha) == 0
        # and the registered measure agrees: exactly fair
        measure = FairMeasure(alpha=alpha)
        assert measure.group_value(out, protected, {}) == 0.0

    def test_preserves_within_group_order_and_items(self):
        ranking, protected = _ranking(25, list(range(18, 25)))
        out = fair_rerank(ranking, protected)
        assert sorted(out.items) == sorted(ranking.items)
        mem = set(protected)
        for group in (mem, set(ranking.items) - mem):
            original = [w for w in ranking.items if w in group]
            reranked = [w for w in out.items if w in group]
            assert reranked == original

    def test_scores_survive_the_rerank(self):
        ranking, protected = _ranking(16, [12, 13, 14, 15], scores=True)
        out = fair_rerank(ranking, protected)
        assert out.scores == ranking.scores

    def test_empty_ranking_is_an_error(self):
        with pytest.raises(MeasureError, match="empty"):
            fair_rerank(RankedList([]), ["w0"])

    def test_trivial_groups_return_the_original(self):
        ranking, _ = _ranking(8, [])
        assert fair_rerank(ranking, []).items == ranking.items
        assert fair_rerank(ranking, list(ranking.items)).items == ranking.items

    def test_explicit_p_tightens_the_requirement(self):
        ranking, protected = _ranking(20, list(range(16, 20)))
        out = fair_rerank(ranking, protected, p=0.4)
        # with a demanded share (0.4) above the actual (0.2), the greedy
        # pass still satisfies every mtable threshold it can: all the
        # protected items are pulled forward.
        positions = [out.rank(w) for w in protected]
        baseline = [ranking.rank(w) for w in protected]
        assert max(positions) < max(baseline)


# ----------------------------------------------------------------------
# The exposure LP
# ----------------------------------------------------------------------


class TestExposureLP:
    @pytest.mark.parametrize("scored", [False, True], ids=["proxy", "scored"])
    def test_lp_optimum_is_doubly_stochastic(self, scored):
        ranking, protected = _ranking(15, list(range(10, 15)), scores=scored)
        matrix = _exposure_lp_matrix(
            ranking, protected, _comparables(ranking, protected)
        )
        assert matrix is not None
        assert matrix.shape == (15, 15)
        assert np.allclose(matrix.sum(axis=0), 1.0, atol=1e-7)
        assert np.allclose(matrix.sum(axis=1), 1.0, atol=1e-7)
        assert matrix.min() >= -1e-9

    @pytest.mark.parametrize("scored", [False, True], ids=["proxy", "scored"])
    @pytest.mark.parametrize("trial", range(3))
    def test_weakly_improves_exposure_deviation(self, scored, trial):
        rng = random.Random(trial)
        items = [f"w{i}" for i in range(18)]
        rng.shuffle(items)
        scores = (
            {item: rng.uniform(0.1, 1.0) for item in items} if scored else None
        )
        ranking = RankedList(items, scores)
        protected = rng.sample(items, 6)
        comparables = _comparables(ranking, protected)
        before = exposure_deviation(ranking, protected, comparables)
        out = exposure_lp_rerank(ranking, protected, comparables, seed=trial)
        after = exposure_deviation(out, protected, comparables)
        assert after <= before + 1e-9
        assert sorted(out.items) == sorted(ranking.items)

    def test_strictly_repairs_a_degraded_ranking(self):
        ranking, protected = _ranking(30, list(range(8)))
        degraded = _degrade(ranking, protected)
        comparables = _comparables(ranking, protected)
        before = exposure_deviation(degraded, protected, comparables)
        out = exposure_lp_rerank(degraded, protected, comparables)
        after = exposure_deviation(out, protected, comparables)
        assert before > 0.05  # the degradation is material
        assert after < before / 2  # and the LP substantially repairs it

    def test_scored_rankings_use_true_relevance(self):
        # high-scoring protected items stuck at the bottom: with true
        # scores their relevance share is large, so the LP must pull
        # them up even though the rank proxy would say they belong there.
        items = [f"w{i}" for i in range(12)]
        scores = {item: 0.95 - 0.07 * i for i, item in enumerate(items)}
        protected = items[8:]
        for item in protected:
            scores[item] = 0.9
        ranking = RankedList(items, scores)
        comparables = _comparables(ranking, protected)
        before = exposure_deviation(ranking, protected, comparables)
        out = exposure_lp_rerank(ranking, protected, comparables)
        after = exposure_deviation(out, protected, comparables)
        assert after < before
        assert min(out.rank(w) for w in protected) < min(
            ranking.rank(w) for w in protected
        )

    def test_deterministic_under_seed(self):
        ranking, protected = _ranking(20, list(range(13, 20)))
        degraded = _degrade(ranking, protected)
        comparables = _comparables(ranking, protected)
        first = exposure_lp_rerank(degraded, protected, comparables, seed=7)
        second = exposure_lp_rerank(degraded, protected, comparables, seed=7)
        assert first.items == second.items

    def test_empty_inputs_are_errors(self):
        with pytest.raises(MeasureError, match="empty"):
            exposure_lp_rerank(RankedList([]), ["w0"], {})
        ranking, _ = _ranking(5, [])
        with pytest.raises(MeasureError, match="no members"):
            exposure_lp_rerank(ranking, [], {})


# ----------------------------------------------------------------------
# Registry + report plumbing
# ----------------------------------------------------------------------


class TestInterventionRegistry:
    def test_both_canonical_interventions_are_registered(self):
        assert {"fair", "exposure_lp"} <= set(available_interventions())

    def test_unknown_intervention_lists_the_alternatives(self):
        with pytest.raises(MeasureError, match="exposure_lp"):
            intervention_info("nope")

    def test_duplicate_registration_is_rejected(self):
        with pytest.raises(MeasureError, match="already registered"):
            register_intervention("fair", lambda *a, **k: None)

    def test_describe_carries_the_option_schema(self):
        info = intervention_info("fair")
        document = info.describe()
        assert document["name"] == "fair"
        assert {option["name"] for option in document["options"]} == {"alpha", "p"}

    def test_apply_intervention_filters_foreign_options(self):
        ranking, protected = _ranking(15, list(range(10, 15)))
        # `seed` belongs to exposure_lp, `alpha` to fair; one option bag
        # must serve both without either raising on the other's keys.
        result = apply_intervention(
            "fair", ranking, protected, _comparables(ranking, protected),
            alpha=0.1, p=None, seed=3,
        )
        assert isinstance(result, InterventionResult)
        assert result.intervention == "fair"

    def test_report_covers_every_group_ranking_measure(self):
        ranking, protected = _ranking(20, list(range(14, 20)))
        degraded = _degrade(ranking, protected)
        comparables = _comparables(ranking, protected)
        result = apply_intervention("fair", degraded, protected, comparables)
        assert {"emd", "exposure", "fair"} <= set(result.before)
        assert set(result.before) == set(result.after)
        assert result.after["fair"] == 0.0
        assert result.delta("fair") == -result.before["fair"]
        assert result.delta("missing") is None
        assert result.moved > 0

    def test_measure_deltas_skips_undefined_cells(self):
        ranking, protected = _ranking(6, [4, 5])
        before, after = measure_deltas(ranking, ranking, protected, {})
        assert before == after  # identical rankings, and nothing crashed


# ----------------------------------------------------------------------
# FBox.whatif
# ----------------------------------------------------------------------


class TestFBoxWhatif:
    def test_marketplace_whatif_reports_deltas(
        self, small_marketplace_dataset, schema
    ):
        fbox = FBox.for_marketplace(
            small_marketplace_dataset, schema, measure="exposure"
        )
        result = fbox.whatif(
            Group({"gender": "Female"}), "Handyman", "Birmingham, UK", "fair"
        )
        assert result.after["fair"] == 0.0
        assert sorted(result.reranked.items) == sorted(result.original.items)

    def test_search_engines_cannot_whatif(self, small_search_dataset, schema):
        fbox = FBox.for_search(small_search_dataset, schema, measure="kendall")
        with pytest.raises(MeasureError, match="group-ranking"):
            fbox.whatif(Group({"gender": "Female"}), "yard work", "Boston, MA", "fair")


# ----------------------------------------------------------------------
# POST /v1/whatif over the live service
# ----------------------------------------------------------------------


def _whatif_payload(**overrides):
    payload = {
        "dataset": "taskrabbit",
        "group": "gender=Female",
        "query": "Handyman",
        "location": "Birmingham, UK",
        "intervention": "fair",
    }
    payload.update(overrides)
    return payload


@pytest.fixture
def whatif_service(start_service, small_marketplace_dataset, small_search_dataset):
    from tests.test_service import _registry

    registry = _registry(small_marketplace_dataset, small_search_dataset)
    return ServiceHarness(start_service(registry=registry, request_timeout=60.0))


class TestWhatifEndpoint:
    def test_whatif_answers_and_caches(self, whatif_service):
        status, body = whatif_service.post("/v1/whatif", _whatif_payload())
        assert status == 200
        assert body["kind"] == "whatif"
        assert body["cached"] is False
        assert body["intervention"] == "fair"
        assert sorted(body["reranked"]) == sorted(body["original"])
        assert body["measures"]["fair"]["after"] == 0.0
        for entry in body["measures"].values():
            assert entry["delta"] == pytest.approx(entry["after"] - entry["before"])
        status, again = whatif_service.post("/v1/whatif", _whatif_payload())
        assert status == 200 and again["cached"] is True

    def test_exposure_lp_weakly_improves_over_http(self, whatif_service):
        status, body = whatif_service.post(
            "/v1/whatif", _whatif_payload(intervention="exposure_lp", seed=3)
        )
        assert status == 200
        exposure = body["measures"]["exposure"]
        assert exposure["after"] <= exposure["before"] + 1e-9

    def test_missing_field_is_400(self, whatif_service):
        payload = _whatif_payload()
        del payload["group"]
        status, body = whatif_service.post("/v1/whatif", payload)
        assert status == 400 and "group" in body["error"]["message"]

    def test_unknown_dataset_is_404(self, whatif_service):
        status, _ = whatif_service.post(
            "/v1/whatif", _whatif_payload(dataset="missing")
        )
        assert status == 404

    def test_unknown_intervention_is_422(self, whatif_service):
        status, body = whatif_service.post(
            "/v1/whatif", _whatif_payload(intervention="bogus")
        )
        assert status == 422 and "bogus" in body["error"]["message"]

    def test_search_dataset_is_422(self, whatif_service):
        status, body = whatif_service.post(
            "/v1/whatif",
            _whatif_payload(dataset="google", query="yard work",
                            location="Boston, MA"),
        )
        assert status == 422 and "group-ranking" in body["error"]["message"]

    def test_bad_group_and_undefined_cell_are_422(self, whatif_service):
        status, _ = whatif_service.post(
            "/v1/whatif", _whatif_payload(group="gender=Purple")
        )
        assert status == 422
        status, _ = whatif_service.post(
            "/v1/whatif", _whatif_payload(query="Nonexistent Task")
        )
        assert status == 422

    def test_schema_lists_interventions_and_the_endpoint(self, whatif_service):
        status, body = whatif_service.get_json("/v1/schema")
        assert status == 200
        names = [entry["name"] for entry in body["interventions"]]
        assert names == available_interventions()
        paths = {entry["path"] for entry in body["endpoints"]}
        assert "/v1/whatif" in paths


# ----------------------------------------------------------------------
# Byte-identity: dict vs columnar core, both transports, both executors
# ----------------------------------------------------------------------


class TestWhatifParity:
    def test_whatif_is_byte_identical_across_cores(
        self, start_service, small_marketplace_dataset, small_search_dataset
    ):
        from tests.test_service import _registry

        payloads = [
            _whatif_payload(),
            _whatif_payload(intervention="exposure_lp", seed=5),
            _whatif_payload(intervention="fair", alpha=0.2),
        ]
        answers = {}
        for core in ("dict", "columnar"):
            registry = _registry(small_marketplace_dataset, small_search_dataset)
            harness = ServiceHarness(
                start_service(registry=registry, core=core, request_timeout=60.0)
            )
            answers[core] = [
                harness.post("/v1/whatif", payload) for payload in payloads
            ]
        assert answers["dict"] == answers["columnar"]


# ----------------------------------------------------------------------
# Satellite: a dynamically registered measure is immediately servable
# ----------------------------------------------------------------------


class _ToyGapMeasure:
    """Max-minus-min exposure gap — a minimal group-ranking measure."""

    name = "toygap"

    def group_value(self, ranking, group_members, comparable_members):
        exposures = [ranking.exposure(item) for item in group_members]
        if not exposures:
            raise MeasureError("no members")
        return (max(exposures) - min(exposures)) / max(exposures)

    __call__ = group_value


class TestDynamicMeasureRegistration:
    def test_new_measure_serves_quantify_and_schema_without_service_edits(
        self, start_service, small_marketplace_dataset, small_search_dataset
    ):
        from tests.test_service import _registry

        registry = _registry(small_marketplace_dataset, small_search_dataset)
        # in-process execution only: forked shard workers re-import the
        # measure registry and would not see a parent-side registration.
        harness = ServiceHarness(
            start_service(registry=registry, shards=0, request_timeout=60.0)
        )
        register_measure(
            "toygap",
            _ToyGapMeasure,
            family=GROUP_RANKING,
            description="max-min exposure gap (test-only)",
        )
        try:
            status, body = harness.post(
                "/v1/quantify",
                {"dataset": "taskrabbit", "measure": "toygap",
                 "dimension": "group", "k": 3},
            )
            assert status == 200
            assert body["measure"] == "toygap"
            assert len(body["entries"]) > 0

            status, schema_doc = harness.get_json("/v1/schema")
            assert status == 200
            names = [entry["name"] for entry in schema_doc["measures"]]
            assert "toygap" in names
            quantify_fields = next(
                entry for entry in schema_doc["endpoints"]
                if entry["path"] == "/v1/quantify"
            )["request_fields"]
            measure_field = next(
                field for field in quantify_fields if field["name"] == "measure"
            )
            assert "toygap" in measure_field["enum"]
        finally:
            unregister_measure("toygap")


# ----------------------------------------------------------------------
# Satellite: the intervention's benefit survives biased click feedback
# ----------------------------------------------------------------------


def _simulate_clicks(items: list[str], seed: int) -> list[str]:
    """Position-biased click re-ranking (Suhr et al.'s feedback loop).

    Each item is clicked with probability proportional to its exposure
    ``1/ln(1+rank)``; items are re-ranked by click count with rank as the
    tie-break, which is how repeated user feedback would re-order the list.
    """
    rng = random.Random(seed)
    clicks = {
        item: sum(
            1
            for _ in range(40)
            if rng.random() < 1.0 / math.log(1.0 + rank)
        )
        for rank, item in enumerate(items, start=1)
    }
    return sorted(items, key=lambda item: (-clicks[item], items.index(item)))


class TestClickFeedbackRobustness:
    def test_whatif_improvement_survives_an_ingest_round_trip(
        self, start_service, small_marketplace_dataset, schema
    ):
        dataset = MarketplaceDataset(
            workers=small_marketplace_dataset.workers.values(),
            observations=small_marketplace_dataset.observations(),
        )
        registry = DatasetRegistry()
        registry.register(
            DatasetSpec(
                name="taskrabbit",
                site="taskrabbit",
                loader=lambda: dataset,
                description="click-robustness copy",
            )
        )
        harness = ServiceHarness(
            start_service(registry=registry, shards=0, request_timeout=60.0)
        )
        query, location = "Handyman", "Birmingham, UK"
        group = Group({"gender": "Female"})
        members = dataset.members_in_ranking(
            group, dataset.observation(query, location).ranking
        )
        # materialize the exposure F-Box so every ingest below records a
        # trend point for it (trends replay only live measures).
        status, _ = harness.post(
            "/v1/quantify",
            {"dataset": "taskrabbit", "dimension": "group", "measure": "exposure"},
        )
        assert status == 200

        # batch 1: a degraded ranking (the group pushed to the bottom).
        degraded = _degrade(dataset.observation(query, location).ranking, members)
        status, _ = harness.post(
            "/v1/observations",
            {"dataset": "taskrabbit", "batch_id": "degraded",
             "observations": [{"query": query, "location": location,
                               "ranking": list(degraded.items)}]},
        )
        assert status == 200

        # the intervention repairs it...
        status, body = harness.post(
            "/v1/whatif",
            _whatif_payload(query=query, location=location,
                            intervention="exposure_lp"),
        )
        assert status == 200
        exposure = body["measures"]["exposure"]
        assert exposure["after"] < exposure["before"]

        # ...and the repair survives position-biased clicks: re-ingest the
        # clicked-on reranked list and the trend still shows the drop.
        clicked = _simulate_clicks(body["reranked"], seed=17)
        status, _ = harness.post(
            "/v1/observations",
            {"dataset": "taskrabbit", "batch_id": "clicked",
             "observations": [{"query": query, "location": location,
                               "ranking": clicked}]},
        )
        assert status == 200

        status, trends = harness.get_json(
            "/v1/trends?dataset=taskrabbit&measure=exposure"
            "&group=gender%3DFemale&query=Handyman"
            "&location=Birmingham%2C%20UK"
        )
        assert status == 200
        points = trends["points"]
        assert len(points) >= 2
        assert points[-1]["value"] < points[-2]["value"]
