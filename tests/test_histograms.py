"""Unit-interval histograms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import MeasureError
from repro.stats.histograms import DEFAULT_BINS, UnitHistogram, pooled_histogram

unit_floats = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestConstruction:
    def test_from_values_bins_correctly(self):
        hist = UnitHistogram.from_values([0.05, 0.15, 0.95], bins=10)
        assert hist.counts[0] == 1
        assert hist.counts[1] == 1
        assert hist.counts[9] == 1

    def test_value_of_exactly_one_goes_to_last_bin(self):
        hist = UnitHistogram.from_values([1.0], bins=10)
        assert hist.counts[9] == 1

    def test_rejects_out_of_range_values(self):
        with pytest.raises(MeasureError, match="lie in"):
            UnitHistogram.from_values([1.5])

    def test_rejects_negative_values(self):
        with pytest.raises(MeasureError):
            UnitHistogram.from_values([-0.1])

    def test_rejects_nonpositive_bins(self):
        with pytest.raises(MeasureError, match="positive"):
            UnitHistogram.from_values([0.5], bins=0)

    def test_rejects_count_shape_mismatch(self):
        with pytest.raises(MeasureError):
            UnitHistogram(counts=np.ones(5), bins=10)

    def test_rejects_negative_counts(self):
        with pytest.raises(MeasureError):
            UnitHistogram(counts=np.array([1.0, -1.0]), bins=2)

    def test_counts_are_immutable(self):
        hist = UnitHistogram.from_values([0.5])
        with pytest.raises(ValueError):
            hist.counts[0] = 99


class TestProperties:
    def test_total_counts_values(self):
        hist = UnitHistogram.from_values([0.1, 0.2, 0.3])
        assert hist.total == 3.0

    def test_empty_histogram(self):
        hist = UnitHistogram.from_values([])
        assert hist.is_empty
        with pytest.raises(MeasureError, match="empty"):
            hist.pmf()

    def test_pmf_sums_to_one(self):
        hist = UnitHistogram.from_values([0.1, 0.5, 0.9, 0.9])
        assert hist.pmf().sum() == pytest.approx(1.0)

    def test_bin_centers(self):
        hist = UnitHistogram.from_values([], bins=4)
        assert list(hist.bin_centers()) == pytest.approx([0.125, 0.375, 0.625, 0.875])

    def test_len_is_bin_count(self):
        assert len(UnitHistogram.from_values([], bins=7)) == 7

    @given(st.lists(unit_floats, max_size=50))
    def test_total_equals_sample_size(self, values):
        assert UnitHistogram.from_values(values).total == len(values)


class TestMerge:
    def test_merge_pools_counts(self):
        a = UnitHistogram.from_values([0.1, 0.2])
        b = UnitHistogram.from_values([0.8])
        assert a.merge(b).total == 3.0

    def test_merge_rejects_different_layouts(self):
        a = UnitHistogram.from_values([], bins=5)
        b = UnitHistogram.from_values([], bins=10)
        with pytest.raises(MeasureError, match="bin layouts"):
            a.merge(b)

    def test_pooled_histogram_equals_concatenation(self):
        pooled = pooled_histogram([[0.1, 0.2], [0.9], []])
        direct = UnitHistogram.from_values([0.1, 0.2, 0.9])
        assert np.array_equal(pooled.counts, direct.counts)

    @given(st.lists(unit_floats, max_size=20), st.lists(unit_floats, max_size=20))
    def test_merge_is_commutative(self, left, right):
        a = UnitHistogram.from_values(left)
        b = UnitHistogram.from_values(right)
        assert np.array_equal(a.merge(b).counts, b.merge(a).counts)

    def test_default_bins(self):
        assert UnitHistogram.from_values([0.5]).bins == DEFAULT_BINS
