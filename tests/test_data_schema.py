"""Observation record types and dataset containers."""

from __future__ import annotations

import pytest

from repro.core.groups import Group
from repro.core.rankings import RankedList
from repro.data.schema import (
    MarketplaceDataset,
    MarketplaceObservation,
    SearchDataset,
    SearchObservation,
    SearchUser,
    WorkerProfile,
)
from repro.exceptions import DataError


def worker(worker_id, gender="Male", ethnicity="White", **features):
    return WorkerProfile(
        worker_id=worker_id,
        attributes={"gender": gender, "ethnicity": ethnicity},
        features=features,
    )


class TestWorkerProfile:
    def test_rejects_empty_id(self):
        with pytest.raises(DataError):
            WorkerProfile(worker_id="", attributes={})

    def test_attributes_are_copied(self):
        attributes = {"gender": "Male"}
        profile = WorkerProfile("w1", attributes)
        attributes["gender"] = "Female"
        assert profile.attributes["gender"] == "Male"

    def test_offers_everything_by_default(self):
        assert worker("w1").offers("Anything")

    def test_offers_respects_explicit_set(self):
        profile = WorkerProfile("w1", {}, offerings=frozenset({"Delivery"}))
        assert profile.offers("Delivery")
        assert not profile.offers("Handyman")


class TestObservations:
    def test_marketplace_observation_requires_nonempty_ranking(self):
        with pytest.raises(DataError, match="empty ranking"):
            MarketplaceObservation("q", "l", RankedList([]))

    def test_marketplace_observation_requires_query_and_location(self):
        with pytest.raises(DataError):
            MarketplaceObservation("", "l", RankedList(["a"]))

    def test_search_observation_requires_users(self):
        with pytest.raises(DataError, match="no user result lists"):
            SearchObservation("q", "l", {})


class TestMarketplaceDataset:
    def make(self):
        workers = [worker("w1"), worker("w2", gender="Female")]
        observations = [
            MarketplaceObservation("clean", "Boston", RankedList(["w1", "w2"])),
            MarketplaceObservation("clean", "Bristol", RankedList(["w2", "w1"])),
        ]
        return MarketplaceDataset(workers, observations)

    def test_queries_and_locations(self):
        dataset = self.make()
        assert dataset.queries == ["clean"]
        assert dataset.locations == ["Boston", "Bristol"]

    def test_observation_lookup(self):
        dataset = self.make()
        assert dataset.observation("clean", "Boston").ranking.items == ("w1", "w2")
        assert dataset.has_observation("clean", "Bristol")
        assert not dataset.has_observation("clean", "Paris")

    def test_missing_observation_raises(self):
        with pytest.raises(DataError, match="no observation"):
            self.make().observation("clean", "Paris")

    def test_members_in_ranking(self):
        dataset = self.make()
        ranking = dataset.observation("clean", "Boston").ranking
        females = dataset.members_in_ranking(Group({"gender": "Female"}), ranking)
        assert females == ["w2"]

    def test_duplicate_worker_rejected(self):
        with pytest.raises(DataError, match="duplicate worker"):
            MarketplaceDataset(
                [worker("w1"), worker("w1")],
                [MarketplaceObservation("q", "l", RankedList(["w1"]))],
            )

    def test_unknown_worker_in_ranking_rejected(self):
        with pytest.raises(DataError, match="unknown worker"):
            MarketplaceDataset(
                [worker("w1")],
                [MarketplaceObservation("q", "l", RankedList(["w1", "ghost"]))],
            )

    def test_duplicate_observation_rejected(self):
        observation = MarketplaceObservation("q", "l", RankedList(["w1"]))
        with pytest.raises(DataError, match="duplicate observation"):
            MarketplaceDataset([worker("w1")], [observation, observation])

    def test_empty_dataset_rejected(self):
        with pytest.raises(DataError, match="at least one observation"):
            MarketplaceDataset([worker("w1")], [])


class TestSearchDataset:
    def make(self):
        users = [
            SearchUser("u1", {"gender": "Male", "ethnicity": "White"}),
            SearchUser("u2", {"gender": "Female", "ethnicity": "White"}),
        ]
        observation = SearchObservation(
            "clean",
            "Boston",
            {"u1": RankedList(["a", "b"]), "u2": RankedList(["b", "a"])},
        )
        return SearchDataset(users, [observation])

    def test_members_in_observation(self):
        dataset = self.make()
        observation = dataset.observation("clean", "Boston")
        males = dataset.members_in_observation(Group({"gender": "Male"}), observation)
        assert males == ["u1"]

    def test_duplicate_user_rejected(self):
        users = [SearchUser("u1", {}), SearchUser("u1", {})]
        with pytest.raises(DataError, match="duplicate user"):
            SearchDataset(
                users, [SearchObservation("q", "l", {"u1": RankedList(["a"])})]
            )

    def test_unknown_user_rejected(self):
        with pytest.raises(DataError, match="unknown user"):
            SearchDataset(
                [SearchUser("u1", {})],
                [SearchObservation("q", "l", {"ghost": RankedList(["a"])})],
            )

    def test_len_counts_observations(self):
        assert len(self.make()) == 1
