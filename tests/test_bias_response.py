"""The bias model's dose-response: more bias ⇒ more measured unfairness.

The calibration rests on measured unfairness responding monotonically to
the injected bias intensity; these tests pin that property at the scales
the experiments use.
"""

from __future__ import annotations

import pytest

from repro.core.fbox import FBox
from repro.core.groups import Group
from repro.marketplace.crawl import run_crawl
from repro.marketplace.site import TaskRabbitSite

CITIES = ["Birmingham, UK", "Oklahoma City, OK", "Boston, MA", "Chicago, IL"]
AF = Group({"gender": "Female", "ethnicity": "Asian"})


def _af_unfairness(bias_scale: float, schema) -> float:
    site = TaskRabbitSite(seed=19, bias_scale=bias_scale)
    dataset = run_crawl(site, level="category", cities=CITIES).dataset
    fbox = FBox.for_marketplace(dataset, schema, measure="emd")
    return fbox.aggregate(groups=[AF])


class TestDoseResponse:
    def test_asian_female_unfairness_grows_with_bias(self, schema):
        low = _af_unfairness(0.0, schema)
        mid = _af_unfairness(0.5, schema)
        high = _af_unfairness(1.0, schema)
        assert high > low
        assert mid > low

    def test_bias_widens_the_af_wm_gap(self, schema):
        """The AF−WM gap has a size-artifact floor component (a 3-member
        group's histograms are noisier than a 24-member group's); injected
        bias must widen it beyond that floor."""
        wm = Group({"gender": "Male", "ethnicity": "White"})

        def gap(bias_scale: float) -> float:
            site = TaskRabbitSite(seed=19, bias_scale=bias_scale)
            dataset = run_crawl(site, level="category", cities=CITIES).dataset
            fbox = FBox.for_marketplace(dataset, schema, measure="emd")
            return fbox.aggregate(groups=[AF]) - fbox.aggregate(groups=[wm])

        assert gap(1.0) < gap(0.0) + 0.1  # sanity: same order of magnitude
        assert gap(1.0) > gap(0.0) - 0.02  # bias never shrinks the gap much
        # The dose-response itself:
        assert _af_unfairness(1.0, schema) > _af_unfairness(0.0, schema)


class TestExposureNormalizationModes:
    def test_modes_differ_on_real_rankings(self, schema, small_marketplace_dataset):
        male = Group({"gender": "Male"})
        literal = FBox.for_marketplace(
            small_marketplace_dataset, schema, measure="exposure",
            exposure_denominator="comparables",
        )
        ranking_wide = FBox.for_marketplace(
            small_marketplace_dataset, schema, measure="exposure",
            exposure_denominator="ranking",
        )
        assert literal.aggregate(groups=[male]) != pytest.approx(
            ranking_wide.aggregate(groups=[male])
        )

    def test_literal_mode_keeps_gender_symmetry(self, schema, small_marketplace_dataset):
        fbox = FBox.for_marketplace(
            small_marketplace_dataset, schema, measure="exposure",
            exposure_denominator="comparables",
        )
        male = fbox.aggregate(groups=[Group({"gender": "Male"})])
        female = fbox.aggregate(groups=[Group({"gender": "Female"})])
        assert male == pytest.approx(female)

    def test_ranking_mode_breaks_gender_symmetry(self, schema, small_marketplace_dataset):
        fbox = FBox.for_marketplace(
            small_marketplace_dataset, schema, measure="exposure",
            exposure_denominator="ranking",
        )
        male = fbox.aggregate(groups=[Group({"gender": "Male"})])
        female = fbox.aggregate(groups=[Group({"gender": "Female"})])
        assert male != pytest.approx(female)
