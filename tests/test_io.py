"""JSONL dataset persistence."""

from __future__ import annotations

import pytest

from repro.data.io import (
    load_marketplace_dataset,
    load_search_dataset,
    save_marketplace_dataset,
    save_search_dataset,
)
from repro.exceptions import DataError


class TestMarketplaceRoundTrip:
    def test_round_trip_preserves_everything(self, small_marketplace_dataset, tmp_path):
        path = tmp_path / "market.jsonl"
        save_marketplace_dataset(small_marketplace_dataset, path)
        loaded = load_marketplace_dataset(path)
        assert set(loaded.workers) == set(small_marketplace_dataset.workers)
        assert loaded.queries == small_marketplace_dataset.queries
        assert loaded.locations == small_marketplace_dataset.locations
        original = small_marketplace_dataset.observations()[0]
        reloaded = loaded.observation(original.query, original.location)
        assert reloaded.ranking.items == original.ranking.items

    def test_round_trip_preserves_attributes_and_features(
        self, small_marketplace_dataset, tmp_path
    ):
        path = tmp_path / "market.jsonl"
        save_marketplace_dataset(small_marketplace_dataset, path)
        loaded = load_marketplace_dataset(path)
        worker_id = next(iter(small_marketplace_dataset.workers))
        original = small_marketplace_dataset.workers[worker_id]
        restored = loaded.workers[worker_id]
        assert restored.attributes == original.attributes
        assert restored.features == original.features


class TestSearchRoundTrip:
    def test_round_trip(self, small_search_dataset, tmp_path):
        path = tmp_path / "search.jsonl"
        save_search_dataset(small_search_dataset, path)
        loaded = load_search_dataset(path)
        assert set(loaded.users) == set(small_search_dataset.users)
        assert len(loaded) == len(small_search_dataset)
        original = small_search_dataset.observations()[0]
        reloaded = loaded.observation(original.query, original.location)
        for user_id, ranking in original.results_by_user.items():
            assert reloaded.results_by_user[user_id].items == ranking.items


class TestErrors:
    def test_invalid_json_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "worker"\n')
        with pytest.raises(DataError, match="invalid JSON"):
            load_marketplace_dataset(path)

    def test_unknown_record_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "mystery"}\n')
        with pytest.raises(DataError, match="unknown record kind"):
            load_marketplace_dataset(path)

    def test_blank_lines_are_skipped(self, small_search_dataset, tmp_path):
        path = tmp_path / "search.jsonl"
        save_search_dataset(small_search_dataset, path)
        path.write_text(path.read_text() + "\n\n")
        loaded = load_search_dataset(path)
        assert len(loaded) == len(small_search_dataset)
