"""Groups, variants, comparable groups, and the group lattice (§3.1)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.attributes import AttributeSchema, default_schema
from repro.core.groups import (
    Group,
    comparable_groups,
    enumerate_groups,
    group_lattice,
    variants,
)
from repro.exceptions import SchemaError

BLACK_FEMALE = Group({"gender": "Female", "ethnicity": "Black"})


class TestGroup:
    def test_label_is_canonical(self):
        a = Group({"gender": "Female", "ethnicity": "Black"})
        b = Group({"ethnicity": "Black", "gender": "Female"})
        assert a == b
        assert hash(a) == hash(b)

    def test_rejects_empty_label(self):
        with pytest.raises(SchemaError, match="at least one predicate"):
            Group({})

    def test_attributes(self):
        assert BLACK_FEMALE.attributes == ("ethnicity", "gender")

    def test_value_of(self):
        assert BLACK_FEMALE.value_of("gender") == "Female"

    def test_value_of_unconstrained_raises(self):
        with pytest.raises(SchemaError):
            BLACK_FEMALE.value_of("income")

    def test_with_value(self):
        male = BLACK_FEMALE.with_value("gender", "Male")
        assert male.value_of("gender") == "Male"
        assert male.value_of("ethnicity") == "Black"

    def test_with_value_unconstrained_raises(self):
        with pytest.raises(SchemaError):
            BLACK_FEMALE.with_value("income", "high")

    def test_matches_superset_profile(self):
        assert BLACK_FEMALE.matches(
            {"gender": "Female", "ethnicity": "Black", "city": "Boston"}
        )

    def test_does_not_match_differing_profile(self):
        assert not BLACK_FEMALE.matches({"gender": "Male", "ethnicity": "Black"})

    def test_does_not_match_missing_attribute(self):
        assert not BLACK_FEMALE.matches({"gender": "Female"})

    def test_display_name_for_full_profile(self):
        assert BLACK_FEMALE.name == "Black Female"

    def test_display_name_for_marginal_group(self):
        assert Group({"ethnicity": "Asian"}).name == "Asian"

    def test_validate_against_schema(self, schema):
        BLACK_FEMALE.validate(schema)
        with pytest.raises(SchemaError):
            Group({"gender": "Robot"}).validate(schema)


class TestVariants:
    def test_gender_variant_of_full_profile(self, schema):
        result = variants(BLACK_FEMALE, "gender", schema)
        assert result == [Group({"gender": "Male", "ethnicity": "Black"})]

    def test_ethnicity_variants_of_full_profile(self, schema):
        result = variants(BLACK_FEMALE, "ethnicity", schema)
        names = {group.name for group in result}
        assert names == {"Asian Female", "White Female"}

    def test_never_contains_self(self, schema):
        for attribute in BLACK_FEMALE.attributes:
            assert BLACK_FEMALE not in variants(BLACK_FEMALE, attribute, schema)

    def test_unconstrained_attribute_raises(self, schema):
        with pytest.raises(SchemaError):
            variants(Group({"gender": "Male"}), "ethnicity", schema)


class TestComparableGroups:
    def test_paper_example_black_females(self, schema):
        names = {group.name for group in comparable_groups(BLACK_FEMALE, schema)}
        assert names == {"Black Male", "Asian Female", "White Female"}

    def test_marginal_group_compares_within_attribute(self, schema):
        names = {g.name for g in comparable_groups(Group({"gender": "Male"}), schema)}
        assert names == {"Female"}

    def test_ethnicity_marginal(self, schema):
        names = {g.name for g in comparable_groups(Group({"ethnicity": "Asian"}), schema)}
        assert names == {"Black", "White"}

    def test_no_duplicates(self, schema):
        result = comparable_groups(BLACK_FEMALE, schema)
        assert len(result) == len(set(result))

    def test_comparability_is_symmetric(self, schema):
        for group in group_lattice(schema):
            for other in comparable_groups(group, schema):
                assert group in comparable_groups(other, schema)


class TestEnumeration:
    def test_full_profiles(self, schema):
        groups = enumerate_groups(schema)
        assert len(groups) == 6

    def test_single_attribute(self, schema):
        groups = enumerate_groups(schema, ["ethnicity"])
        assert {g.name for g in groups} == {"Asian", "Black", "White"}

    def test_lattice_has_eleven_groups(self, schema):
        lattice = group_lattice(schema)
        assert len(lattice) == 11
        assert len(set(lattice)) == 11

    def test_lattice_finest_first(self, schema):
        lattice = group_lattice(schema)
        assert all(len(g.attributes) == 2 for g in lattice[:6])
        assert all(len(g.attributes) == 1 for g in lattice[6:])

    def test_lattice_scales_with_schema(self):
        schema = AttributeSchema({"a": ("1", "2"), "b": ("x", "y"), "c": ("p", "q")})
        # 3 single (×2) + 3 pairs (×4) + 1 triple (×8) = 6 + 12 + 8
        assert len(group_lattice(schema)) == 26

    @given(st.sampled_from(["gender", "ethnicity"]))
    def test_every_lattice_group_has_comparables(self, attribute):
        schema = default_schema()
        for group in group_lattice(schema):
            assert comparable_groups(group, schema)
