"""The columnar shared-memory core: equivalence, segments, restart-attach.

The columnar engine (``repro.core.colstore``) must be *indistinguishable*
from the dict reference implementation: same top-k entries, rounds, access
accounting and early stops, same comparison reports, same delta counters
after live ingest — down to the byte over HTTP.  These tests pin that
contract at three layers:

* algorithm level — ``top_k`` / ``quantify_many`` over synthetic cubes
  (dense and NaN-sparse) with a dict family vs a columnar family;
* F-Box level — real crawl datasets, including incremental deltas, plus
  segment publish / attach / restart lifecycle and leak checks;
* service level — a dict server and a columnar server answer the same
  request list identically (every backend × sharding parameterization),
  and a respawned shard worker *attaches* to the published segment
  instead of rebuilding.
"""

from __future__ import annotations

import glob
import json
import os
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.colstore import (
    AttachedFBox,
    ColumnarFamily,
    ColumnarFBox,
    ColumnarStore,
    SegmentMiss,
    SegmentSpace,
)
from repro.core.fagin import top_k
from repro.core.fbox import FBox
from repro.core.indices import build_family
from repro.data.schema import MarketplaceDataset
from repro.marketplace.crawl import emit_observations as emit_marketplace
from repro.service.faults import FAULTS_ENV_VAR
from repro.service.ingest import decode_observations
from repro.service.registry import DatasetRegistry, DatasetSpec
from repro.service.server import make_server
from repro.service.sharding import shard_for

from tests.helpers import make_cube

DIMENSIONS = ("group", "query", "location")


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def _columnar_family(cube, dimension: str, order: str) -> ColumnarFamily:
    descending = order == "most"
    store = ColumnarStore.from_cube(cube, [(dimension, descending)])
    offsets, perm = store.families[(dimension, descending)]
    return ColumnarFamily(cube, dimension, descending, offsets, perm)


def _assert_results_match(columnar, reference) -> None:
    """Full TopKResult equality: payload, effort, and cost accounting."""
    assert columnar.entries == reference.entries
    assert columnar.order == reference.order
    assert columnar.rounds == reference.rounds
    assert columnar.early_stopped == reference.early_stopped
    assert columnar.stats.sorted_accesses == reference.stats.sorted_accesses
    assert columnar.stats.random_accesses == reference.stats.random_accesses
    assert columnar.stats.sorted_misses == reference.stats.sorted_misses
    assert columnar.stats.random_misses == reference.stats.random_misses


def _sparse_cube():
    """A cube with missing cells, an empty posting list, and a dead member."""
    cube = make_cube(n_groups=5, n_queries=4, n_locations=3, seed=7)
    cube.values[0, 0, 0] = np.nan  # drop one member from one list
    cube.values[:, 1, 2] = np.nan  # a fully-empty posting list
    cube.values[3, :, :] = np.nan  # a member defined nowhere
    cube.values[4, 2:, :] = np.nan  # a member defined only sometimes
    return cube


def _copy_marketplace(dataset: MarketplaceDataset) -> MarketplaceDataset:
    return MarketplaceDataset(
        workers=dataset.workers.values(), observations=dataset.observations()
    )


def _market_batch(site, dataset, seed=0, batch_size=3, swaps=2) -> list[dict]:
    return next(
        emit_marketplace(
            site, dataset, batches=1, batch_size=batch_size, seed=seed, swaps=swaps
        )
    )


def _get(base: str, path: str):
    try:
        with urllib.request.urlopen(base + path) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get_text(base: str, path: str) -> str:
    with urllib.request.urlopen(base + path) as response:
        return response.read().decode("utf-8")


def _post(base: str, path: str, payload):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _metric(text: str, name: str) -> int:
    for line in text.splitlines():
        if line.startswith(name + " "):
            return int(float(line.split()[-1]))
    raise AssertionError(f"metric {name!r} not in exposition")


def _registry(marketplace, search=None, **kwargs) -> DatasetRegistry:
    registry = DatasetRegistry(**kwargs)
    registry.register(
        DatasetSpec(
            name="taskrabbit",
            site="taskrabbit",
            loader=lambda: marketplace,
            description="six-city category crawl",
        )
    )
    if search is not None:
        registry.register(
            DatasetSpec(
                name="google",
                site="google",
                loader=lambda: search,
                description="two-location study",
            )
        )
    return registry


@pytest.fixture
def space():
    """A uniquely-namespaced segment space, swept clean at teardown."""
    token = f"t{os.getpid():x}{os.urandom(3).hex()}"
    space = SegmentSpace(token)
    yield space
    space.close()
    leaked = glob.glob(f"/dev/shm/fbx{token}*")
    assert leaked == [], f"leaked shared-memory segments: {leaked}"


# ----------------------------------------------------------------------
# Algorithm level: dict family vs columnar family
# ----------------------------------------------------------------------


class TestTopKEquivalence:
    @pytest.mark.parametrize("dimension", DIMENSIONS)
    @pytest.mark.parametrize("order", ["most", "least"])
    def test_dense_cube(self, dimension, order):
        cube = make_cube(n_groups=6, n_queries=4, n_locations=5, seed=3)
        for k in (1, 2, 4, 99):
            reference = top_k(cube, dimension, k, order=order)
            columnar = top_k(
                cube,
                dimension,
                k,
                order=order,
                family=_columnar_family(cube, dimension, order),
            )
            _assert_results_match(columnar, reference)

    @pytest.mark.parametrize("dimension", DIMENSIONS)
    @pytest.mark.parametrize("order", ["most", "least"])
    def test_nan_sparse_cube(self, dimension, order):
        cube = _sparse_cube()
        for k in (1, 3, 99):
            reference = top_k(cube, dimension, k, order=order)
            columnar = top_k(
                cube,
                dimension,
                k,
                order=order,
                family=_columnar_family(cube, dimension, order),
            )
            _assert_results_match(columnar, reference)

    def test_columnar_family_dispatches_run_sweep(self):
        cube = make_cube()
        family = _columnar_family(cube, "group", "most")
        assert hasattr(family, "run_sweep")
        direct = family.run_sweep(2, "most")
        via_top_k = top_k(cube, "group", 2, family=family)
        assert via_top_k.entries == direct.entries

    def test_posting_lists_match_dict_family(self):
        cube = _sparse_cube()
        for dimension in DIMENSIONS:
            reference = build_family(cube, dimension)
            columnar = _columnar_family(cube, dimension, "most")
            assert columnar.pair_keys == reference.pair_keys
            for pair in reference.pair_keys:
                assert (
                    columnar.posting_list(pair).entries
                    == reference.posting_list(pair).entries
                )


class TestFBoxEquivalence:
    """Dict FBox vs ColumnarFBox over real crawl/study datasets."""

    @pytest.fixture
    def boxes(self, schema, small_marketplace_dataset):
        dataset = _copy_marketplace(small_marketplace_dataset)
        return (
            FBox.for_marketplace(dataset, schema),
            ColumnarFBox.for_marketplace(dataset, schema),
            dataset,
        )

    def test_quantify_and_compare(self, boxes):
        reference, columnar, _ = boxes
        for dimension in DIMENSIONS:
            for order in ("most", "least"):
                _assert_results_match(
                    columnar.quantify(dimension, k=3, order=order),
                    reference.quantify(dimension, k=3, order=order),
                )
        naive = reference.quantify("group", k=3, algorithm="naive")
        assert columnar.quantify("group", k=3, algorithm="naive").entries == (
            naive.entries
        )
        left, right = reference.locations[0], reference.locations[1]
        for algorithm in ("cube", "indices"):
            ours = columnar.compare("location", left, right, "query", algorithm)
            theirs = reference.compare("location", left, right, "query", algorithm)
            assert ours.reversed_members == theirs.reversed_members
            assert [
                (row.member, row.value_r1, row.value_r2) for row in ours.rows
            ] == [(row.member, row.value_r1, row.value_r2) for row in theirs.rows]

    def test_quantify_many_slices(self, boxes):
        reference, columnar, _ = boxes
        ours = columnar.quantify_many("group", [1, 2, 5])
        theirs = reference.quantify_many("group", [1, 2, 5])
        assert ours.keys() == theirs.keys()
        for k in ours:
            _assert_results_match(ours[k], theirs[k])

    def test_cubes_and_aggregates_identical(self, boxes):
        reference, columnar, _ = boxes
        assert np.array_equal(
            columnar.cube.values, reference.cube.values, equal_nan=True
        )
        query = reference.queries[0]
        assert columnar.aggregate(queries=[query]) == reference.aggregate(
            queries=[query]
        )

    def test_post_ingest_delta_stays_byte_identical(
        self, boxes, schema, site
    ):
        reference, columnar, dataset = boxes
        reference.cube, columnar.cube  # materialize both pre-delta
        reference.family("group"), columnar.family("group")
        batch = decode_observations(
            "taskrabbit", _market_batch(site, dataset, seed=5)
        )
        touched = dataset.upsert_observations(batch)
        ref_stats = reference.apply_observations(
            dataset.queries, dataset.locations, touched
        )
        col_stats = columnar.apply_observations(
            dataset.queries, dataset.locations, touched
        )
        # Same delta-work counters (the exact staleness predicate) ...
        assert col_stats == ref_stats
        # ... the same post-delta state as each other and as a cold rebuild
        cold = FBox.for_marketplace(dataset, schema)
        for other in (reference, cold):
            assert np.array_equal(
                columnar.cube.values, other.cube.values, equal_nan=True
            )
        for order in ("most", "least"):
            _assert_results_match(
                columnar.quantify("group", k=3, order=order),
                reference.quantify("group", k=3, order=order),
            )


# ----------------------------------------------------------------------
# Segment lifecycle: publish, attach, restart, leaks
# ----------------------------------------------------------------------


class TestSegmentLifecycle:
    def _bound_box(self, space, schema, dataset) -> ColumnarFBox:
        box = ColumnarFBox.for_marketplace(dataset, schema)
        box.bind_segment(space, "taskrabbit", "exposure")
        return box

    def test_cold_twin_attaches_in_place_of_building(
        self, space, schema, small_marketplace_dataset
    ):
        owner = self._bound_box(space, schema, small_marketplace_dataset)
        baseline = owner.quantify("group", k=3)
        assert owner.cube_builds == 1 and owner.segment_attaches == 0

        twin = self._bound_box(space, schema, small_marketplace_dataset)
        result = twin.quantify("group", k=3)
        _assert_results_match(result, baseline)
        # The restart contract: adopt the published segment, build nothing.
        assert twin.segment_attaches == 1
        assert twin.cube_builds == 0 and twin.family_builds == 0

    def test_attached_front_box_matches_owner(
        self, space, schema, small_marketplace_dataset
    ):
        owner = self._bound_box(space, schema, small_marketplace_dataset)
        owner.quantify("group", k=3)  # build + publish cube and family
        front = AttachedFBox.attach(space, "taskrabbit", "exposure")
        _assert_results_match(
            front.quantify("group", k=3), owner.quantify("group", k=3)
        )
        many_front = front.quantify_many("group", [1, 3])
        many_owner = owner.quantify_many("group", [1, 3])
        for k in many_owner:
            _assert_results_match(many_front[k], many_owner[k])
        left, right = owner.locations[0], owner.locations[1]
        assert (
            front.compare("location", left, right, "query").reversed_members
            == owner.compare("location", left, right, "query").reversed_members
        )
        query = owner.queries[0]
        assert front.aggregate(queries=[query]) == owner.aggregate(queries=[query])
        assert front.generation >= 1

    def test_attach_misses_on_empty_namespace(self, space):
        with pytest.raises(SegmentMiss):
            AttachedFBox.attach(space, "taskrabbit", "exposure")

    def test_delta_publishes_new_generation(
        self, space, schema, site, small_marketplace_dataset
    ):
        dataset = _copy_marketplace(small_marketplace_dataset)
        owner = self._bound_box(space, schema, dataset)
        owner.quantify("group", k=3)
        before = space.head_generation("taskrabbit", "exposure")
        batch = decode_observations("taskrabbit", _market_batch(site, dataset))
        touched = dataset.upsert_observations(batch)
        owner.apply_observations(dataset.queries, dataset.locations, touched)
        after = space.head_generation("taskrabbit", "exposure")
        assert after > before
        # A cold attach after the delta sees the post-ingest state.
        front = AttachedFBox.attach(space, "taskrabbit", "exposure")
        assert np.array_equal(
            front.cube.values, owner.cube.values, equal_nan=True
        )
        # Superseded payload generations were unlinked, not retained.
        live = glob.glob(f"/dev/shm/fbx{space.namespace}*-g*")
        assert len(live) == 1, live

    def test_registry_restart_attaches_and_close_sweeps(
        self, schema, small_marketplace_dataset
    ):
        token = f"t{os.getpid():x}{os.urandom(3).hex()}"
        front = _registry(
            small_marketplace_dataset,
            core="columnar",
            namespace=token,
            schema=schema,
        )
        try:
            front.fbox("taskrabbit").quantify("group", k=3)
            assert front.build_counts()["cube_builds"] == 1

            # A "restarted worker": same namespace, no segment ownership.
            revived = _registry(
                small_marketplace_dataset,
                core="columnar",
                namespace=token,
                schema=schema,
                owns_segments=False,
            )
            revived.fbox("taskrabbit").quantify("group", k=3)
            counts = revived.build_counts()
            assert counts["segment_attaches"] == 1
            assert counts["cube_builds"] == 0
            assert counts["family_builds"] == 0
            # The non-owner's close must leave the segments alone ...
            revived.close()
            assert glob.glob(f"/dev/shm/fbx{token}*")
        finally:
            # ... and the owner's close must sweep them all.
            front.close()
        assert glob.glob(f"/dev/shm/fbx{token}*") == []

    def test_reregistration_clears_stale_segments(
        self, schema, small_marketplace_dataset
    ):
        token = f"t{os.getpid():x}{os.urandom(3).hex()}"
        registry = _registry(
            small_marketplace_dataset,
            core="columnar",
            namespace=token,
            schema=schema,
        )
        try:
            registry.fbox("taskrabbit").quantify("group", k=3)
            assert glob.glob(f"/dev/shm/fbx{token}*")
            registry.register(
                DatasetSpec(
                    name="taskrabbit",
                    site="taskrabbit",
                    loader=lambda: small_marketplace_dataset,
                    description="replacement",
                )
            )
            # A replaced dataset's segments describe the old one: gone.
            assert glob.glob(f"/dev/shm/fbx{token}*") == []
        finally:
            registry.close()


# ----------------------------------------------------------------------
# Service level: the two cores answer identically over HTTP
# ----------------------------------------------------------------------

PARITY_REQUESTS = (
    ("/v1/quantify", {"dataset": "taskrabbit", "dimension": "group", "k": 3}),
    (
        "/v1/quantify",
        {
            "dataset": "taskrabbit",
            "dimension": "query",
            "k": 2,
            "order": "least",
            "algorithm": "naive",
        },
    ),
    (
        "/v1/compare",
        {
            "dataset": "taskrabbit",
            "dimension": "group",
            "r1": "gender=Male",
            "r2": "gender=Female",
            "breakdown": "location",
        },
    ),
    (
        "/v1/compare",
        {
            "dataset": "taskrabbit",
            "dimension": "location",
            "r1": "Chicago, IL",
            "r2": "Boston, MA",
            "breakdown": "query",
            "algorithm": "indices",
        },
    ),
    ("/v1/quantify", {"dataset": "missing", "dimension": "group", "k": 1}),
    # A repeat of the first request: "cached" flags must agree too.
    ("/v1/quantify", {"dataset": "taskrabbit", "dimension": "group", "k": 3}),
)


class TestServiceParity:
    def test_columnar_server_matches_dict_server(
        self, start_service, site, small_marketplace_dataset
    ):
        servers = {}
        for core in ("dict", "columnar"):
            registry = _registry(_copy_marketplace(small_marketplace_dataset))
            servers[core] = start_service(
                registry=registry, core=core, request_timeout=60.0
            )

        def both(path, payload):
            answers = {
                core: _post(server.url, path, payload)
                for core, server in servers.items()
            }
            assert answers["columnar"] == answers["dict"], (path, payload)
            return answers["dict"]

        for path, payload in PARITY_REQUESTS:
            both(path, payload)

        # Live ingest, its replay, and the post-ingest read must agree too.
        batch = _market_batch(site, small_marketplace_dataset)
        ingest = {
            "dataset": "taskrabbit",
            "batch_id": "parity-1",
            "sequence": 1,
            "observations": batch,
        }
        status, document = both("/v1/observations", ingest)
        assert status == 200 and document["replayed"] is False
        status, document = both("/v1/observations", ingest)
        assert status == 200 and document["replayed"] is True
        status, _ = both(
            "/v1/quantify", {"dataset": "taskrabbit", "dimension": "group", "k": 3}
        )
        assert status == 200


class TestIngestSequence:
    """Satellite: the bounded idempotency ledger's replay hole is closed."""

    @pytest.fixture
    def service(self, start_service, small_marketplace_dataset):
        registry = _registry(_copy_marketplace(small_marketplace_dataset))
        return start_service(registry=registry, request_timeout=60.0)

    def test_stale_sequence_with_unknown_batch_id_conflicts(
        self, service, site, small_marketplace_dataset
    ):
        first = {
            "dataset": "taskrabbit",
            "batch_id": "seq-1",
            "sequence": 7,
            "observations": _market_batch(site, small_marketplace_dataset),
        }
        status, document = _post(service.url, "/v1/observations", first)
        assert status == 200
        assert document["sequence"] == 7

        # Known batch_id: the ledger answers, whatever the sequence says.
        status, replay = _post(service.url, "/v1/observations", first)
        assert status == 200 and replay["replayed"] is True

        # Unknown batch_id at/below the high-water mark: refuse, don't apply.
        stale = {
            **first,
            "batch_id": "seq-0-evicted",
            "observations": _market_batch(site, small_marketplace_dataset, seed=9),
        }
        status, body = _post(service.url, "/v1/observations", stale)
        assert status == 409
        error = body["error"]
        assert error["code"] == "batch_conflict"
        assert error["retryable"] is False
        assert "high-water" in error["message"]

        # A fresh sequence from the same client applies normally.
        fresh = {**stale, "batch_id": "seq-2", "sequence": 8}
        status, document = _post(service.url, "/v1/observations", fresh)
        assert status == 200 and document["replayed"] is False

        metrics = _get_text(service.url, "/v1/metrics")
        assert 'fbox_ingest_replays_total{kind="ledger"} 1' in metrics
        assert 'fbox_ingest_replays_total{kind="conflict"} 1' in metrics

    def test_sequence_field_is_validated(self, service):
        for bad in (-1, "7", 1.5, True):
            status, body = _post(
                service.url,
                "/v1/observations",
                {
                    "dataset": "taskrabbit",
                    "sequence": bad,
                    "observations": [{}],
                },
            )
            assert status == 400, (bad, body)
            assert "sequence" in body["error"]["message"]

    def test_batch_conflict_is_catalogued(self, service):
        _, schema_doc = _get(service.url, "/v1/schema")
        errors = {entry["code"]: entry for entry in schema_doc["errors"]}
        assert errors["batch_conflict"]["status"] == 409
        assert errors["batch_conflict"]["retryable"] is False


class TestWorkerRestartAttach:
    def test_respawned_worker_attaches_without_rebuilding(
        self, monkeypatch, small_marketplace_dataset, small_search_dataset
    ):
        # Kill the worker that owns "taskrabbit" on its first /compare —
        # the same FBOX_FAULTS chaos knob the sharding suite uses.
        monkeypatch.setenv(
            FAULTS_ENV_VAR,
            json.dumps(
                {"rules": [{"site": "worker_exit", "match": "/compare", "times": 1}]}
            ),
        )
        registry = _registry(
            _copy_marketplace(small_marketplace_dataset), small_search_dataset
        )
        server = make_server(
            registry=registry,
            port=0,
            shards=2,
            core="columnar",
            request_timeout=60.0,
            cache_size=0,
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            quantify = {"dataset": "taskrabbit", "dimension": "group", "k": 3}
            status, _ = _post(server.url, "/v1/quantify", quantify)
            assert status == 200
            metrics = _get_text(server.url, "/v1/metrics")
            assert _metric(metrics, "fbox_cube_builds_total") == 1
            assert _metric(metrics, "fbox_segment_attaches_total") == 0

            status, body = _post(
                server.url,
                "/v1/compare",
                {
                    "dataset": "taskrabbit",
                    "dimension": "group",
                    "r1": "gender=Male",
                    "r2": "gender=Female",
                    "breakdown": "location",
                },
            )
            assert status == 503
            assert body["error"]["code"] == "shard_unavailable"
            assert body["error"]["shard"] == shard_for("taskrabbit", 2)

            deadline = time.monotonic() + 20.0
            status, body = 0, {}
            while time.monotonic() < deadline:
                status, body = _post(server.url, "/v1/quantify", quantify)
                if status == 200:
                    break
                time.sleep(0.1)
            assert status == 200, body

            # The revived worker adopted the published segment: one attach,
            # zero rebuilds anywhere in the merged process family.
            metrics = _get_text(server.url, "/v1/metrics")
            assert _metric(metrics, "fbox_segment_attaches_total") == 1
            assert _metric(metrics, "fbox_cube_builds_total") == 0
            assert _metric(metrics, "fbox_index_family_builds_total") == 0
        finally:
            server.shutdown()
            thread.join(timeout=5)
            server.server_close()
