"""Kendall Tau top-k distance."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.measures.kendall import KendallTauMeasure, kendall_tau_distance
from repro.core.rankings import RankedList
from repro.exceptions import MeasureError


def permutations_of(items):
    return st.permutations(items).map(lambda p: RankedList(list(p)))


class TestSameUniverse:
    def test_identical_lists_have_distance_zero(self):
        ranking = RankedList(["a", "b", "c", "d"])
        assert kendall_tau_distance(ranking, ranking) == 0.0

    def test_full_reversal_has_distance_one(self):
        a = RankedList(["a", "b", "c"])
        b = RankedList(["c", "b", "a"])
        assert kendall_tau_distance(a, b) == 1.0

    def test_single_adjacent_swap(self):
        a = RankedList(["a", "b", "c"])
        b = RankedList(["b", "a", "c"])
        assert kendall_tau_distance(a, b) == pytest.approx(1.0 / 3.0)

    def test_paper_figure_example(self):
        # Table 1's w1 = (b, d, e) vs w2 = (d, b, e): one discordant pair.
        a = RankedList(["b", "d", "e"])
        b = RankedList(["d", "b", "e"])
        assert kendall_tau_distance(a, b) == pytest.approx(1.0 / 3.0)

    @given(permutations_of(["a", "b", "c", "d"]), permutations_of(["a", "b", "c", "d"]))
    def test_symmetry(self, left, right):
        assert kendall_tau_distance(left, right) == pytest.approx(
            kendall_tau_distance(right, left)
        )

    @given(permutations_of(["a", "b", "c", "d", "e"]))
    def test_bounded_in_unit_interval(self, ranking):
        other = RankedList(["a", "b", "c", "d", "e"])
        assert 0.0 <= kendall_tau_distance(ranking, other) <= 1.0


class TestDifferentUniverses:
    def test_disjoint_lists_with_full_penalty(self):
        a = RankedList(["a", "b"])
        b = RankedList(["x", "y"])
        assert kendall_tau_distance(a, b, penalty=1.0) == 1.0

    def test_disjoint_lists_with_neutral_penalty(self):
        a = RankedList(["a", "b"])
        b = RankedList(["x", "y"])
        # 4 cross pairs at 1.0 plus 2 within-list pairs at 0.5 → 5/6.
        assert kendall_tau_distance(a, b) == pytest.approx(5.0 / 6.0)

    def test_inferable_order_agreement_is_free(self):
        # 'c' is missing from the right list, so right implicitly ranks it
        # below 'a' and 'b' — consistent with the left list.
        a = RankedList(["a", "b", "c"])
        b = RankedList(["a", "b"])
        assert kendall_tau_distance(a, b) == 0.0

    def test_inferable_order_disagreement_is_penalized(self):
        a = RankedList(["c", "a", "b"])  # left says c above a and b
        b = RankedList(["a", "b"])  # right implies c below both
        assert kendall_tau_distance(a, b) > 0.0

    def test_singleton_identical_lists(self):
        ranking = RankedList(["a"])
        assert kendall_tau_distance(ranking, ranking) == 0.0

    def test_empty_list_rejected(self):
        with pytest.raises(MeasureError, match="empty"):
            kendall_tau_distance(RankedList([]), RankedList(["a"]))


class TestMeasureObject:
    def test_callable_interface(self):
        measure = KendallTauMeasure()
        assert measure(RankedList(["a"]), RankedList(["a"])) == 0.0

    def test_penalty_validation(self):
        with pytest.raises(MeasureError, match="penalty"):
            KendallTauMeasure(penalty=1.5)

    def test_name(self):
        assert KendallTauMeasure().name == "kendall"

    @given(
        st.lists(st.sampled_from("abcdef"), min_size=1, max_size=6, unique=True),
        st.lists(st.sampled_from("abcdef"), min_size=1, max_size=6, unique=True),
    )
    def test_distance_always_in_unit_interval(self, left, right):
        value = kendall_tau_distance(RankedList(left), RankedList(right))
        assert 0.0 <= value <= 1.0
