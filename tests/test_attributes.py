"""Protected-attribute schemas."""

from __future__ import annotations

import pytest

from repro.core.attributes import ETHNICITIES, GENDERS, AttributeSchema, default_schema
from repro.exceptions import SchemaError


class TestConstruction:
    def test_default_schema_domains(self):
        schema = default_schema()
        assert schema.values_of("gender") == GENDERS
        assert schema.values_of("ethnicity") == ETHNICITIES

    def test_rejects_empty_schema(self):
        with pytest.raises(SchemaError, match="at least one attribute"):
            AttributeSchema({})

    def test_rejects_empty_domain(self):
        with pytest.raises(SchemaError, match="empty value domain"):
            AttributeSchema({"gender": ()})

    def test_rejects_duplicate_values(self):
        with pytest.raises(SchemaError, match="duplicate"):
            AttributeSchema({"gender": ("Male", "Male")})

    def test_rejects_empty_value(self):
        with pytest.raises(SchemaError):
            AttributeSchema({"gender": ("Male", "")})

    def test_rejects_non_string_attribute(self):
        with pytest.raises(SchemaError):
            AttributeSchema({3: ("a",)})


class TestLookup:
    def test_unknown_attribute_raises(self, schema):
        with pytest.raises(SchemaError, match="unknown attribute"):
            schema.values_of("income")

    def test_validate_accepts_known_value(self, schema):
        schema.validate("gender", "Female")

    def test_validate_rejects_unknown_value(self, schema):
        with pytest.raises(SchemaError, match="not in the domain"):
            schema.validate("gender", "Unknown")

    def test_contains(self, schema):
        assert "gender" in schema
        assert "income" not in schema

    def test_attributes_order(self, schema):
        assert schema.attributes == ("gender", "ethnicity")


class TestAssignments:
    def test_full_assignment_count(self, schema):
        assignments = list(schema.iter_assignments(("gender", "ethnicity")))
        assert len(assignments) == 6

    def test_single_attribute_assignments(self, schema):
        assignments = list(schema.iter_assignments(("ethnicity",)))
        assert assignments == [{"ethnicity": e} for e in ETHNICITIES]

    def test_empty_assignment_yields_one_empty_dict(self, schema):
        assert list(schema.iter_assignments(())) == [{}]

    def test_rejects_duplicate_attributes(self, schema):
        with pytest.raises(SchemaError, match="duplicate"):
            list(schema.iter_assignments(("gender", "gender")))

    def test_rejects_unknown_attribute(self, schema):
        with pytest.raises(SchemaError):
            list(schema.iter_assignments(("income",)))
