"""The three inverted-index families (Table 5)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.cube import UnfairnessCube
from repro.core.indices import InvertedIndex, build_family
from repro.exceptions import IndexError_

from tests.helpers import make_cube


class TestInvertedIndex:
    def test_sorted_descending(self):
        index = InvertedIndex.from_pairs([("a", 0.1), ("b", 0.9), ("c", 0.5)])
        assert [key for key, _ in index.entries] == ["b", "c", "a"]

    def test_sorted_ascending(self):
        index = InvertedIndex.from_pairs(
            [("a", 0.1), ("b", 0.9)], descending=False
        )
        assert index.sorted_access(0) == ("a", 0.1)

    def test_nan_values_dropped(self):
        index = InvertedIndex.from_pairs([("a", float("nan")), ("b", 0.5)])
        assert len(index) == 1

    def test_sorted_access_out_of_range(self):
        index = InvertedIndex.from_pairs([("a", 0.5)])
        with pytest.raises(IndexError_, match="out of range"):
            index.sorted_access(5)

    def test_random_access(self):
        index = InvertedIndex.from_pairs([("a", 0.5), ("b", 0.7)])
        assert index.random_access("a") == 0.5

    def test_random_access_miss(self):
        index = InvertedIndex.from_pairs([("a", 0.5)])
        with pytest.raises(IndexError_):
            index.random_access("z")


class TestFamilies:
    @pytest.mark.parametrize("dimension", ["group", "query", "location"])
    def test_family_covers_all_pairs(self, cube, dimension):
        family = build_family(cube, dimension)
        sizes = {
            "group": len(cube.queries) * len(cube.locations),
            "query": len(cube.groups) * len(cube.locations),
            "location": len(cube.groups) * len(cube.queries),
        }
        assert len(family.pair_keys) == sizes[dimension]

    def test_group_family_lists_are_sorted(self, cube):
        family = build_family(cube, "group")
        for pair in family.pair_keys:
            values = [value for _, value in family.posting_list(pair).entries]
            assert values == sorted(values, reverse=True)

    def test_values_match_cube(self, cube):
        family = build_family(cube, "group")
        pair = ("q1", "l2")
        for group in cube.groups:
            assert family.random_access(pair, group) == pytest.approx(
                cube.value(group, "q1", "l2")
            )

    def test_missing_cells_absent_from_lists(self, cube):
        values = cube.values.copy()
        values[0, 0, 0] = np.nan
        holey = UnfairnessCube(cube.groups, cube.queries, cube.locations, values)
        family = build_family(holey, "group")
        assert not family.has_value(("q0", "l0"), cube.groups[0])
        assert len(family.posting_list(("q0", "l0"))) == len(cube.groups) - 1

    def test_unknown_pair_raises(self, cube):
        family = build_family(cube, "group")
        with pytest.raises(IndexError_, match="no posting list"):
            family.posting_list(("nope", "l0"))

    def test_unknown_dimension_raises(self, cube):
        with pytest.raises(IndexError_, match="unknown dimension"):
            build_family(cube, "time")


class TestAccessCounting:
    def test_sorted_and_random_accesses_counted(self, cube):
        family = build_family(cube, "group")
        pair = family.pair_keys[0]
        family.sorted_access(pair, 0)
        family.sorted_access(pair, 1)
        family.random_access(pair, cube.groups[0])
        assert family.stats.sorted_accesses == 2
        assert family.stats.random_accesses == 1

    def test_reset(self, cube):
        family = build_family(cube, "group")
        family.sorted_access(family.pair_keys[0], 0)
        family.reset_stats()
        assert family.stats.sorted_accesses == 0

    def test_merged_with(self, cube):
        family = build_family(cube, "group")
        family.sorted_access(family.pair_keys[0], 0)
        other = build_family(cube, "query")
        other.random_access(other.pair_keys[0], "q0")
        merged = family.stats.merged_with(other.stats)
        assert merged.sorted_accesses == 1
        assert merged.random_accesses == 1

    def test_reset_stats_detaches_prior_snapshots(self, cube):
        """A result holding the old counter object keeps its frozen counts."""
        family = build_family(cube, "group")
        family.sorted_access(family.pair_keys[0], 0)
        before = family.stats
        family.reset_stats()
        assert before.sorted_accesses == 1
        assert family.stats.sorted_accesses == 0

    def test_snapshot_is_detached_and_reset_rezeroes_in_place(self, cube):
        from repro.core.indices import AccessStats

        stats = AccessStats()
        stats.record_sorted(3)
        stats.record_random()
        snap = stats.snapshot()
        stats.record_sorted()
        assert snap == AccessStats(sorted_accesses=3, random_accesses=1)
        assert stats.sorted_accesses == 4
        stats.reset()
        assert stats == AccessStats()
        assert snap.sorted_accesses == 3  # unaffected by the reset

    def test_counters_are_thread_safe(self, cube):
        import threading

        from repro.core.indices import AccessStats

        stats = AccessStats()

        def hammer():
            for _ in range(2000):
                stats.record_sorted()
                stats.record_random()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert stats.sorted_accesses == 16000
        assert stats.random_accesses == 16000


class TestMissAccounting:
    """Only *successful* probes count toward the paper's cost model.

    Regression: failed sorted/random accesses used to inflate the access
    totals, skewing every Fagin-vs-naive cost comparison on sparse cubes.
    Misses are tallied separately, and both family implementations (dict
    posting lists and the columnar arrays) must account identically.
    """

    @staticmethod
    def _family(kind: str, cube):
        if kind == "dict":
            return build_family(cube, "group")
        from repro.core.colstore import ColumnarFamily, ColumnarStore

        store = ColumnarStore.from_cube(cube, [("group", True)])
        offsets, perm = store.families[("group", True)]
        return ColumnarFamily(cube, "group", True, offsets, perm)

    @pytest.mark.parametrize("kind", ["dict", "columnar"])
    def test_out_of_range_sorted_probe_is_a_miss_not_an_access(self, kind):
        cube = make_cube()
        family = self._family(kind, cube)
        pair = family.pair_keys[0]
        size = len(family.posting_list(pair))
        with pytest.raises(IndexError_):
            family.sorted_access(pair, size + 3)
        stats = family.stats_snapshot()
        assert stats.sorted_accesses == 0
        assert stats.sorted_misses == 1
        family.sorted_access(pair, 0)
        stats = family.stats_snapshot()
        assert stats.sorted_accesses == 1
        assert stats.sorted_misses == 1

    @pytest.mark.parametrize("kind", ["dict", "columnar"])
    def test_unknown_pair_sorted_probe_is_a_miss(self, kind):
        family = self._family(kind, make_cube())
        with pytest.raises(IndexError_):
            family.sorted_access(("no-such-query", "no-such-location"), 0)
        stats = family.stats_snapshot()
        assert stats.sorted_accesses == 0
        assert stats.sorted_misses == 1

    @pytest.mark.parametrize("kind", ["dict", "columnar"])
    def test_absent_key_random_probe_is_a_miss_not_an_access(self, kind):
        cube = make_cube()
        cube.values[0, 0, 0] = np.nan  # g0 drops out of the (q0, l0) list
        family = self._family(kind, cube)
        pair = ("q0", "l0")
        with pytest.raises(IndexError_):
            family.random_access(pair, cube.groups[0])
        stats = family.stats_snapshot()
        assert stats.random_accesses == 0
        assert stats.random_misses == 1
        family.random_access(pair, cube.groups[1])
        stats = family.stats_snapshot()
        assert stats.random_accesses == 1
        assert stats.random_misses == 1

    @pytest.mark.parametrize("kind", ["dict", "columnar"])
    def test_snapshot_and_merge_carry_miss_counts(self, kind):
        cube = make_cube()
        cube.values[0, 0, 0] = np.nan
        family = self._family(kind, cube)
        with pytest.raises(IndexError_):
            family.random_access(("q0", "l0"), cube.groups[0])
        with pytest.raises(IndexError_):
            family.sorted_access(("q0", "l0"), 99)
        snap = family.stats_snapshot()
        merged = snap.merged_with(snap)
        assert (snap.sorted_misses, snap.random_misses) == (1, 1)
        assert (merged.sorted_misses, merged.random_misses) == (2, 2)
