"""The AMT majority-vote labeling simulator."""

from __future__ import annotations

import pytest

from repro.data.schema import WorkerProfile
from repro.exceptions import DataError
from repro.labeling.amt import AmtLabeler


def workers(count=100):
    profiles = []
    for index in range(count):
        gender = "Female" if index % 2 else "Male"
        ethnicity = ("Asian", "Black", "White")[index % 3]
        profiles.append(
            WorkerProfile(f"w{index}", {"gender": gender, "ethnicity": ethnicity})
        )
    return profiles


class TestLabeling:
    def test_zero_error_rate_is_perfect(self):
        outcome = AmtLabeler(seed=1, error_rate=0.0).label_population(workers())
        assert outcome.accuracy == 1.0
        assert outcome.incorrect_labels == 0

    def test_moderate_error_rate_stays_accurate_via_majority(self):
        outcome = AmtLabeler(seed=1, error_rate=0.1).label_population(workers(400))
        # With three voters at 10% error, majority error ≈ 3·e² ≈ 3%.
        assert outcome.accuracy > 0.93

    def test_majority_beats_single_contributor(self):
        majority = AmtLabeler(seed=1, error_rate=0.25, contributors=3)
        single = AmtLabeler(seed=1, error_rate=0.25, contributors=1)
        assert (
            majority.label_population(workers(400)).accuracy
            > single.label_population(workers(400)).accuracy
        )

    def test_deterministic(self):
        a = AmtLabeler(seed=1, error_rate=0.2).label_population(workers(50))
        b = AmtLabeler(seed=1, error_rate=0.2).label_population(workers(50))
        assert [w.attributes for w in a.workers] == [w.attributes for w in b.workers]

    def test_non_schema_attributes_pass_through(self):
        worker = WorkerProfile(
            "w1", {"gender": "Male", "ethnicity": "White", "city": "Boston, MA"}
        )
        labeled = AmtLabeler(seed=1, error_rate=0.5).label_worker(worker)
        assert labeled.attributes["city"] == "Boston, MA"

    def test_features_untouched(self):
        worker = WorkerProfile(
            "w1", {"gender": "Male", "ethnicity": "White"}, {"rating": 4.5}
        )
        labeled = AmtLabeler(seed=1, error_rate=0.5).label_worker(worker)
        assert labeled.features == {"rating": 4.5}

    def test_missing_attribute_rejected(self):
        worker = WorkerProfile("w1", {"gender": "Male"})
        with pytest.raises(DataError, match="lacks attribute"):
            AmtLabeler(seed=1).label_worker(worker)

    def test_invalid_error_rate_rejected(self):
        with pytest.raises(DataError):
            AmtLabeler(seed=1, error_rate=1.5)

    def test_invalid_contributor_count_rejected(self):
        with pytest.raises(DataError):
            AmtLabeler(seed=1, contributors=0)

    def test_labels_stay_within_categories(self):
        outcome = AmtLabeler(seed=2, error_rate=0.4).label_population(workers(100))
        for worker in outcome.workers:
            assert worker.attributes["gender"] in ("Male", "Female")
            assert worker.attributes["ethnicity"] in ("Asian", "Black", "White")
