"""End-to-end tests of the F-Box query service.

A real server is started on an ephemeral port for every test (datasets are
session-cached fixtures, so boots are cheap) and exercised over HTTP with
urllib — all six endpoints, the error paths, cache-hit behavior verified via
``/metrics``, the per-request timeout guard, and a concurrency test proving
that 16 parallel first-touch requests build the cube exactly once.

Every server-backed test is parameterized over ``backend in {threads,
asyncio}`` (the ``backend``/``start_service`` conftest fixtures): the two
transports share one application layer and must be byte-compatible on every
endpoint and error path.
"""

from __future__ import annotations

import json
import logging
import socket
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.attributes import default_schema
from repro.core.fbox import FBox
from repro.service.cache import LRUCache
from repro.service.encoding import canonical_key
from repro.service.errors import RequestTimeout
from repro.service.handlers import ServiceContext, handle_quantify
from repro.service.observability import ServiceMetrics
from repro.service.registry import DatasetRegistry, DatasetSpec
from repro.service.server import run_with_deadline


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------


class ServiceHarness:
    """One live server plus tiny HTTP helpers."""

    def __init__(self, server):
        self.server = server
        self.base = server.url

    @property
    def registry(self):
        return self.server.context.registry

    @property
    def cache(self):
        return self.server.context.cache

    def get(self, path: str):
        try:
            with urllib.request.urlopen(self.base + path) as response:
                return response.status, response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            return error.code, error.read().decode("utf-8")

    def get_json(self, path: str):
        status, body = self.get(path)
        return status, json.loads(body)

    def post(self, path: str, payload, raw: bytes | None = None):
        data = raw if raw is not None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.base + path, data=data, headers={"Content-Type": "application/json"}
        )
        try:
            with urllib.request.urlopen(request) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())


def _registry(small_marketplace_dataset, small_search_dataset) -> DatasetRegistry:
    registry = DatasetRegistry()
    registry.register(
        DatasetSpec(
            name="taskrabbit",
            site="taskrabbit",
            loader=lambda: small_marketplace_dataset,
            description="six-city category crawl",
        )
    )
    registry.register(
        DatasetSpec(
            name="google",
            site="google",
            loader=lambda: small_search_dataset,
            description="two-location study",
        )
    )
    return registry


@pytest.fixture
def service(start_service, small_marketplace_dataset, small_search_dataset):
    # This suite predates /v1 and doubles as the straggler-passthrough
    # oracle, so it pins ``legacy_routes="serve"``; retirement (the default
    # ``gone`` mode) is covered by test_service_api_v1.TestLegacyRetired.
    registry = _registry(small_marketplace_dataset, small_search_dataset)
    return ServiceHarness(
        start_service(
            registry=registry, request_timeout=60.0, legacy_routes="serve"
        )
    )


# ----------------------------------------------------------------------
# Happy paths
# ----------------------------------------------------------------------


class TestEndpoints:
    def test_healthz(self, service):
        status, body = service.get_json("/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["datasets"] == ["taskrabbit", "google"]

    def test_datasets_lists_specs_and_load_state(self, service):
        status, body = service.get_json("/datasets")
        assert status == 200
        by_name = {entry["name"]: entry for entry in body["datasets"]}
        assert set(by_name) == {"taskrabbit", "google"}
        assert by_name["taskrabbit"]["default_measure"] == "emd"
        assert by_name["google"]["default_measure"] == "kendall"
        assert not by_name["taskrabbit"]["loaded"]

        service.post("/quantify", {"dataset": "taskrabbit", "dimension": "group"})
        _, body = service.get_json("/datasets")
        entry = {e["name"]: e for e in body["datasets"]}["taskrabbit"]
        assert entry["loaded"]
        assert entry["observations"] > 0
        assert entry["measures_ready"] == ["emd"]

    def test_quantify_matches_direct_fbox(
        self, service, small_marketplace_dataset, schema
    ):
        status, body = service.post(
            "/quantify", {"dataset": "taskrabbit", "dimension": "group", "k": 3}
        )
        assert status == 200
        assert body["kind"] == "quantification"
        assert body["measure"] == "emd"
        assert len(body["entries"]) == 3
        fbox = FBox.for_marketplace(small_marketplace_dataset, schema, measure="emd")
        expected = fbox.quantify("group", k=3)
        for entry, (key, value) in zip(body["entries"], expected.entries):
            assert entry["name"] == str(key)
            assert entry["unfairness"] == pytest.approx(value)
            assert "predicates" in entry  # groups round-trip their labels

    def test_quantify_google_with_explicit_measure(self, service):
        status, body = service.post(
            "/quantify",
            {"dataset": "google", "dimension": "location", "k": 2, "measure": "jaccard"},
        )
        assert status == 200
        assert body["measure"] == "jaccard"
        assert body["entries"]

    def test_compare_reports_reversals(self, service):
        status, body = service.post(
            "/compare",
            {
                "dataset": "taskrabbit",
                "dimension": "group",
                "r1": "gender=Male",
                "r2": "gender=Female",
                "breakdown": "location",
            },
        )
        assert status == 200
        assert body["kind"] == "comparison"
        assert body["r1"]["predicates"] == {"gender": "Male"}
        assert {"value_r1", "value_r2", "reversed"} <= set(body["rows"][0])
        reversed_names = {row["name"] for row in body["rows"] if row["reversed"]}
        assert set(body["reversed_members"]) == reversed_names

    def test_explain_decomposes_a_cell(self, service, small_marketplace_dataset):
        query = small_marketplace_dataset.queries[0]
        location = small_marketplace_dataset.locations[0]
        status, body = service.post(
            "/explain",
            {
                "dataset": "taskrabbit",
                "group": "gender=Female,ethnicity=Asian",
                "query": query,
                "location": location,
            },
        )
        assert status == 200
        assert body["kind"] == "explanation"
        assert "driven most by" in body["narrative"]
        assert body["contributions"]
        assert all("distance" in c for c in body["contributions"])


# ----------------------------------------------------------------------
# Caching
# ----------------------------------------------------------------------


class TestCaching:
    def test_repeat_quantify_is_served_from_cache(self, service):
        request = {"dataset": "taskrabbit", "dimension": "group", "k": 4}
        _, first = service.post("/quantify", request)
        assert first["cached"] is False
        _, second = service.post("/quantify", request)
        assert second["cached"] is True
        # Identical payloads modulo the cache marker.
        first.pop("cached"), second.pop("cached")
        assert first == second

        _, metrics = service.get("/metrics")
        assert 'fbox_cache_events_total{event="hits"} 1' in metrics
        assert 'fbox_cache_events_total{event="misses"} 1' in metrics

    def test_field_order_does_not_defeat_the_cache(self, service):
        _, first = service.post(
            "/quantify", {"dataset": "taskrabbit", "dimension": "query", "k": 2}
        )
        _, second = service.post(
            "/quantify", {"k": 2, "dimension": "query", "dataset": "taskrabbit"}
        )
        assert first["cached"] is False
        assert second["cached"] is True

    def test_canonical_key_is_order_insensitive(self):
        assert canonical_key("q", {"a": 1, "b": "x"}) == canonical_key(
            "q", {"b": "x", "a": 1}
        )

    def test_lru_eviction_and_counters(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes a
        cache.put("c", 3)  # evicts b
        assert cache.get("b") is None
        assert cache.stats() == {
            "size": 2, "capacity": 2, "hits": 1, "misses": 1, "evictions": 1,
            "expirations": 0,
        }

    def test_zero_capacity_disables_caching(self):
        cache = LRUCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0


# ----------------------------------------------------------------------
# Error paths
# ----------------------------------------------------------------------


class TestErrorPaths:
    def test_unknown_dataset_is_404(self, service):
        status, body = service.post(
            "/quantify", {"dataset": "linkedin", "dimension": "group"}
        )
        assert status == 404
        assert body["error"]["kind"] == "not_found"
        assert "linkedin" in body["error"]["message"]

    def test_unknown_dimension_is_422(self, service):
        status, body = service.post(
            "/quantify", {"dataset": "taskrabbit", "dimension": "color"}
        )
        assert status == 422
        assert body["error"]["kind"] == "unprocessable"

    def test_malformed_group_label_is_422(self, service):
        status, body = service.post(
            "/compare",
            {
                "dataset": "taskrabbit",
                "dimension": "group",
                "r1": "Male",  # missing attr= syntax
                "r2": "gender=Female",
                "breakdown": "location",
            },
        )
        assert status == 422
        assert "attr=value" in body["error"]["message"]

    def test_member_outside_domain_is_422(self, service):
        status, body = service.post(
            "/compare",
            {
                "dataset": "taskrabbit",
                "dimension": "location",
                "r1": "Atlantis",
                "r2": "Boston, MA",
                "breakdown": "group",
            },
        )
        assert status == 422

    def test_unknown_measure_is_422(self, service):
        status, body = service.post(
            "/quantify",
            {"dataset": "taskrabbit", "dimension": "group", "measure": "cosine"},
        )
        assert status == 422

    def test_missing_required_field_is_400(self, service):
        status, body = service.post("/quantify", {"dataset": "taskrabbit"})
        assert status == 400
        assert body["error"]["kind"] == "bad_request"

    def test_non_positive_k_is_422(self, service):
        status, _ = service.post(
            "/quantify", {"dataset": "taskrabbit", "dimension": "group", "k": 0}
        )
        assert status == 422

    def test_mistyped_k_is_400(self, service):
        status, _ = service.post(
            "/quantify", {"dataset": "taskrabbit", "dimension": "group", "k": "five"}
        )
        assert status == 400

    def test_invalid_json_body_is_400(self, service):
        status, body = service.post("/quantify", None, raw=b"{not json")
        assert status == 400
        assert "not valid JSON" in body["error"]["message"]

    def test_non_object_body_is_400(self, service):
        status, _ = service.post("/quantify", [1, 2, 3])
        assert status == 400

    def test_unknown_paths_are_404(self, service):
        assert service.get("/nope")[0] == 404
        assert service.post("/nope", {})[0] == 404

    def test_explain_undefined_cell_is_422(self, service):
        status, body = service.post(
            "/explain",
            {
                "dataset": "taskrabbit",
                "group": "gender=Female",
                "query": "no-such-job",
                "location": "Nowhere",
            },
        )
        assert status == 422


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


class TestMetrics:
    def test_exposition_covers_requests_latency_and_accesses(self, service):
        service.post(
            "/quantify",
            {"dataset": "taskrabbit", "dimension": "group", "algorithm": "fagin"},
        )
        service.post("/quantify", {"dataset": "unknown", "dimension": "group"})
        status, text = service.get("/metrics")
        assert status == 200
        assert 'fbox_requests_total{endpoint="/quantify",status="200"} 1' in text
        assert 'fbox_requests_total{endpoint="/quantify",status="404"} 1' in text
        assert 'fbox_in_flight{endpoint="/quantify"} 0' in text
        assert 'fbox_request_seconds_bucket{endpoint="/quantify",le="+Inf"} 2' in text
        assert "fbox_cube_builds_total 1" in text

        sorted_line = next(
            line for line in text.splitlines()
            if line.startswith('fbox_index_accesses_total{mode="sorted"}')
        )
        assert int(sorted_line.rsplit(" ", 1)[1]) > 0


# ----------------------------------------------------------------------
# Concurrency and timeouts
# ----------------------------------------------------------------------


class TestConcurrency:
    def test_parallel_first_touch_builds_one_cube(
        self, start_service, small_marketplace_dataset, small_search_dataset
    ):
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        harness = ServiceHarness(
            start_service(
                registry=registry, request_timeout=120.0, legacy_routes="serve"
            )
        )
        request = {"dataset": "taskrabbit", "dimension": "group", "k": 5}
        with ThreadPoolExecutor(max_workers=16) as pool:
            outcomes = list(
                pool.map(lambda _: harness.post("/quantify", request), range(16))
            )

        assert [status for status, _ in outcomes] == [200] * 16
        entries = [
            tuple((e["name"], e["unfairness"]) for e in body["entries"])
            for _, body in outcomes
        ]
        assert len(set(entries)) == 1  # every response is identical
        # Read build counts from /metrics, not the front registry object:
        # under sharding the build happened in a worker process and the
        # exposition merges worker truth into the scrape.
        _, text = harness.get("/metrics")
        assert "fbox_cube_builds_total 1" in text
        assert "fbox_instances 1" in text

    def test_shared_fbox_is_reused_across_measures_and_datasets(
        self, small_marketplace_dataset, small_search_dataset
    ):
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        first = registry.fbox("taskrabbit")
        second = registry.fbox("taskrabbit", "emd")
        assert first is second
        exposure = registry.fbox("taskrabbit", "exposure")
        assert exposure is not first
        assert registry.build_counts()["fboxes"] == 2

    def test_request_timeout_returns_503(
        self, start_service, small_marketplace_dataset, small_search_dataset
    ):
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        harness = ServiceHarness(
            start_service(
                registry=registry, request_timeout=1e-4, legacy_routes="serve"
            )
        )
        status, body = harness.post(
            "/quantify", {"dataset": "taskrabbit", "dimension": "group"}
        )
        assert status == 503
        assert body["error"]["kind"] == "timeout"


# ----------------------------------------------------------------------
# Keep-alive framing on early-rejection paths
# ----------------------------------------------------------------------


def _read_http_response(reader) -> tuple[int, dict, bytes]:
    """Parse one well-framed HTTP response off a socket file."""
    status_line = reader.readline()
    assert status_line.startswith(b"HTTP/1.1 "), status_line
    status = int(status_line.split()[1])
    headers: dict[str, str] = {}
    while True:
        line = reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = reader.read(int(headers.get("content-length", 0)))
    return status, headers, body


class TestKeepAliveFraming:
    def test_pipelined_rejected_then_valid_request(self, service, monkeypatch):
        """An oversized body is drained, not left to masquerade as request 2."""
        monkeypatch.setattr(service.server.app, "max_body_bytes", 64)
        oversized = b"x" * 200
        first = (
            b"POST /quantify HTTP/1.1\r\n"
            b"Host: t\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(oversized)).encode() + b"\r\n"
            b"\r\n" + oversized
        )
        payload = json.dumps(
            {"dataset": "taskrabbit", "dimension": "group", "k": 2}
        ).encode()
        second = (
            b"POST /quantify HTTP/1.1\r\n"
            b"Host: t\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(payload)).encode() + b"\r\n"
            b"\r\n" + payload
        )
        host, port = service.server.server_address[:2]
        with socket.create_connection((host, port), timeout=30) as sock:
            sock.sendall(first + second)  # pipelined on one connection
            reader = sock.makefile("rb")
            status1, _, body1 = _read_http_response(reader)
            status2, _, body2 = _read_http_response(reader)
        assert status1 == 400
        assert "exceeds" in json.loads(body1)["error"]["message"]
        assert status2 == 200
        document = json.loads(body2)
        assert document["kind"] == "quantification"
        assert len(document["entries"]) == 2

    def test_invalid_content_length_closes_the_connection(self, service):
        """With an unparseable length we cannot resync, so we must close."""
        request = (
            b"POST /quantify HTTP/1.1\r\n"
            b"Host: t\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: banana\r\n"
            b"\r\n"
        )
        host, port = service.server.server_address[:2]
        with socket.create_connection((host, port), timeout=30) as sock:
            sock.sendall(request)
            reader = sock.makefile("rb")
            status, headers, body = _read_http_response(reader)
            assert status == 400
            assert headers.get("connection") == "close"
            assert "Content-Length" in json.loads(body)["error"]["message"]
            assert reader.readline() == b""  # server hung up

    def test_undrainably_large_body_closes_the_connection(
        self, service, monkeypatch
    ):
        monkeypatch.setattr(service.server.app, "max_body_bytes", 64)
        monkeypatch.setattr(service.server.app, "max_drain_bytes", 128)
        request = (
            b"POST /quantify HTTP/1.1\r\n"
            b"Host: t\r\n"
            b"Content-Length: 4096\r\n"
            b"\r\n"
        )
        host, port = service.server.server_address[:2]
        with socket.create_connection((host, port), timeout=30) as sock:
            sock.sendall(request + b"y" * 4096)
            reader = sock.makefile("rb")
            status, headers, _ = _read_http_response(reader)
            assert status == 400
            assert headers.get("connection") == "close"
            assert reader.readline() == b""


# ----------------------------------------------------------------------
# Deadline abandonment accounting
# ----------------------------------------------------------------------


class TestAbandonedWorkers:
    def test_value_and_error_paths_unchanged(self):
        assert run_with_deadline(lambda: 42, 1.0) == 42
        with pytest.raises(ValueError, match="boom"):
            run_with_deadline(lambda: (_ for _ in ()).throw(ValueError("boom")), 1.0)

    def test_abandoned_worker_failure_is_counted_and_logged(self, caplog):
        metrics = ServiceMetrics()
        release = threading.Event()

        def slow_failure():
            release.wait(2.0)
            raise ValueError("late boom")

        with caplog.at_level(logging.ERROR, logger="repro.service"):
            with pytest.raises(RequestTimeout):
                run_with_deadline(slow_failure, 0.01, metrics)
            assert metrics.abandoned_requests == 1
            release.set()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if any(
                    "abandoned request worker failed" in record.message
                    for record in caplog.records
                ):
                    break
                time.sleep(0.01)
            else:
                pytest.fail("abandoned worker's exception was never logged")
        record = next(
            record for record in caplog.records
            if "abandoned request worker failed" in record.message
        )
        assert "late boom" in str(record.exc_info[1])

    def test_abandoned_counter_reaches_the_exposition(
        self, start_service, small_marketplace_dataset, small_search_dataset
    ):
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        harness = ServiceHarness(
            start_service(
                registry=registry, request_timeout=1e-4, legacy_routes="serve"
            )
        )
        status, _ = harness.post(
            "/quantify", {"dataset": "taskrabbit", "dimension": "group"}
        )
        assert status == 503
        _, text = harness.get("/metrics")
        assert "fbox_abandoned_requests_total 1" in text
        assert "fbox_request_timeouts_total 1" in text


# ----------------------------------------------------------------------
# Registry behavior that needs no server
# ----------------------------------------------------------------------


class TestRegistry:
    def test_unknown_dataset_raises_not_found(self):
        from repro.service.errors import NotFound

        registry = DatasetRegistry(schema=default_schema())
        with pytest.raises(NotFound, match="unknown dataset"):
            registry.spec("missing")

    def test_loader_called_exactly_once(self, small_marketplace_dataset):
        calls = []

        def loader():
            calls.append(1)
            return small_marketplace_dataset

        registry = DatasetRegistry()
        registry.register(DatasetSpec(name="tr", site="taskrabbit", loader=loader))
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(lambda _: registry.dataset("tr"), range(8)))
        assert len(calls) == 1

    def test_reregistering_drops_stale_materializations(
        self, small_marketplace_dataset
    ):
        registry = DatasetRegistry()
        spec = DatasetSpec(
            name="tr", site="taskrabbit", loader=lambda: small_marketplace_dataset
        )
        registry.register(spec)
        registry.fbox("tr")
        assert registry.is_loaded("tr")
        registry.register(spec)
        assert not registry.is_loaded("tr")
        assert registry.build_counts()["fboxes"] == 0

    def test_generation_counts_registrations(self, small_marketplace_dataset):
        registry = DatasetRegistry()
        assert registry.generation("tr") == 0
        spec = DatasetSpec(
            name="tr", site="taskrabbit", loader=lambda: small_marketplace_dataset
        )
        registry.register(spec)
        assert registry.generation("tr") == 1
        registry.register(spec)
        assert registry.generation("tr") == 2

    def test_reregister_mid_flight_serves_fresh_results(
        self, site, small_marketplace_dataset
    ):
        """The ROADMAP stale-cache bug: cached answers must die with the data."""
        from repro.marketplace.crawl import run_crawl

        registry = DatasetRegistry()
        registry.register(
            DatasetSpec(
                name="tr",
                site="taskrabbit",
                loader=lambda: small_marketplace_dataset,
            )
        )
        context = ServiceContext(registry=registry)
        request = {"dataset": "tr", "dimension": "location", "k": 10}

        first = handle_quantify(context, request)
        assert first["cached"] is False
        assert handle_quantify(context, request)["cached"] is True
        six_cities = {entry["name"] for entry in first["entries"]}
        assert len(six_cities) == 6

        two_city = run_crawl(
            site, level="category", cities=["Boston, MA", "Seattle, WA"]
        ).dataset
        registry.register(
            DatasetSpec(name="tr", site="taskrabbit", loader=lambda: two_city)
        )

        fresh = handle_quantify(context, request)
        assert fresh["cached"] is False  # generation bump defeated the LRU
        fresh_cities = {entry["name"] for entry in fresh["entries"]}
        assert fresh_cities == {"Boston, MA", "Seattle, WA"}
        # And the new generation caches normally from here on.
        assert handle_quantify(context, request)["cached"] is True
