"""The measure registry."""

from __future__ import annotations

import pytest

from repro.core.measures import available_measures, get_measure, register_measure
from repro.core.measures.emd import EmdMeasure
from repro.core.measures.exposure import ExposureMeasure
from repro.core.measures.jaccard import JaccardMeasure
from repro.core.measures.kendall import KendallTauMeasure
from repro.exceptions import MeasureError


class TestRegistry:
    def test_all_four_paper_measures_registered(self):
        names = available_measures()
        for expected in ("kendall", "jaccard", "emd", "exposure"):
            assert expected in names

    def test_get_measure_constructs_instances(self):
        assert isinstance(get_measure("kendall"), KendallTauMeasure)
        assert isinstance(get_measure("jaccard"), JaccardMeasure)
        assert isinstance(get_measure("emd"), EmdMeasure)
        assert isinstance(get_measure("exposure"), ExposureMeasure)

    def test_lookup_is_case_insensitive(self):
        assert isinstance(get_measure("KENDALL"), KendallTauMeasure)

    def test_options_are_forwarded(self):
        measure = get_measure("kendall", penalty=1.0)
        assert measure.penalty == 1.0

    def test_unknown_measure_lists_alternatives(self):
        with pytest.raises(MeasureError, match="available"):
            get_measure("cosine")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(MeasureError, match="already registered"):
            register_measure("kendall", KendallTauMeasure)
