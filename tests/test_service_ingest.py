"""The live-ingest subsystem: POST /observations, trends, and convergence.

Covers the write path end-to-end on every (transport × execution backend)
combination the conftest parameterizes: validation and idempotency of
``POST /v1/observations``, incremental cube/index maintenance converging
byte-for-byte with a cold rebuild of the final dataset state, generation
invalidation under ingest/quantify races, trend history plus alert
accounting on ``GET /v1/trends`` / ``/metrics`` / ``/v1/datasets``, the
simulators' ``emit_observations`` streaming mode, the client's
retry-idempotent ``ingest()``/``trends()`` sugar, and the worker-exit
chaos arc (a shard dying mid-ingest must quarantine, restart, and let the
replayed ``batch_id`` converge to the same cube state).
"""

from __future__ import annotations

import json
import threading
import time
import urllib.parse

import pytest

from repro.client import FBoxClient, RetryPolicy
from repro.data.schema import MarketplaceDataset, SearchDataset
from repro.marketplace.crawl import emit_observations as emit_marketplace
from repro.searchengine.study import emit_observations as emit_search
from repro.service.faults import FAULTS_ENV_VAR
from repro.service.handlers import ServiceContext, handle_quantify
from repro.service.ingest import decode_observations, handle_observations
from repro.service.registry import DatasetRegistry, DatasetSpec
from repro.service.server import make_server
from repro.service.sharding import shard_for

from tests.test_service import ServiceHarness, _registry


def _trends_path(dataset: str, **params) -> str:
    return "/v1/trends?" + urllib.parse.urlencode({"dataset": dataset, **params})


def _market_batch(site, dataset, seed=0, batch_size=3, swaps=2) -> list[dict]:
    return next(
        emit_marketplace(
            site, dataset, batches=1, batch_size=batch_size, seed=seed, swaps=swaps
        )
    )


def _copy_marketplace(dataset: MarketplaceDataset) -> MarketplaceDataset:
    return MarketplaceDataset(
        workers=dataset.workers.values(), observations=dataset.observations()
    )


def _copy_search(dataset: SearchDataset) -> SearchDataset:
    return SearchDataset(
        users=dataset.users.values(), observations=dataset.observations()
    )


@pytest.fixture
def service(start_service, small_marketplace_dataset, small_search_dataset):
    # Ingest mutates the registered dataset in place; hand the registry
    # copies so one parameterization's writes never leak into the next
    # (a leaked re-apply changes zero cells, and the exact staleness
    # predicate then correctly rebuilds zero posting lists).
    registry = _registry(
        _copy_marketplace(small_marketplace_dataset),
        _copy_search(small_search_dataset),
    )
    return ServiceHarness(start_service(registry=registry, request_timeout=60.0))


# ----------------------------------------------------------------------
# POST /observations: the write path over HTTP
# ----------------------------------------------------------------------


class TestIngestEndpoint:
    def test_ingest_applies_and_invalidates_the_cache(
        self, service, site, small_marketplace_dataset
    ):
        request = {"dataset": "taskrabbit", "dimension": "group", "k": 3}
        status, first = service.post("/v1/quantify", request)
        assert status == 200 and first["cached"] is False
        assert service.post("/v1/quantify", request)[1]["cached"] is True

        batch = _market_batch(site, small_marketplace_dataset)
        status, document = service.post(
            "/v1/observations",
            {"dataset": "taskrabbit", "batch_id": "b-1", "observations": batch},
        )
        assert status == 200
        assert document["kind"] == "ingest"
        assert document["dataset"] == "taskrabbit"
        assert document["replayed"] is False
        assert document["accepted"] == len(batch)
        assert len(document["touched_pairs"]) == len(batch)
        assert document["cells_recomputed"] > 0
        assert document["lists_rebuilt"] > 0

        status, fresh = service.post("/v1/quantify", request)
        assert status == 200
        assert fresh["cached"] is False  # the generation bump defeated the LRU
        assert service.post("/v1/quantify", request)[1]["cached"] is True

    def test_replayed_batch_id_is_not_double_applied(
        self, service, site, small_marketplace_dataset
    ):
        batch = _market_batch(site, small_marketplace_dataset)
        payload = {
            "dataset": "taskrabbit",
            "batch_id": "replay-me",
            "observations": batch,
        }
        _, first = service.post("/v1/observations", payload)
        status, second = service.post("/v1/observations", payload)
        assert status == 200
        assert second["replayed"] is True
        assert second["generation"] == first["generation"]
        _, datasets = service.get_json("/v1/datasets")
        entry = next(
            e for e in datasets["datasets"] if e["name"] == "taskrabbit"
        )
        assert entry["ingest_batches"] == 1

    def test_google_ingest_via_the_study_emitter(
        self, service, small_search_dataset
    ):
        batch = next(emit_search(small_search_dataset, batch_size=2, seed=3))
        status, document = service.post(
            "/v1/observations", {"dataset": "google", "observations": batch}
        )
        assert status == 200, document
        assert document["accepted"] == 2
        assert document["batch_id"] is None

    def test_unknown_dataset_is_404(self, service):
        status, body = service.post(
            "/v1/observations",
            {"dataset": "missing", "observations": [{}]},
        )
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_envelope_problems_are_400(self, service):
        for payload in (
            {"dataset": "taskrabbit"},
            {"dataset": "taskrabbit", "observations": []},
            {"dataset": "taskrabbit", "observations": "nope"},
            {"dataset": "taskrabbit", "observations": [{"query": "Moving"}]},
            {
                "dataset": "taskrabbit",
                "observations": [
                    {"query": "Moving", "location": "Boston, MA", "ranking": [1, 2]}
                ],
            },
        ):
            status, body = service.post("/v1/observations", payload)
            assert status == 400, (payload, body)
            assert body["error"]["code"] == "bad_request"

    def test_unknown_worker_is_422(self, service):
        status, body = service.post(
            "/v1/observations",
            {
                "dataset": "taskrabbit",
                "observations": [
                    {
                        "query": "Moving",
                        "location": "Boston, MA",
                        "ranking": ["w-not-a-worker"],
                    }
                ],
            },
        )
        assert status == 422, body
        assert body["error"]["code"] == "unprocessable"
        assert "unknown worker" in body["error"]["message"]

    def test_duplicate_ranking_entry_is_422(self, service, small_marketplace_dataset):
        worker = next(iter(small_marketplace_dataset.workers))
        status, body = service.post(
            "/v1/observations",
            {
                "dataset": "taskrabbit",
                "observations": [
                    {
                        "query": "Moving",
                        "location": "Boston, MA",
                        "ranking": [worker, worker],
                    }
                ],
            },
        )
        assert status == 422, body


# ----------------------------------------------------------------------
# Trends, alerts, and the observability surfaces
# ----------------------------------------------------------------------


class TestTrendsAndAlerts:
    @pytest.fixture
    def alerting_service(
        self, start_service, small_marketplace_dataset, small_search_dataset
    ):
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        return ServiceHarness(
            start_service(
                registry=registry, request_timeout=60.0, alert_threshold=0.0001
            )
        )

    def test_trends_replay_one_cell_across_generations(
        self, alerting_service, site, small_marketplace_dataset
    ):
        service = alerting_service
        # Materialize the default-measure F-Box so ingest exercises the
        # incremental path rather than a later cold build.
        service.post("/v1/quantify", {"dataset": "taskrabbit", "dimension": "group"})
        generations = []
        # Two batches revisiting the same (query, location) cell.
        first = _market_batch(site, small_marketplace_dataset, seed=5, batch_size=1)
        second = _market_batch(site, small_marketplace_dataset, seed=6, batch_size=1)
        query, location = first[0]["query"], first[0]["location"]
        assert (second[0]["query"], second[0]["location"]) == (query, location)
        for position, batch in enumerate((first, second)):
            status, document = service.post(
                "/v1/observations",
                {
                    "dataset": "taskrabbit",
                    "batch_id": f"trend-{position}",
                    "observations": batch,
                },
            )
            assert status == 200, document
            generations.append(document["generation"])

        status, trends = service.get_json(
            _trends_path(
                "taskrabbit",
                measure="emd",
                group="gender=Female",
                query=query,
                location=location,
            )
        )
        assert status == 200, trends
        assert trends["kind"] == "trends"
        assert trends["alert_threshold"] == 0.0001
        points = trends["points"]
        assert [point["generation"] for point in points] == generations
        assert [point["batch_id"] for point in points] == ["trend-0", "trend-1"]
        for point in points:
            assert point["value"] is None or isinstance(point["value"], float)

    def test_alerts_reach_metrics_and_datasets(
        self, alerting_service, site, small_marketplace_dataset
    ):
        service = alerting_service
        batch = _market_batch(site, small_marketplace_dataset)
        _, document = service.post(
            "/v1/observations", {"dataset": "taskrabbit", "observations": batch}
        )
        assert document["alerts"] > 0  # threshold 0.0001 trips on real cells
        _, text = service.get("/v1/metrics")
        lines = dict(
            line.rsplit(" ", 1)
            for line in text.splitlines()
            if line and not line.startswith("#")
        )
        assert int(lines["fbox_ingest_batches_total"]) == 1
        assert int(lines["fbox_ingest_observations_total"]) == len(batch)
        assert int(lines["fbox_fairness_alerts_total"]) == document["alerts"]
        assert int(lines["fbox_delta_applies_total"]) >= 0

        _, datasets = service.get_json("/v1/datasets")
        entry = next(e for e in datasets["datasets"] if e["name"] == "taskrabbit")
        assert entry["alert_threshold"] == 0.0001
        assert entry["alerts"] == document["alerts"]
        assert entry["trend_generations"] == 1

    def test_trends_requires_the_cell_coordinates(self, service):
        status, body = service.get_json(_trends_path("taskrabbit"))
        assert status == 400
        assert body["error"]["code"] == "bad_request"

    def test_trends_with_bad_group_is_422(self, service):
        status, body = service.get_json(
            _trends_path(
                "taskrabbit",
                group="not-a-label",
                query="Moving",
                location="Boston, MA",
            )
        )
        assert status == 422, body

    def test_ingest_counters_render_on_every_backend(self, service):
        _, text = service.get("/v1/metrics")
        for family in (
            "fbox_ingest_batches_total",
            "fbox_ingest_observations_total",
            "fbox_ingest_replays_total",
            "fbox_fairness_alerts_total",
            "fbox_delta_applies_total",
            "fbox_delta_cells_recomputed_total",
            "fbox_delta_lists_rebuilt_total",
        ):
            assert family in text


# ----------------------------------------------------------------------
# Convergence: incremental maintenance == cold rebuild, byte for byte
# ----------------------------------------------------------------------


QUANTIFY_PROBES = (
    {"dataset": "taskrabbit", "dimension": "group", "k": 5},
    {"dataset": "taskrabbit", "dimension": "query", "k": 4, "order": "least"},
    {"dataset": "taskrabbit", "dimension": "location", "k": 6},
    {"dataset": "google", "dimension": "group", "k": 5},
    {"dataset": "google", "dimension": "location", "k": 2},
)

COMPARE_PROBE = {
    "dataset": "taskrabbit",
    "dimension": "group",
    "r1": "gender=Male",
    "r2": "gender=Female",
    "breakdown": "location",
}


class TestIngestConvergence:
    def test_ingest_matches_a_cold_reregister(
        self,
        start_service,
        site,
        small_marketplace_dataset,
        small_search_dataset,
    ):
        """After any ingest sequence, answers must be byte-identical to a
        cold re-register of the final dataset state (the acceptance bar for
        the delta-maintenance path), on every transport × backend combo."""
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        live = ServiceHarness(start_service(registry=registry, request_timeout=60.0))

        # Materialize cubes *first* so ingest takes the incremental path.
        for probe in QUANTIFY_PROBES:
            assert live.post("/v1/quantify", probe)[0] == 200
        assert live.post("/v1/compare", COMPARE_PROBE)[0] == 200

        market_final = _copy_marketplace(small_marketplace_dataset)
        search_final = _copy_search(small_search_dataset)
        market_stream = emit_marketplace(
            site, small_marketplace_dataset, batches=3, batch_size=4, seed=17
        )
        for position, batch in enumerate(market_stream):
            status, document = live.post(
                "/v1/observations",
                {
                    "dataset": "taskrabbit",
                    "batch_id": f"mkt-{position}",
                    "observations": batch,
                },
            )
            assert status == 200, document
            market_final.upsert_observations(
                decode_observations("taskrabbit", batch)
            )
        search_stream = emit_search(
            small_search_dataset, batches=2, batch_size=2, seed=23
        )
        for position, batch in enumerate(search_stream):
            status, document = live.post(
                "/v1/observations",
                {
                    "dataset": "google",
                    "batch_id": f"ggl-{position}",
                    "observations": batch,
                },
            )
            assert status == 200, document
            search_final.upsert_observations(decode_observations("google", batch))

        cold = ServiceHarness(
            start_service(
                registry=_registry(market_final, search_final),
                request_timeout=60.0,
            )
        )

        for probe in QUANTIFY_PROBES:
            status, incremental = live.post("/v1/quantify", probe)
            assert status == 200
            status, rebuilt = cold.post("/v1/quantify", probe)
            assert status == 200
            incremental.pop("cached")
            rebuilt.pop("cached")
            assert json.dumps(incremental, sort_keys=True) == json.dumps(
                rebuilt, sort_keys=True
            ), probe
        _, incremental = live.post("/v1/compare", COMPARE_PROBE)
        _, rebuilt = cold.post("/v1/compare", COMPARE_PROBE)
        incremental.pop("cached")
        rebuilt.pop("cached")
        assert json.dumps(incremental, sort_keys=True) == json.dumps(
            rebuilt, sort_keys=True
        )


# ----------------------------------------------------------------------
# Generation invalidation under ingest/quantify races
# ----------------------------------------------------------------------


class TestGenerationInvalidation:
    """Extends TestRegistry's re-register pattern to the ingest write path."""

    def _context(self, dataset) -> ServiceContext:
        registry = DatasetRegistry()
        registry.register(
            DatasetSpec(name="tr", site="taskrabbit", loader=lambda: dataset)
        )
        return ServiceContext(registry=registry)

    def test_ingest_mid_flight_serves_fresh_results(
        self, site, small_marketplace_dataset
    ):
        context = self._context(_copy_marketplace(small_marketplace_dataset))
        request = {"dataset": "tr", "dimension": "query", "k": 8}

        first = handle_quantify(context, request)
        assert first["cached"] is False
        assert handle_quantify(context, request)["cached"] is True

        batch = _market_batch(site, small_marketplace_dataset, seed=2, swaps=6)
        document = handle_observations(
            context,
            {"dataset": "tr", "batch_id": "mid", "observations": batch},
        )
        assert document["replayed"] is False

        fresh = handle_quantify(context, request)
        assert fresh["cached"] is False  # generation bump defeated the LRU
        assert handle_quantify(context, request)["cached"] is True

    def test_concurrent_quantify_never_caches_under_the_new_generation(
        self, site, small_marketplace_dataset, monkeypatch
    ):
        """A quantify that keyed itself *before* an ingest must not have its
        answer served *after* the ingest: the generation tag is taken before
        compute, and the bump happens last, so the stale entry's key can
        never collide with a post-ingest lookup."""
        context = self._context(_copy_marketplace(small_marketplace_dataset))
        registry = context.registry
        request = {"dataset": "tr", "dimension": "query", "k": 8}
        handle_quantify(context, request)  # materialize the F-Box

        quantify_entered = threading.Event()
        ingest_done = threading.Event()
        original_fbox = DatasetRegistry.fbox

        def pausing_fbox(self, name, measure=None):
            if not quantify_entered.is_set():
                quantify_entered.set()
                assert ingest_done.wait(timeout=30.0)
            return original_fbox(self, name, measure)

        # Drop the cached first answer so the racing quantify recomputes.
        context.cache.clear()
        monkeypatch.setattr(DatasetRegistry, "fbox", pausing_fbox)

        outcome: dict = {}

        def racing_quantify() -> None:
            outcome["document"] = handle_quantify(context, request)

        thread = threading.Thread(target=racing_quantify)
        thread.start()
        assert quantify_entered.wait(timeout=30.0)
        # The quantify thread holds a *pre-ingest* generation tag and is
        # paused mid-compute.  Complete a full ingest underneath it.
        batch = _market_batch(site, small_marketplace_dataset, seed=9, swaps=6)
        document = handle_observations(
            context,
            {"dataset": "tr", "batch_id": "race", "observations": batch},
        )
        post_generation = document["generation"]
        ingest_done.set()
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert outcome["document"]["cached"] is False

        # The racing answer was tagged with the pre-ingest generation, so a
        # post-ingest request misses the cache and recomputes fresh.
        monkeypatch.setattr(DatasetRegistry, "fbox", original_fbox)
        after = handle_quantify(context, request)
        assert after["cached"] is False
        assert registry.generation("tr") == post_generation

    def test_ingest_stress_converges_with_concurrent_readers(
        self, site, small_marketplace_dataset
    ):
        context = self._context(_copy_marketplace(small_marketplace_dataset))
        request = {"dataset": "tr", "dimension": "location", "k": 6}
        handle_quantify(context, request)

        stop = threading.Event()
        failures: list[BaseException] = []

        def reader() -> None:
            while not stop.is_set():
                try:
                    handle_quantify(context, request)
                except BaseException as error:  # noqa: BLE001 - collected
                    failures.append(error)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        final = _copy_marketplace(small_marketplace_dataset)
        for position, batch in enumerate(
            emit_marketplace(
                site, small_marketplace_dataset, batches=4, batch_size=3, seed=31
            )
        ):
            handle_observations(
                context,
                {"dataset": "tr", "batch_id": f"s-{position}", "observations": batch},
            )
            final.upsert_observations(decode_observations("taskrabbit", batch))
        stop.set()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not failures

        # Whatever interleaving happened, the post-ingest answer equals a
        # cold compute over the final dataset state.
        settled = handle_quantify(context, request)
        cold_context = self._context(final)
        cold = handle_quantify(cold_context, request)
        settled = {k: v for k, v in settled.items() if k != "cached"}
        cold = {k: v for k, v in cold.items() if k != "cached"}
        assert settled == cold


# ----------------------------------------------------------------------
# Client sugar: retry-idempotent ingest, trends
# ----------------------------------------------------------------------


class TestClientIngest:
    def test_client_ingest_and_trends(self, service, site, small_marketplace_dataset):
        batch = _market_batch(site, small_marketplace_dataset)
        query, location = batch[0]["query"], batch[0]["location"]
        with FBoxClient(service.base, retry=RetryPolicy(seed=1)) as client:
            document = client.ingest("taskrabbit", batch)
            assert document["replayed"] is False
            assert document["batch_id"]  # generated client-side, sent along
            trends = client.trends(
                "taskrabbit",
                group="gender=Female",
                query=query,
                location=location,
            )
            assert trends["kind"] == "trends"
            assert [p["batch_id"] for p in trends["points"]] == [
                document["batch_id"]
            ]

    def test_replay_after_connection_drop_does_not_double_apply(
        self, service, site, small_marketplace_dataset
    ):
        """The retry contract: the batch_id is fixed before the first POST,
        so resending the identical request (what a retry after a dropped
        connection does) answers from the ledger instead of re-applying."""
        batch = _market_batch(site, small_marketplace_dataset)
        sent: list[dict] = []
        with FBoxClient(service.base, retry=RetryPolicy(seed=1)) as client:
            original_post = client.post

            def recording_post(path, payload, **kwargs):
                sent.append(payload)
                return original_post(path, payload, **kwargs)

            client.post = recording_post
            first = client.ingest("taskrabbit", batch)
            # Simulate the retry: replay the captured wire payload verbatim.
            replay = original_post("/v1/observations", sent[0])
            assert replay["replayed"] is True
            assert replay["generation"] == first["generation"]
            assert client.ingest("taskrabbit", batch)["replayed"] is False

    def test_explicit_batch_id_is_respected(self, service, site, small_marketplace_dataset):
        batch = _market_batch(site, small_marketplace_dataset)
        with FBoxClient(service.base, retry=RetryPolicy(seed=1)) as client:
            first = client.ingest("taskrabbit", batch, batch_id="mine")
            assert first["batch_id"] == "mine"
            assert client.ingest("taskrabbit", batch, batch_id="mine")["replayed"] is True


# ----------------------------------------------------------------------
# The simulators' streaming mode
# ----------------------------------------------------------------------


class TestEmitObservations:
    def test_marketplace_stream_is_deterministic(self, site, small_marketplace_dataset):
        a = list(emit_marketplace(site, small_marketplace_dataset, batches=2, seed=4))
        b = list(emit_marketplace(site, small_marketplace_dataset, batches=2, seed=4))
        c = list(emit_marketplace(site, small_marketplace_dataset, batches=2, seed=5))
        assert a == b
        assert a != c

    def test_marketplace_stream_rotates_through_the_dataset(
        self, site, small_marketplace_dataset
    ):
        pairs = {
            (o.query, o.location) for o in small_marketplace_dataset.observations()
        }
        emitted = set()
        for batch in emit_marketplace(
            site, small_marketplace_dataset, batches=6, batch_size=8, seed=1
        ):
            emitted.update((item["query"], item["location"]) for item in batch)
        assert emitted == pairs

    def test_marketplace_batches_decode_and_upsert(
        self, site, small_marketplace_dataset
    ):
        batch = _market_batch(site, small_marketplace_dataset, swaps=4)
        final = _copy_marketplace(small_marketplace_dataset)
        touched = final.upsert_observations(decode_observations("taskrabbit", batch))
        assert len(touched) == len(batch)
        for item in batch:
            stored = final.observation(item["query"], item["location"])
            assert list(stored.ranking.items) == item["ranking"]

    def test_search_stream_keeps_the_participant_panel(self, small_search_dataset):
        batch = next(emit_search(small_search_dataset, batch_size=2, seed=8))
        for item in batch:
            original = small_search_dataset.observation(
                item["query"], item["location"]
            )
            assert set(item["results_by_user"]) == set(original.results_by_user)
        final = _copy_search(small_search_dataset)
        touched = final.upsert_observations(decode_observations("google", batch))
        assert len(touched) == len(batch)


# ----------------------------------------------------------------------
# Chaos: a shard dying mid-ingest, then a convergent replay
# ----------------------------------------------------------------------


class TestIngestWorkerExit:
    def test_worker_exit_during_ingest_replays_to_the_same_state(
        self,
        backend,
        monkeypatch,
        site,
        small_marketplace_dataset,
        small_search_dataset,
    ):
        monkeypatch.setenv(
            FAULTS_ENV_VAR,
            json.dumps(
                {
                    "rules": [
                        {"site": "worker_exit", "match": "/observations", "times": 1}
                    ]
                }
            ),
        )
        running = []

        def start(registry, **kwargs):
            server = make_server(registry=registry, port=0, backend=backend, **kwargs)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            running.append((server, thread))
            return server

        try:
            registry = _registry(small_marketplace_dataset, small_search_dataset)
            server = start(
                registry, shards=2, request_timeout=60.0, cache_size=0
            )
            harness = ServiceHarness(server)
            victim_shard = shard_for("taskrabbit", 2)
            router = server.context.router
            router.poll_interval = 2.0
            time.sleep(0.3)  # let the monitor settle into the slow cadence

            # Materialize the victim's cube so the replay exercises the
            # incremental path on the *restarted* worker's rebuilt state.
            assert (
                harness.post(
                    "/v1/quantify", {"dataset": "taskrabbit", "dimension": "group"}
                )[0]
                == 200
            )

            batch = _market_batch(site, small_marketplace_dataset, seed=13, swaps=5)
            payload = {
                "dataset": "taskrabbit",
                "batch_id": "chaos-1",
                "observations": batch,
            }
            status, body = harness.post("/v1/observations", payload)
            assert status == 503
            error = body["error"]
            assert error["code"] == "shard_unavailable"
            assert error["shard"] == victim_shard
            assert error["retryable"] is True

            # Quarantine: the dead shard's dataset is flagged in /readyz.
            status, ready = harness.get_json("/v1/readyz")
            assert status == 503
            entries = {entry["name"]: entry for entry in ready["datasets"]}
            assert entries["taskrabbit"]["breaker"] != "closed"

            # Recovery + replay: the monitor respawns the worker; replaying
            # the same batch_id must converge (the crash killed ledger and
            # state together, so the replay applies exactly once).
            router.poll_interval = 0.05
            deadline = time.monotonic() + 20.0
            status, document = 0, {}
            while time.monotonic() < deadline:
                status, document = harness.post("/v1/observations", payload)
                if status == 200:
                    break
                time.sleep(0.1)
            assert status == 200, document
            assert document["replayed"] is False
            assert document["accepted"] == len(batch)
            # A second replay now hits the fresh worker's ledger.
            status, again = harness.post("/v1/observations", payload)
            assert status == 200 and again["replayed"] is True

            # Convergence: byte-identical answers to a cold single-process
            # server that ingested the batch exactly once.
            final = _copy_marketplace(small_marketplace_dataset)
            final.upsert_observations(decode_observations("taskrabbit", batch))
            cold = ServiceHarness(
                start(
                    _registry(final, small_search_dataset),
                    shards=0,
                    request_timeout=60.0,
                    cache_size=0,
                )
            )
            for probe in (
                {"dataset": "taskrabbit", "dimension": "group", "k": 5},
                {"dataset": "taskrabbit", "dimension": "location", "k": 6},
            ):
                status, sharded = harness.post("/v1/quantify", probe)
                assert status == 200
                status, rebuilt = cold.post("/v1/quantify", probe)
                assert status == 200
                assert json.dumps(sharded, sort_keys=True) == json.dumps(
                    rebuilt, sort_keys=True
                ), probe
        finally:
            for server, thread in running:
                server.shutdown()
                thread.join(timeout=5)
                server.server_close()
