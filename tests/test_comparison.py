"""Fairness comparison (Problem 2; Algorithms 2–3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.comparison import _is_reversal, compare, compare_with_indices
from repro.core.cube import UnfairnessCube
from repro.core.groups import Group
from repro.exceptions import AlgorithmError

from tests.helpers import make_cube


class TestReversalPredicate:
    def test_strict_reversal(self):
        assert _is_reversal(0.9, 0.1, overall1=0.1, overall2=0.9)

    def test_same_direction_is_not_reversal(self):
        assert not _is_reversal(0.2, 0.8, overall1=0.1, overall2=0.9)

    def test_breakdown_tie_against_strict_overall_counts(self):
        # Table 12 lists Chicago (0.062 / 0.062) against an ordered overall.
        assert _is_reversal(0.5, 0.5, overall1=0.1, overall2=0.9)

    def test_overall_tie_with_breakdown_difference_counts(self):
        assert _is_reversal(0.6, 0.4, overall1=0.5, overall2=0.5)

    def test_double_tie_is_not_reversal(self):
        assert not _is_reversal(0.5, 0.5, overall1=0.3, overall2=0.3)


class TestCompare:
    def make_cube_with_known_reversal(self):
        groups = [Group({"gender": "Male"}), Group({"gender": "Female"})]
        queries = ["q0"]
        locations = ["l0", "l1", "l2"]
        # Overall: male mean 0.2 < female mean 0.5; at l2 the order flips.
        values = np.array(
            [
                [[0.1, 0.1, 0.4]],  # male
                [[0.6, 0.7, 0.2]],  # female
            ]
        )
        return UnfairnessCube(groups, queries, locations, values), groups

    def test_detects_the_reversed_location(self):
        cube, (male, female) = self.make_cube_with_known_reversal()
        report = compare(cube, "group", male, female, "location")
        assert report.reversed_members == ["l2"]

    def test_overall_values(self):
        cube, (male, female) = self.make_cube_with_known_reversal()
        report = compare(cube, "group", male, female, "location")
        assert report.overall_r1 == pytest.approx(0.2)
        assert report.overall_r2 == pytest.approx(0.5)

    def test_rows_cover_all_breakdown_members(self):
        cube, (male, female) = self.make_cube_with_known_reversal()
        report = compare(cube, "group", male, female, "location")
        assert [row.member for row in report.rows] == ["l0", "l1", "l2"]

    def test_row_for_lookup(self):
        cube, (male, female) = self.make_cube_with_known_reversal()
        report = compare(cube, "group", male, female, "location")
        assert report.row_for("l2").reversed_vs_overall
        with pytest.raises(AlgorithmError):
            report.row_for("l99")

    def test_breakdown_members_with_missing_side_are_skipped(self):
        cube, (male, female) = self.make_cube_with_known_reversal()
        values = cube.values.copy()
        values[0, 0, 1] = np.nan  # male undefined at l1
        holey = UnfairnessCube(cube.groups, cube.queries, cube.locations, values)
        report = compare(holey, "group", male, female, "location")
        assert [row.member for row in report.rows] == ["l0", "l2"]


class TestCompareValidation:
    def test_equal_members_rejected(self, cube):
        group = cube.groups[0]
        with pytest.raises(AlgorithmError, match="must differ"):
            compare(cube, "group", group, group, "location")

    def test_member_not_in_dimension_rejected(self, cube):
        with pytest.raises(AlgorithmError, match="not a member"):
            compare(cube, "group", Group({"gender": "zz"}), cube.groups[0], "query")

    def test_breakdown_must_differ_from_dimension(self, cube):
        with pytest.raises(AlgorithmError, match="must differ"):
            compare(cube, "group", cube.groups[0], cube.groups[1], "group")

    def test_unknown_dimension_rejected(self, cube):
        with pytest.raises(AlgorithmError, match="unknown"):
            compare(cube, "time", "a", "b", "group")


class TestIndexBackedAlgorithm:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1_000))
    def test_matches_cube_based_compare(self, seed):
        cube = make_cube(4, 3, 4, seed=seed)
        r1, r2 = cube.groups[0], cube.groups[2]
        direct = compare(cube, "group", r1, r2, "location")
        indexed = compare_with_indices(cube, "group", r1, r2, "location")
        assert direct.overall_r1 == pytest.approx(indexed.overall_r1)
        assert direct.overall_r2 == pytest.approx(indexed.overall_r2)
        assert direct.reversed_members == indexed.reversed_members
        for left, right in zip(direct.rows, indexed.rows):
            assert left.value_r1 == pytest.approx(right.value_r1)
            assert left.value_r2 == pytest.approx(right.value_r2)

    def test_counts_accesses(self, cube):
        report = compare_with_indices(
            cube, "group", cube.groups[0], cube.groups[1], "location"
        )
        assert report.stats.sorted_accesses > 0
        assert report.stats.random_accesses > 0

    @pytest.mark.parametrize(
        "dimension,breakdown",
        [
            ("group", "query"),
            ("group", "location"),
            ("query", "group"),
            ("query", "location"),
            ("location", "group"),
            ("location", "query"),
        ],
    )
    def test_all_six_instances_agree(self, cube, dimension, breakdown):
        domain = cube.domain(dimension)
        r1, r2 = domain[0], domain[1]
        direct = compare(cube, dimension, r1, r2, breakdown)
        indexed = compare_with_indices(cube, dimension, r1, r2, breakdown)
        assert direct.reversed_members == indexed.reversed_members
