"""Text-table rendering."""

from __future__ import annotations

from repro.core.comparison import BreakdownRow, ComparisonReport
from repro.experiments.report import fmt, render_comparison, render_table


class TestFmt:
    def test_float_formatting(self):
        assert fmt(0.12345) == "0.123"
        assert fmt(0.12345, decimals=1) == "0.1"

    def test_non_float_passthrough(self):
        assert fmt("abc") == "abc"
        assert fmt(7) == "7"


class TestRenderTable:
    def test_alignment_and_structure(self):
        text = render_table(
            "Demo", ("name", "value"), [("alpha", 0.5), ("b", 0.25)]
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert lines[1] == "===="
        assert "name" in lines[2] and "value" in lines[2]
        assert lines[4].startswith("alpha")
        assert "0.500" in lines[4]

    def test_column_widths_expand_to_contents(self):
        text = render_table("T", ("x",), [("a-very-long-cell",)])
        assert "a-very-long-cell" in text


class TestRenderComparison:
    def test_includes_overall_and_reversal_marks(self):
        report = ComparisonReport(
            dimension="group",
            r1="Males",
            r2="Females",
            breakdown_dimension="location",
            overall_r1=0.48,
            overall_r2=0.74,
            rows=(
                BreakdownRow("Oklahoma City, OK", 0.853, 0.732, True),
                BreakdownRow("Boston, MA", 0.4, 0.6, False),
            ),
        )
        text = render_comparison("Table 4", report)
        assert "All" in text
        assert "0.480" in text and "0.740" in text
        lines = text.splitlines()
        oklahoma = next(line for line in lines if "Oklahoma" in line)
        assert "REVERSED" in oklahoma
        boston = next(line for line in lines if "Boston" in line)
        assert "REVERSED" not in boston
