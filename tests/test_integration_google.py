"""End-to-end Google pipeline: engine → extension → study → F-Box."""

from __future__ import annotations

import pytest

from repro.core.fbox import FBox
from repro.core.groups import Group
from repro.searchengine.engine import GoogleJobsEngine
from repro.searchengine.study import StudyDesign, run_study

WF = Group({"gender": "Female", "ethnicity": "White"})
BM = Group({"gender": "Male", "ethnicity": "Black"})


@pytest.fixture(scope="module")
def kendall_fbox(small_search_dataset, schema):
    fbox = FBox.for_search(small_search_dataset, schema, measure="kendall")
    fbox.cube
    return fbox


class TestHeadlineFindings:
    def test_white_females_more_divergent_than_black_males(self, kendall_fbox):
        assert kendall_fbox.aggregate(groups=[WF]) > kendall_fbox.aggregate(
            groups=[BM]
        )

    def test_dc_fairer_than_boston(self, kendall_fbox):
        dc = kendall_fbox.aggregate(locations=["Washington, DC"])
        boston = kendall_fbox.aggregate(locations=["Boston, MA"])
        assert dc < boston

    def test_dc_unfairness_is_negligible(self, kendall_fbox):
        """Washington, DC is calibrated to zero personalization divergence."""
        assert kendall_fbox.aggregate(locations=["Washington, DC"]) < 0.06

    def test_yard_work_less_fair_than_furniture_assembly(self, kendall_fbox):
        from repro.searchengine.keyword_planner import term_variants

        yard = kendall_fbox.aggregate(queries=term_variants("yard work"))
        assembly = kendall_fbox.aggregate(queries=term_variants("furniture assembly"))
        assert yard > assembly

    def test_jaccard_agrees_on_group_ordering(self, small_search_dataset, schema):
        """The paper: Kendall and Jaccard report mostly similar results."""
        jaccard = FBox.for_search(small_search_dataset, schema, measure="jaccard")
        assert jaccard.aggregate(groups=[WF]) > jaccard.aggregate(groups=[BM])


class TestPersonalizationAblation:
    def test_unpersonalized_engine_is_fair_everywhere(self, schema):
        engine = GoogleJobsEngine(seed=11, personalization_scale=0.0)
        design = StudyDesign(pairs=(("yard work", "London, UK"),))
        dataset = run_study(engine, design).dataset
        fbox = FBox.for_search(dataset, schema)
        # Noise sources remain, so unfairness is small but maybe not zero.
        assert fbox.aggregate() < 0.12


class TestStudyDataProperties:
    def test_every_observation_covers_all_participants(self, small_search_dataset):
        for observation in small_search_dataset.observations():
            assert len(observation.results_by_user) == 18

    def test_user_lists_are_valid_pages(self, small_search_dataset):
        for observation in small_search_dataset.observations():
            for ranking in observation.results_by_user.values():
                assert 0 < len(ranking) <= 20
