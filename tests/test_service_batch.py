"""The batch endpoint: envelope validation, per-item isolation, shared sweeps.

``POST /batch`` groups homogeneous quantify sub-requests by ``(dataset,
measure, dimension, order)`` and answers each group with one Fagin sweep at
the group's largest ``k``.  These tests pin down the three contracts that
make that safe: item failures never fail the batch, sliced results are
byte-identical to independent top-k runs, and the shared sweep really does
cost one family build plus measurably fewer index accesses than sequential
POSTs (asserted via ``/metrics``).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.batch import multi_top_k, plan_groups, slice_top_k
from repro.core.fagin import top_k
from repro.core.fbox import FBox
from repro.service import handlers as handlers_mod

from tests.helpers import make_cube
from tests.test_service import ServiceHarness, _registry


@pytest.fixture
def service(start_service, small_marketplace_dataset, small_search_dataset):
    # Pre-/v1 suite: pins the straggler passthrough; retirement is covered
    # by test_service_api_v1.TestLegacyRetired.
    registry = _registry(small_marketplace_dataset, small_search_dataset)
    return ServiceHarness(
        start_service(
            registry=registry, request_timeout=120.0, legacy_routes="serve"
        )
    )


def _quantify_item(k: int, **overrides) -> dict:
    item = {
        "op": "quantify",
        "dataset": "taskrabbit",
        "dimension": "group",
        "k": k,
    }
    item.update(overrides)
    return item


def _metric_value(metrics_text: str, prefix: str) -> int:
    line = next(
        line for line in metrics_text.splitlines() if line.startswith(prefix)
    )
    return int(line.rsplit(" ", 1)[1])


def _total_accesses(metrics_text: str) -> int:
    return _metric_value(
        metrics_text, 'fbox_index_accesses_total{mode="sorted"}'
    ) + _metric_value(metrics_text, 'fbox_index_accesses_total{mode="random"}')


# ----------------------------------------------------------------------
# Core planner
# ----------------------------------------------------------------------


class TestMultiTopK:
    def test_slices_match_independent_runs(self):
        cube = make_cube()
        results = multi_top_k(cube, "group", [1, 2, 3])
        for k, result in results.items():
            independent = top_k(cube, "group", k)
            assert result.entries == independent.entries

    def test_one_sweep_serves_every_k(self):
        cube = make_cube()
        results = multi_top_k(cube, "query", [1, 3])
        # Slices share the single sweep's frozen access counters.
        assert results[1].stats is results[3].stats

    def test_slice_rejects_non_positive_k(self):
        cube = make_cube()
        full = top_k(cube, "group", 3)
        from repro.exceptions import AlgorithmError

        with pytest.raises(AlgorithmError, match="positive"):
            slice_top_k(full, 0)

    def test_empty_ks_rejected(self):
        from repro.exceptions import AlgorithmError

        with pytest.raises(AlgorithmError, match="at least one"):
            multi_top_k(make_cube(), "group", [])

    def test_plan_groups_preserves_arrival_order(self):
        groups = plan_groups([("a", 1), ("b", 2), ("a", 3)])
        assert list(groups) == ["a", "b"]
        assert groups["a"] == [1, 3]

    def test_fbox_quantify_many_matches_quantify(
        self, small_marketplace_dataset, schema
    ):
        fbox = FBox.for_marketplace(small_marketplace_dataset, schema, measure="emd")
        many = fbox.quantify_many("group", [2, 5])
        for k in (2, 5):
            assert many[k].entries == fbox.quantify("group", k=k).entries

    def test_k_zero_rejected_like_top_k(self):
        from repro.exceptions import AlgorithmError

        cube = make_cube()
        with pytest.raises(AlgorithmError, match="positive"):
            multi_top_k(cube, "group", [0, 3])
        with pytest.raises(AlgorithmError, match="positive"):
            top_k(cube, "group", 0)

    def test_k_beyond_the_dimension_universe_clamps_like_top_k(self):
        cube = make_cube(n_groups=4)
        results = multi_top_k(cube, "group", [2, 50])
        assert len(results[50].entries) == 4  # clamped to the whole domain
        for k in (2, 50):
            assert results[k].entries == top_k(cube, "group", k).entries

    def test_member_filtered_in_every_cell_matches_sequential_algorithms(self):
        import numpy as np

        from repro.core.cube import UnfairnessCube
        from repro.core.fagin import naive_top_k

        cube = make_cube()
        values = cube.values.copy()
        values[1, :, :] = np.nan  # this group defines no cell anywhere
        holed = UnfairnessCube(cube.groups, cube.queries, cube.locations, values)
        universe = len(holed.groups)
        for k in (2, universe):
            swept = multi_top_k(holed, "group", [k])[k]
            assert swept.entries == top_k(holed, "group", k).entries
            # naive aggregates in a different summation order, so the
            # ranking must agree exactly but values only to float precision.
            naive = naive_top_k(holed, "group", k)
            assert swept.keys() == naive.keys()
            assert swept.values() == pytest.approx(naive.values())
        # The fully filtered member never ranks, even when k covers the
        # whole universe.
        full = multi_top_k(holed, "group", [universe])[universe]
        assert holed.groups[1] not in full.keys()
        assert len(full.entries) == universe - 1


# ----------------------------------------------------------------------
# Envelope validation (whole-batch 400s)
# ----------------------------------------------------------------------


class TestBatchEnvelope:
    def test_empty_batch_is_400(self, service):
        status, body = service.post("/batch", [])
        assert status == 400
        assert "empty" in body["error"]["message"]

    def test_oversized_batch_is_400(self, service, monkeypatch):
        monkeypatch.setattr(handlers_mod, "_MAX_BATCH_ITEMS", 4)
        status, body = service.post("/batch", [_quantify_item(k) for k in range(1, 6)])
        assert status == 400
        assert "exceeds 4" in body["error"]["message"]

    def test_non_array_body_is_400(self, service):
        status, body = service.post("/batch", {"not": "requests"})
        assert status == 400

    def test_wrapped_requests_object_is_accepted(self, service):
        status, body = service.post("/batch", {"requests": [_quantify_item(2)]})
        assert status == 200
        assert body["results"][0]["status"] == 200


# ----------------------------------------------------------------------
# Per-item isolation
# ----------------------------------------------------------------------


class TestItemIsolation:
    def test_bad_items_do_not_fail_the_batch(self, service):
        batch = [
            _quantify_item(3),
            _quantify_item(3, dataset="linkedin"),  # 404
            _quantify_item(3, dimension="color"),  # 422
            {"op": "teleport"},  # 422 (unknown op)
            {"dataset": "taskrabbit"},  # 400 (missing op)
            [1, 2, 3],  # 400 (non-object item)
        ]
        status, body = service.post("/batch", batch)
        assert status == 200
        assert body["kind"] == "batch"
        assert [result["status"] for result in body["results"]] == [
            200, 404, 422, 422, 400, 400,
        ]
        assert body["succeeded"] == 1
        assert body["failed"] == 5
        ok = body["results"][0]["body"]
        assert ok["kind"] == "quantification"
        assert len(ok["entries"]) == 3
        assert body["results"][1]["error"]["kind"] == "not_found"
        assert body["results"][2]["error"]["kind"] == "unprocessable"

    def test_mixed_ops_all_succeed(self, service, small_marketplace_dataset):
        query = small_marketplace_dataset.queries[0]
        location = small_marketplace_dataset.locations[0]
        batch = [
            _quantify_item(2),
            {
                "op": "compare",
                "dataset": "taskrabbit",
                "dimension": "group",
                "r1": "gender=Male",
                "r2": "gender=Female",
                "breakdown": "location",
            },
            {
                "op": "explain",
                "dataset": "taskrabbit",
                "group": "gender=Female",
                "query": query,
                "location": location,
            },
        ]
        status, body = service.post("/batch", batch)
        assert status == 200
        kinds = [result["body"]["kind"] for result in body["results"]]
        assert kinds == ["quantification", "comparison", "explanation"]


# ----------------------------------------------------------------------
# Shared sweeps: equivalence and cost
# ----------------------------------------------------------------------


class TestSharedSweep:
    def test_batch_results_match_independent_topk(
        self, service, small_marketplace_dataset, schema
    ):
        ks = list(range(1, 7))
        status, body = service.post("/batch", [_quantify_item(k) for k in ks])
        assert status == 200
        assert body["sweep_groups"] == 1
        assert body["shared_items"] == len(ks)

        fbox = FBox.for_marketplace(small_marketplace_dataset, schema, measure="emd")
        for k, result in zip(ks, body["results"]):
            expected = fbox.quantify("group", k=k)
            entries = result["body"]["entries"]
            assert [entry["name"] for entry in entries] == [
                str(key) for key in expected.keys()
            ]
            assert [entry["unfairness"] for entry in entries] == pytest.approx(
                expected.values()
            )

    def test_heterogeneous_batch_plans_one_group_per_key(self, service):
        batch = [
            _quantify_item(2),
            _quantify_item(4),
            _quantify_item(2, order="least"),
            _quantify_item(2, dimension="location"),
        ]
        status, body = service.post("/batch", batch)
        assert status == 200
        assert body["sweep_groups"] == 3  # (group,most), (group,least), (location,most)
        assert body["shared_items"] == 2  # only the (group,most) pair shares

    def test_cold_homogeneous_batch_builds_one_family_with_fewer_accesses(
        self, start_service, small_marketplace_dataset, small_search_dataset
    ):
        """The acceptance criterion: 16 grid points ≈ 1 build + 1 sweep."""
        requests = [_quantify_item(k) for k in range(1, 17)]

        def boot():
            registry = _registry(small_marketplace_dataset, small_search_dataset)
            return ServiceHarness(
                start_service(
                    registry=registry,
                    request_timeout=120.0,
                    legacy_routes="serve",
                )
            )

        batched = boot()
        status, body = batched.post("/batch", requests)
        assert status == 200
        assert all(result["status"] == 200 for result in body["results"])
        _, batched_metrics = batched.get("/metrics")

        sequential = boot()
        for item in requests:
            payload = {key: value for key, value in item.items() if key != "op"}
            status, document = sequential.post("/quantify", payload)
            assert status == 200
            assert document["cached"] is False
        _, sequential_metrics = sequential.get("/metrics")

        assert _metric_value(batched_metrics, "fbox_index_family_builds_total") == 1
        assert _metric_value(batched_metrics, "fbox_cube_builds_total") == 1
        batched_accesses = _total_accesses(batched_metrics)
        sequential_accesses = _total_accesses(sequential_metrics)
        assert batched_accesses > 0
        assert batched_accesses < sequential_accesses

    def test_batch_metrics_exposed(self, service):
        service.post("/batch", [_quantify_item(1), _quantify_item(2)])
        _, text = service.get("/metrics")
        assert "fbox_batches_total 1" in text
        assert 'fbox_batch_items_total{kind="all"} 2' in text
        assert 'fbox_batch_items_total{kind="shared_sweep"} 2' in text
        assert "fbox_batch_sweep_groups_total 1" in text


# ----------------------------------------------------------------------
# Cache interplay
# ----------------------------------------------------------------------


class TestBatchCaching:
    def test_batch_warms_the_single_endpoint_cache(self, service):
        service.post("/batch", [_quantify_item(3)])
        status, body = service.post(
            "/quantify", {"dataset": "taskrabbit", "dimension": "group", "k": 3}
        )
        assert status == 200
        assert body["cached"] is True

    def test_single_endpoint_warms_the_batch(self, service):
        service.post(
            "/quantify", {"dataset": "taskrabbit", "dimension": "group", "k": 2}
        )
        status, body = service.post("/batch", [_quantify_item(2), _quantify_item(4)])
        assert status == 200
        first, second = body["results"]
        assert first["body"]["cached"] is True
        assert second["body"]["cached"] is False
        # The warm item never reached the planner, so no sweep was shared.
        assert body["shared_items"] == 0

    def test_duplicate_items_share_one_computation(self, service):
        status, body = service.post("/batch", [_quantify_item(2), _quantify_item(2)])
        assert status == 200
        first, second = body["results"]
        assert first["body"]["entries"] == second["body"]["entries"]


# ----------------------------------------------------------------------
# Concurrency
# ----------------------------------------------------------------------


class TestBatchConcurrency:
    def test_parallel_batches_build_one_cube(
        self, start_service, small_marketplace_dataset, small_search_dataset
    ):
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        harness = ServiceHarness(
            start_service(
                registry=registry, request_timeout=120.0, legacy_routes="serve"
            )
        )
        batch = [_quantify_item(k) for k in range(1, 9)]
        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = list(
                pool.map(lambda _: harness.post("/batch", batch), range(8))
            )

        assert [status for status, _ in outcomes] == [200] * 8
        answers = {
            tuple(
                tuple(
                    (entry["name"], entry["unfairness"])
                    for entry in result["body"]["entries"]
                )
                for result in body["results"]
            )
            for _, body in outcomes
        }
        assert len(answers) == 1  # every batch saw identical slices
        # /metrics merges worker build counts under sharding, so the scrape
        # is the truth for "exactly one cube was built" on every backend.
        _, text = harness.get("/metrics")
        assert "fbox_cube_builds_total 1" in text
