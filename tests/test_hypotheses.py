"""Cross-site hypothesis generation and verification."""

from __future__ import annotations

import pytest

from repro.core.fbox import FBox
from repro.exceptions import AlgorithmError
from repro.experiments.hypotheses import Hypothesis, generate, verify


@pytest.fixture(scope="module")
def market_fbox(small_marketplace_dataset, schema):
    fbox = FBox.for_marketplace(small_marketplace_dataset, schema)
    fbox.cube
    return fbox


@pytest.fixture(scope="module")
def search_fbox(small_search_dataset, schema):
    fbox = FBox.for_search(small_search_dataset, schema)
    fbox.cube
    return fbox


class TestGenerate:
    def test_pairs_extremes(self, market_fbox):
        hypotheses = generate(market_fbox, "query", top=2, source="taskrabbit")
        assert len(hypotheses) == 2
        first = hypotheses[0]
        assert first.margin > 0
        assert first.worse != first.better
        assert "taskrabbit" in str(first)

    def test_self_consistency_on_source(self, market_fbox):
        """A generated hypothesis is by construction true on its source."""
        for hypothesis in generate(market_fbox, "location", top=3):
            outcome = verify(hypothesis, market_fbox, target="source")
            assert outcome.confirmed

    def test_invalid_top_rejected(self, market_fbox):
        with pytest.raises(AlgorithmError):
            generate(market_fbox, "group", top=0)


class TestVerify:
    def test_translation_to_term_sets(self, market_fbox, search_fbox):
        from repro.searchengine.keyword_planner import term_variants

        hypothesis = Hypothesis(
            dimension="query",
            worse="Yard Work",
            better="Furniture Assembly",
            margin=0.1,
            source="taskrabbit",
        )
        mapping = {
            "Yard Work": term_variants("yard work"),
            "Furniture Assembly": term_variants("furniture assembly"),
        }
        outcome = verify(
            hypothesis, search_fbox, translate=mapping.__getitem__, target="google"
        )
        # Calibrated shape: yard work diverges more than furniture assembly.
        assert outcome.confirmed
        assert outcome.worse_value > outcome.better_value
        assert "CONFIRMED" in str(outcome)

    def test_rejection_is_reported(self, market_fbox):
        inverted = Hypothesis(
            dimension="query", worse="Delivery", better="Handyman", margin=0.0
        )
        outcome = verify(inverted, market_fbox)
        assert not outcome.confirmed
        assert "REJECTED" in str(outcome)

    def test_location_dimension(self, search_fbox):
        hypothesis = Hypothesis(
            dimension="location", worse="Boston, MA", better="Washington, DC", margin=0.0
        )
        outcome = verify(hypothesis, search_fbox)
        assert outcome.confirmed
