"""Live shard-pool resize: ``POST /v1/admin/shards`` end to end.

Covers the full contract of a resize under the conftest transport matrix:

* the consistent-hash ring bounds how many datasets a ±1 resize moves;
* an N→M→N round trip is invisible — quantify, trends, and replayed
  ``batch_id``s answer identically before and after, and match a cold
  boot at the same count (for both storage cores);
* the admin surface validates counts, requires ``--shards``, and honors
  ``--admin-token`` (X-Admin-Token or Authorization: Bearer);
* concurrent query/ingest traffic across a resize sees only transparent
  retries — :class:`~repro.client.FBoxClient` callers observe zero
  failures;
* the two worker-kill chaos arcs (source killed mid-export, destination
  killed mid-import) and a resize racing a quarantined shard all converge
  to the same state a cold boot at the final count reaches.

Worker kills are scripted through ``FBOX_FAULTS`` ``worker_exit`` rules
targeting the migration ops (``/admin/export:<dataset>`` /
``/admin/import:<dataset>``) — one rule per scenario, because respawned
workers deduct the observed crash count from every rule.
"""

from __future__ import annotations

import json
import math
import random
import threading
import time

import pytest

from repro.client import ClientError, FBoxClient, RetryPolicy
from repro.service.faults import FAULTS_ENV_VAR
from repro.service.registry import DatasetRegistry, DatasetSpec
from repro.service.server import make_server
from repro.service.sharding import build_ring, shard_for


def _registry(small_marketplace_dataset, small_search_dataset) -> DatasetRegistry:
    registry = DatasetRegistry()
    registry.register(
        DatasetSpec(
            name="taskrabbit",
            site="taskrabbit",
            loader=lambda: small_marketplace_dataset,
            description="six-city category crawl",
        )
    )
    registry.register(
        DatasetSpec(
            name="google",
            site="google",
            loader=lambda: small_search_dataset,
            description="two-location study",
        )
    )
    return registry


@pytest.fixture
def run_server(backend):
    """Boot servers with explicit knobs on the parameterized transport."""
    running: list = []

    def _start(registry, **kwargs):
        kwargs.setdefault("port", 0)
        kwargs.setdefault("backend", backend)
        server = make_server(registry=registry, **kwargs)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        running.append((server, thread))
        return server

    yield _start
    for server, thread in running:
        server.shutdown()
        thread.join(timeout=5)
        server.server_close()


def _client(server) -> FBoxClient:
    return FBoxClient(server.url, retry=RetryPolicy(seed=3))


def _search_batches(small_search_dataset, count: int = 2) -> list[list[dict]]:
    """Deterministic ingest batches referencing the fixture study's roster."""
    from repro.searchengine.study import emit_observations

    return list(
        emit_observations(
            small_search_dataset, batches=count, batch_size=3, seed=11, swaps=2
        )
    )


def _apply(client: FBoxClient, batches) -> None:
    for position, batch in enumerate(batches):
        client.ingest("google", batch, batch_id=f"rz-{position}")


def _norm(document, volatile=("cached",)) -> str:
    document = dict(document)
    for key in volatile:
        document.pop(key, None)
    return json.dumps(document, sort_keys=True)


_TREND_CELL = dict(group="gender=female", query="yard work", location="Boston, MA")


# ----------------------------------------------------------------------
# The ring: a ±1 resize moves a bounded slice of the catalog
# ----------------------------------------------------------------------


class TestRingMovementProperty:
    def test_adjacent_resizes_move_a_bounded_fraction(self):
        """For every N→N±1 resize, at most ``2*ceil(K/max(N,M)) + 2`` of K
        datasets change owner.

        The ideal consistent-hashing bound is ``ceil(K/max(N,M))``; with 64
        virtual nodes per shard the realized movement fluctuates around it,
        and a factor-2-plus-2 envelope holds across every seeded catalog
        here with margin (worst observed ratio ≈ 0.93) while still
        excluding modulo-style reshuffles, which move ``(1 - 1/N)·K``.
        """
        for seed in range(10):
            rng = random.Random(seed)
            catalog_size = rng.choice([40, 80, 120, 250])
            names = [
                f"ds-{seed}-{rng.randrange(10**9)}" for _ in range(catalog_size)
            ]
            for before in range(1, 9):
                for after in (before - 1, before + 1):
                    if after < 1:
                        continue
                    ring_before = build_ring(before)
                    ring_after = build_ring(after)
                    moved = sum(
                        1
                        for name in names
                        if shard_for(name, before, ring_before)
                        != shard_for(name, after, ring_after)
                    )
                    allowed = 2 * math.ceil(catalog_size / max(before, after)) + 2
                    assert moved <= allowed, (
                        f"{before}->{after} moved {moved} of {catalog_size} "
                        f"(allowed {allowed})"
                    )

    def test_unmoved_names_keep_their_owner_exactly(self):
        ring3, ring4 = build_ring(3), build_ring(4)
        names = [f"stable-{i}" for i in range(200)]
        stayed = [
            name
            for name in names
            if shard_for(name, 3, ring3) == shard_for(name, 4, ring4)
        ]
        # Growing never reshuffles survivors among the old shards: a name
        # either moves to the new shard or stays exactly where it was.
        for name in names:
            owner = shard_for(name, 4, ring4)
            if owner != 3:
                assert owner == shard_for(name, 3, ring3)
        assert len(stayed) > len(names) // 2


# ----------------------------------------------------------------------
# Validation and the admin-token gate
# ----------------------------------------------------------------------


class TestAdminSurface:
    def test_resize_without_sharding_is_unprocessable(
        self, run_server, small_marketplace_dataset, small_search_dataset
    ):
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        server = run_server(registry, shards=0)
        with _client(server) as client:
            with pytest.raises(ClientError) as caught:
                client.resize(2)
            assert caught.value.status == 422
            assert "shards" in str(caught.value)

    def test_count_validation(
        self, run_server, small_marketplace_dataset, small_search_dataset
    ):
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        server = run_server(registry, shards=2)
        with _client(server) as client:
            for bad in (0, 65, -1, "three", True, None, 2.5):
                with pytest.raises(ClientError) as caught:
                    client.post(
                        "/v1/admin/shards", {"count": bad}, idempotent=True
                    )
                assert caught.value.status == 422, bad

    def test_resize_to_current_count_is_a_noop(
        self, run_server, small_marketplace_dataset, small_search_dataset
    ):
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        server = run_server(registry, shards=2)
        with _client(server) as client:
            outcome = client.resize(2)
        assert outcome["noop"] is True
        assert outcome["migrated"] == []

    def test_admin_token_gates_the_endpoint(
        self, run_server, small_marketplace_dataset, small_search_dataset
    ):
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        server = run_server(registry, shards=2, admin_token="s3cret")
        with _client(server) as client:
            with pytest.raises(ClientError) as caught:
                client.resize(2)
            assert caught.value.status == 403
            with pytest.raises(ClientError) as caught:
                client.resize(2, token="wrong")
            assert caught.value.status == 403
            assert client.resize(2, token="s3cret")["noop"] is True
            # The Authorization: Bearer spelling is equivalent.
            status, body = client.request(
                "POST",
                "/v1/admin/shards",
                {"count": 2},
                headers={"Authorization": "Bearer s3cret"},
                idempotent=True,
            )
            assert status == 200 and body["noop"] is True
            # Query endpoints stay open: the token arms only the admin API.
            assert client.healthz()["status"] == "ok"

    def test_unarmed_server_accepts_without_token(
        self, run_server, small_marketplace_dataset, small_search_dataset
    ):
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        server = run_server(registry, shards=2)
        with _client(server) as client:
            assert client.resize(2)["noop"] is True

    def test_schema_lists_the_admin_endpoint(
        self, run_server, small_marketplace_dataset, small_search_dataset
    ):
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        server = run_server(registry, shards=2)
        with _client(server) as client:
            endpoints = {
                (entry["method"], entry["path"])
                for entry in client.schema()["endpoints"]
            }
        assert ("POST", "/v1/admin/shards") in endpoints


# ----------------------------------------------------------------------
# The round trip: N→M→N is invisible to readers, writers, and replays
# ----------------------------------------------------------------------


@pytest.mark.parametrize("core", ["dict", "columnar"])
class TestResizeRoundTrip:
    def test_round_trip_preserves_state_byte_for_byte(
        self,
        core,
        run_server,
        small_marketplace_dataset,
        small_search_dataset,
    ):
        batches = _search_batches(small_search_dataset)
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        server = run_server(registry, shards=2, core=core)
        with _client(server) as client:
            _apply(client, batches)
            before_quantify = _norm(client.quantify("google", "group", k=3))
            before_market = _norm(client.quantify("taskrabbit", "group", k=3))
            before_trends = _norm(client.trends("google", **_TREND_CELL))

            grown = client.resize(4)
            assert grown["from"] == 2 and grown["to"] == 4
            assert set(grown["migrated"]) <= {"taskrabbit", "google"}
            if core == "columnar":
                # The O(1) segment handoff: migrated datasets keep their
                # shared-memory segments — nothing republished, count > 0.
                assert all(
                    count > 0 for count in grown["segments"].values()
                )
            assert _norm(client.quantify("google", "group", k=3)) == before_quantify
            assert _norm(client.trends("google", **_TREND_CELL)) == before_trends
            # Replay protection moved with the dataset.
            replay = client.ingest("google", batches[0], batch_id="rz-0")
            assert replay["replayed"] is True

            shrunk = client.resize(2)
            assert shrunk["from"] == 4 and shrunk["to"] == 2
            assert _norm(client.quantify("google", "group", k=3)) == before_quantify
            assert _norm(client.quantify("taskrabbit", "group", k=3)) == before_market
            assert _norm(client.trends("google", **_TREND_CELL)) == before_trends
            assert (
                client.ingest("google", batches[1], batch_id="rz-1")["replayed"]
                is True
            )

            # A cold boot at the final count with the same ingests answers
            # byte-identically: the migrated state is indistinguishable
            # from never having moved.
            cold_registry = _registry(
                small_marketplace_dataset, small_search_dataset
            )
            cold = run_server(cold_registry, shards=2, core=core)
            with _client(cold) as cold_client:
                _apply(cold_client, batches)
                assert (
                    _norm(cold_client.quantify("google", "group", k=3))
                    == before_quantify
                )
                assert (
                    _norm(cold_client.trends("google", **_TREND_CELL))
                    == before_trends
                )

            # The observability contract: resize counters and the state
            # machine are exposed.
            metrics = client.metrics_text()
            assert "fbox_resizes_total 2" in metrics
            assert "fbox_datasets_migrated_total" in metrics
            assert "fbox_resize_duration_seconds_count 2" in metrics
            listing = client.datasets()
            assert listing["resize"]["state"] == "idle"
            assert listing["resize"]["last"]["to"] == 2
            assert all(
                entry["migrating"] is False for entry in listing["datasets"]
            )
            status, ready = client.readyz()
            assert ready["resize"]["state"] == "idle"


# ----------------------------------------------------------------------
# Resize under concurrent traffic: clients see zero failures
# ----------------------------------------------------------------------


class TestResizeUnderTraffic:
    def test_open_loop_queries_and_ingests_survive_a_resize(
        self,
        run_server,
        small_marketplace_dataset,
        small_search_dataset,
    ):
        batches = _search_batches(small_search_dataset)
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        server = run_server(registry, shards=2, cache_size=0)
        volatile = ("cached", "generation")
        with _client(server) as warm:
            _apply(warm, batches)
            expected = _norm(warm.quantify("google", "group", k=3), volatile)

        failures: list[BaseException] = []
        answers: list[str] = []
        stop = threading.Event()

        def reader(dataset: str) -> None:
            with _client(server) as client:
                while not stop.is_set():
                    try:
                        document = client.quantify(dataset, "group", k=3)
                        if dataset == "google":
                            answers.append(_norm(document, volatile))
                    except BaseException as error:  # noqa: BLE001
                        failures.append(error)
                        return

        def writer() -> None:
            with _client(server) as client:
                position = 0
                while not stop.is_set():
                    try:
                        # Re-apply the *last* batch: latest-wins makes it a
                        # no-op by value, so readers see one stable answer
                        # while the write path stays under real load.
                        client.ingest(
                            "google", batches[-1], batch_id=f"traffic-{position}"
                        )
                        position += 1
                    except BaseException as error:  # noqa: BLE001
                        failures.append(error)
                        return

        threads = [
            threading.Thread(target=reader, args=("google",)),
            threading.Thread(target=reader, args=("taskrabbit",)),
            threading.Thread(target=writer),
        ]
        for thread in threads:
            thread.start()
        try:
            with _client(server) as admin:
                grown = admin.resize(4)
                shrunk = admin.resize(2)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not failures, failures
        assert grown["to"] == 4 and shrunk["to"] == 2
        assert answers, "the reader never completed a query"
        # Every answer mid-resize was a real answer over the same state
        # (the writer re-applies batch 0's observations, which are
        # idempotent by value, so the cube never changes).
        assert set(answers) == {expected}


# ----------------------------------------------------------------------
# Chaos: worker kills mid-migration, and resize racing a quarantine
# ----------------------------------------------------------------------


def _cold_answer(run_server, registry_factory, batches, shards, core) -> str:
    cold = run_server(registry_factory(), shards=shards, core=core)
    with _client(cold) as client:
        _apply(client, batches)
        return _norm(
            client.quantify("google", "group", k=3),
            volatile=("cached", "generation"),
        )


@pytest.mark.parametrize("core", ["dict", "columnar"])
class TestResizeChaos:
    """Both kill arcs must converge to the cold-boot state at the final
    count.  ``generation`` is normalized out: a kill destroys the victim's
    in-memory write-path state, so re-applied batches legitimately advance
    the counter past a cold boot's (the cube *values* still converge)."""

    def test_source_killed_mid_export_converges(
        self,
        core,
        run_server,
        monkeypatch,
        small_marketplace_dataset,
        small_search_dataset,
    ):
        monkeypatch.setenv(
            FAULTS_ENV_VAR,
            json.dumps(
                {
                    "rules": [
                        {
                            "site": "worker_exit",
                            "match": "/admin/export:google",
                            "times": 1,
                        }
                    ]
                }
            ),
        )
        batches = _search_batches(small_search_dataset)
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        server = run_server(registry, shards=2, core=core, cache_size=0)
        with _client(server) as client:
            _apply(client, batches)
            outcome = client.resize(4)
            assert outcome["to"] == 4
            assert "google" in outcome["migrated"]
            # The kill wiped the source's journal; re-ingesting the same
            # batches restores the lost observations (idempotent by value).
            _apply(client, batches)
            answer = _norm(
                client.quantify("google", "group", k=3),
                volatile=("cached", "generation"),
            )
        monkeypatch.delenv(FAULTS_ENV_VAR)
        factory = lambda: _registry(  # noqa: E731
            small_marketplace_dataset, small_search_dataset
        )
        assert answer == _cold_answer(run_server, factory, batches, 4, core)

    def test_destination_killed_mid_import_converges(
        self,
        core,
        run_server,
        monkeypatch,
        small_marketplace_dataset,
        small_search_dataset,
    ):
        monkeypatch.setenv(
            FAULTS_ENV_VAR,
            json.dumps(
                {
                    "rules": [
                        {
                            "site": "worker_exit",
                            "match": "/admin/import:google",
                            "times": 1,
                        }
                    ]
                }
            ),
        )
        batches = _search_batches(small_search_dataset)
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        server = run_server(registry, shards=2, core=core, cache_size=0)
        with _client(server) as client:
            _apply(client, batches)
            outcome = client.resize(4)
            assert outcome["to"] == 4
            # The source survived, so the retried copy carried the full
            # state across — including the idempotency ledger.
            assert (
                client.ingest("google", batches[0], batch_id="rz-0")["replayed"]
                is True
            )
            answer = _norm(
                client.quantify("google", "group", k=3),
                volatile=("cached", "generation"),
            )
            metrics = client.metrics_text()
            assert "fbox_shard_restarts_total" in metrics
        monkeypatch.delenv(FAULTS_ENV_VAR)
        factory = lambda: _registry(  # noqa: E731
            small_marketplace_dataset, small_search_dataset
        )
        assert answer == _cold_answer(run_server, factory, batches, 4, core)

    def test_resize_while_shard_quarantined_converges(
        self,
        core,
        run_server,
        monkeypatch,
        small_marketplace_dataset,
        small_search_dataset,
    ):
        # Kill the google owner with a /compare aimed at it, then resize
        # immediately — the migration loop waits out the monitor's revival.
        monkeypatch.setenv(
            FAULTS_ENV_VAR,
            json.dumps(
                {"rules": [{"site": "worker_exit", "match": "/compare", "times": 1}]}
            ),
        )
        batches = _search_batches(small_search_dataset)
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        server = run_server(registry, shards=2, core=core, cache_size=0)
        with _client(server) as client:
            _apply(client, batches)
            with pytest.raises(ClientError):
                # The kill shot: the owning worker dies mid-request.  No
                # retries, so the resize below races the quarantine window.
                FBoxClient(
                    server.url, retry=RetryPolicy(max_attempts=1)
                ).compare("google", "group", "gender=male", "gender=female", "query")
            outcome = client.resize(4)
            assert outcome["to"] == 4
            _apply(client, batches)
            answer = _norm(
                client.quantify("google", "group", k=3),
                volatile=("cached", "generation"),
            )
        monkeypatch.delenv(FAULTS_ENV_VAR)
        factory = lambda: _registry(  # noqa: E731
            small_marketplace_dataset, small_search_dataset
        )
        assert answer == _cold_answer(run_server, factory, batches, 4, core)


# ----------------------------------------------------------------------
# Satellite fixes: restart backoff, idempotent client replay
# ----------------------------------------------------------------------


class TestRestartBackoff:
    def test_consecutive_crashes_back_off_exponentially(
        self,
        run_server,
        small_marketplace_dataset,
        small_search_dataset,
    ):
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        server = run_server(registry, shards=1)
        router = server.context.router
        shard = router._shards[0]
        delays = []
        for _ in range(3):
            # Each revive looks like a crash shortly after spawn, so the
            # consecutive-crash streak grows and the delay doubles.
            shard.spawned_at = time.monotonic()
            before = time.monotonic()
            router._revive(shard, "scripted crash")
            delays.append(shard.next_restart_at - before)
        assert delays[0] < delays[1] < delays[2]
        assert all(delay <= 5.0 * 1.2 for delay in delays)
        assert server.context.metrics.shard_restarts.get(0, 0) >= 3
        with _client(server) as client:
            assert 'fbox_shard_restarts_total{shard="0"}' in client.metrics_text()

    def test_stable_uptime_resets_the_streak(
        self,
        run_server,
        small_marketplace_dataset,
        small_search_dataset,
    ):
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        server = run_server(registry, shards=1)
        router = server.context.router
        shard = router._shards[0]
        shard.spawned_at = time.monotonic()
        router._revive(shard, "scripted crash")
        router._revive(shard, "scripted crash")  # spawned_at is fresh: streak 2
        assert shard.consecutive_crashes >= 2
        shard.spawned_at = time.monotonic() - 60.0  # survived a long time
        router._revive(shard, "scripted crash")
        assert shard.consecutive_crashes == 1


class TestClientIdempotentReplay:
    def _scripted_client(self, fail_times: int) -> FBoxClient:
        client = FBoxClient(
            "http://127.0.0.1:9", retry=RetryPolicy(max_attempts=1, seed=1)
        )
        calls = {"n": 0}

        def scripted_exchange(method, path, data, headers):
            calls["n"] += 1
            if calls["n"] <= fail_times:
                raise ConnectionResetError("reset mid-body")
            return 200, None, json.dumps({"ok": True, "calls": calls["n"]}).encode()

        client._exchange = scripted_exchange
        client.calls = calls
        return client

    def test_idempotent_post_replays_once_after_reset(self):
        client = self._scripted_client(fail_times=1)
        body = client.post("/v1/observations", {"batch_id": "b"}, idempotent=True)
        assert body == {"ok": True, "calls": 2}
        # The replay was invisible to the retry policy: no sleeps, one attempt.
        assert client.sleeps == []
        assert client.attempts == 1

    def test_non_idempotent_post_surfaces_the_reset(self):
        client = self._scripted_client(fail_times=1)
        with pytest.raises(ClientError):
            client.post("/v1/quantify", {"dataset": "google"})

    def test_replay_is_single_shot(self):
        # Two consecutive resets exhaust the replay; the error surfaces.
        client = self._scripted_client(fail_times=2)
        with pytest.raises(ClientError):
            client.post("/v1/observations", {"batch_id": "b"}, idempotent=True)

    def test_ingest_marks_itself_idempotent(self):
        client = FBoxClient("http://127.0.0.1:9")
        seen = {}

        def recording_request(method, path, payload=None, **kwargs):
            seen.update(kwargs, path=path)
            return 200, {"ok": True}

        client.request = recording_request
        client.ingest("google", [{"query": "q"}])
        assert seen["idempotent"] is True

    def test_resize_sends_the_admin_token(self):
        client = FBoxClient("http://127.0.0.1:9")
        seen = {}

        def recording_request(method, path, payload=None, **kwargs):
            seen.update(kwargs, path=path, payload=payload)
            return 200, {"ok": True}

        client.request = recording_request
        client.resize(4, token="s3cret")
        assert seen["path"] == "/v1/admin/shards"
        assert seen["payload"] == {"count": 4}
        assert seen["headers"] == {"X-Admin-Token": "s3cret"}
        assert seen["idempotent"] is True
