"""The Google-side substrate: corpus, personas, engine, extension, study."""

from __future__ import annotations

import pytest

from repro.data.schema import SearchUser
from repro.exceptions import DataError
from repro.searchengine.engine import (
    CARRY_OVER_WINDOW_MINUTES,
    ExecutionContext,
    GoogleJobsEngine,
    NoiseConfig,
)
from repro.searchengine.extension import ChromeExtension, ExtensionConfig
from repro.searchengine.jobs import (
    BASE_RESULTS,
    GOOGLE_LOCATIONS,
    GOOGLE_QUERIES,
    base_ranking,
    posting_pool,
)
from repro.searchengine.keyword_planner import (
    TERMS_PER_QUERY,
    canonical_query_of,
    term_variants,
)
from repro.searchengine.personas import recruit, recruit_all
from repro.searchengine.study import StudyDesign, full_design, paper_design, run_study

QUIET = NoiseConfig(
    carry_over=False, ab_testing=False, geolocation=False, infrastructure=False
)

WHITE_FEMALE = SearchUser("u-wf", {"gender": "Female", "ethnicity": "White"})
BLACK_MALE = SearchUser("u-bm", {"gender": "Male", "ethnicity": "Black"})


class TestCorpus:
    def test_pool_and_base_ranking_sizes(self):
        pool = posting_pool("yard work", "Boston, MA")
        assert len(pool) == 32
        assert base_ranking("yard work", "Boston, MA") == pool[:BASE_RESULTS]

    def test_pools_differ_by_query_and_location(self):
        assert posting_pool("yard work", "Boston, MA") != posting_pool(
            "yard work", "Bristol, UK"
        )

    def test_unknown_query_rejected(self):
        with pytest.raises(DataError):
            posting_pool("unicorn grooming", "Boston, MA")

    def test_unknown_location_rejected(self):
        with pytest.raises(DataError):
            posting_pool("yard work", "Springfield")


class TestKeywordPlanner:
    def test_five_variants_per_query(self):
        for query in GOOGLE_QUERIES:
            variants = term_variants(query)
            assert len(variants) == TERMS_PER_QUERY
            assert len(set(variants)) == TERMS_PER_QUERY

    def test_tables_20_21_terms_exist(self):
        variants = term_variants("general cleaning")
        assert "office cleaning jobs" in variants
        assert "private cleaning jobs" in variants

    def test_canonical_mapping_round_trips(self):
        for query in GOOGLE_QUERIES:
            for term in term_variants(query):
                assert canonical_query_of(term) == query

    def test_unknown_term_rejected(self):
        with pytest.raises(DataError):
            canonical_query_of("quantum jobs")


class TestPersonas:
    def test_recruit_counts_and_ids(self):
        participants = recruit("Female", "Black", "Boston, MA")
        assert len(participants) == 3
        assert len({p.user_id for p in participants}) == 3
        for participant in participants:
            assert participant.user.attributes == {
                "gender": "Female",
                "ethnicity": "Black",
            }

    def test_recruit_all_covers_every_study(self):
        participants = recruit_all(["Boston, MA", "Bristol, UK"])
        assert len(participants) == 2 * 6 * 3

    def test_invalid_group_rejected(self):
        with pytest.raises(DataError):
            recruit("Robot", "Black", "Boston, MA")

    def test_invalid_location_rejected(self):
        with pytest.raises(DataError):
            recruit("Male", "Black", "Springfield")


class TestEngine:
    def test_search_is_deterministic(self):
        engine = GoogleJobsEngine(seed=5, noise=QUIET)
        a = engine.search(WHITE_FEMALE, "yard work jobs", "London, UK")
        b = engine.search(WHITE_FEMALE, "yard work jobs", "London, UK")
        assert a.items == b.items

    def test_results_have_page_size(self):
        engine = GoogleJobsEngine(seed=5, noise=QUIET)
        page = engine.search(WHITE_FEMALE, "yard work jobs", "London, UK")
        assert len(page) == BASE_RESULTS

    def test_divergence_orders_groups(self):
        engine = GoogleJobsEngine(seed=5)
        wf = engine.divergence(WHITE_FEMALE, "yard work jobs", "London, UK")
        bm = engine.divergence(BLACK_MALE, "yard work jobs", "London, UK")
        assert wf > bm

    def test_divergence_orders_locations(self):
        engine = GoogleJobsEngine(seed=5)
        london = engine.divergence(WHITE_FEMALE, "yard work jobs", "London, UK")
        dc = engine.divergence(WHITE_FEMALE, "yard work jobs", "Washington, DC")
        assert london > dc == 0.0

    def test_flip_city_swaps_genders(self):
        engine = GoogleJobsEngine(seed=5)
        wf = engine.divergence(WHITE_FEMALE, "yard work jobs", "Bristol, UK")
        wm = engine.divergence(
            SearchUser("u-wm", {"gender": "Male", "ethnicity": "White"}),
            "yard work jobs",
            "Bristol, UK",
        )
        assert wm > wf

    def test_personalization_scale_zero_returns_base_ranking(self):
        engine = GoogleJobsEngine(seed=5, noise=QUIET, personalization_scale=0.0)
        page = engine.search(WHITE_FEMALE, "yard work jobs", "London, UK")
        assert list(page.items) == base_ranking("yard work", "London, UK")

    def test_higher_divergence_moves_further_from_base(self):
        engine = GoogleJobsEngine(seed=5, noise=QUIET)
        base = set(base_ranking("yard work", "London, UK"))
        wf_page = set(engine.search(WHITE_FEMALE, "yard work jobs", "London, UK").items)
        bm_page = set(engine.search(BLACK_MALE, "yard work jobs", "London, UK").items)
        assert len(base - wf_page) >= len(base - bm_page)

    def test_geolocation_noise_only_without_proxy_match(self):
        noise = NoiseConfig(carry_over=False, ab_testing=False, infrastructure=False)
        engine = GoogleJobsEngine(seed=5, noise=noise)
        pinned = engine.search(
            BLACK_MALE, "yard work jobs", "Washington, DC",
            ExecutionContext(origin="Washington, DC"),
        )
        roaming = engine.search(
            BLACK_MALE, "yard work jobs", "Washington, DC",
            ExecutionContext(origin="London, UK"),
        )
        assert pinned.items != roaming.items

    def test_carry_over_contaminates_recent_searches_only(self):
        noise = NoiseConfig(ab_testing=False, geolocation=False, infrastructure=False)
        engine = GoogleJobsEngine(seed=5, noise=noise)
        recent = ExecutionContext(
            minute=5.0, history=((0.0, "run errand jobs"),)
        )
        old = ExecutionContext(
            minute=CARRY_OVER_WINDOW_MINUTES + 5.0,
            history=((0.0, "run errand jobs"),),
        )
        contaminated = engine.search(BLACK_MALE, "yard work jobs", "Washington, DC", recent)
        clean = engine.search(BLACK_MALE, "yard work jobs", "Washington, DC", old)
        assert any(item.startswith("job-run-errand") for item in contaminated)
        assert not any(item.startswith("job-run-errand") for item in clean)

    def test_results_never_contain_duplicates(self):
        engine = GoogleJobsEngine(seed=5)
        for execution in range(4):
            context = ExecutionContext(
                minute=execution * 2.0,
                origin="London, UK",
                execution=execution,
                history=((0.0, "general cleaning jobs"),),
            )
            page = engine.search(WHITE_FEMALE, "yard work jobs", "London, UK", context)
            assert len(set(page.items)) == len(page.items)


class TestExtension:
    def test_repeats_recover_stable_result_under_ab_noise(self):
        noise = NoiseConfig(
            carry_over=False, geolocation=False, infrastructure=False,
            ab_probability=0.5,
        )
        engine = GoogleJobsEngine(seed=5, noise=noise)
        extension = ChromeExtension(engine, ExtensionConfig(repeats=2, max_repeats=6))
        page, _, runs = extension.run_term(WHITE_FEMALE, "yard work jobs", "London, UK")
        assert runs >= 2
        assert len(page) > 0

    def test_single_run_config(self):
        engine = GoogleJobsEngine(seed=5, noise=QUIET)
        extension = ChromeExtension(engine, ExtensionConfig(repeats=1))
        _, __, runs = extension.run_term(WHITE_FEMALE, "yard work jobs", "London, UK")
        assert runs == 1

    def test_run_terms_covers_all_terms(self):
        engine = GoogleJobsEngine(seed=5)
        extension = ChromeExtension(engine)
        results = extension.run_terms(
            WHITE_FEMALE, term_variants("yard work"), "London, UK"
        )
        assert set(results) == set(term_variants("yard work"))

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            ExtensionConfig(repeats=0)
        with pytest.raises(ValueError):
            ExtensionConfig(repeats=3, max_repeats=2)


class TestStudy:
    def test_paper_design_matches_table7(self):
        design = paper_design()
        assert design.locations_per_query() == {
            "yard work": 4,
            "general cleaning": 3,
            "event staffing": 1,
            "moving job": 1,
            "run errand": 1,
        }
        assert len(design.locations) == 10

    def test_full_design_is_dense(self):
        design = full_design()
        assert len(design.pairs) == len(GOOGLE_QUERIES) * len(GOOGLE_LOCATIONS)

    def test_invalid_design_rejected(self):
        with pytest.raises(DataError):
            StudyDesign(pairs=(("yard work", "Springfield"),))

    def test_run_study_structure(self, small_search_dataset):
        # Built in conftest from a 2×2 design: 10 terms × 2 locations.
        assert len(small_search_dataset) == 20
        assert len(small_search_dataset.users) == 2 * 6 * 3

    def test_run_study_counts(self):
        engine = GoogleJobsEngine(seed=13)
        design = StudyDesign(pairs=(("run errand", "London, UK"),))
        report = run_study(engine, design)
        assert report.studies == 6
        assert report.participants == 18
        assert report.searches_executed == 18 * 5
