"""The declarative scenario framework and the load-generation harness.

Covers the acceptance contract end to end: preset determinism (one frozen
config → byte-identical datasets no matter which surface builds it),
override plumbing and validation, lazy materialization through the service
(both transports × both execution backends), the admin-gated runtime
``POST /v1/datasets`` registration, paginated listings, and the seeded
loadgen planner/report schema.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.client import ClientError, FBoxClient, RetryPolicy
from repro.data.io import load_marketplace_dataset, save_marketplace_dataset
from repro.scenarios import (
    PAGE_SLOTS,
    PRESETS,
    ScaledMarketplaceSite,
    arrival_schedule,
    build_scenario,
    build_scenario_site,
    decode_overrides,
    encode_overrides,
    get_scenario,
    latency_keys,
    plan_operations,
    report_keys,
    run_loadgen,
    scenario_names,
    scenario_spec,
)
from repro.service.errors import NotFound, Unprocessable

ADMIN_TOKEN = "test-admin-token"

SCALED_OVERRIDES = {
    "workers": 4_000,
    "cities": "Boston, MA;Chicago, IL",
    "queries": "Handyman;Delivery",
    "seed": 5,
}


def _scaled_config():
    return get_scenario("mega_marketplace").with_overrides(SCALED_OVERRIDES)


# ----------------------------------------------------------------------
# Config + presets
# ----------------------------------------------------------------------


class TestScenarioConfig:
    def test_preset_catalog(self):
        assert list(scenario_names()) == sorted(PRESETS)
        for expected in (
            "paper_taskrabbit",
            "paper_google",
            "mega_marketplace",
            "adversarial_bias",
            "null_no_bias",
        ):
            assert expected in PRESETS
        assert PRESETS["mega_marketplace"].population == 1_000_000

    def test_unknown_scenario_is_not_found(self):
        with pytest.raises(NotFound):
            get_scenario("nope")

    def test_overrides_produce_a_new_frozen_config(self):
        base = get_scenario("paper_taskrabbit")
        derived = base.with_overrides({"seed": 99, "bias_scale": 2.0})
        assert derived.seed == 99 and derived.bias_scale == 2.0
        assert base.seed != 99  # frozen: the preset itself never mutates
        import dataclasses

        with pytest.raises(dataclasses.FrozenInstanceError):
            derived.seed = 1

    @pytest.mark.parametrize(
        "overrides",
        [
            {"name": "hijack"},  # protected
            {"site": "google"},  # protected
            {"no_such_field": 1},  # unknown
            {"cities": "Atlantis, XX"},  # outside the catalog
            {"queries": "Cleaning"},  # not a real category name
            {"bias_scale": -1},  # out of range
            {"demographic_mix": "Male:White:-3"},  # negative weight
        ],
    )
    def test_bad_overrides_are_unprocessable(self, overrides):
        with pytest.raises(Unprocessable):
            get_scenario("paper_taskrabbit").with_overrides(overrides)

    def test_override_encoding_round_trips(self):
        overrides = {"seed": 9, "cities": "Boston, MA;Chicago, IL"}
        encoded = encode_overrides(overrides)
        assert all(
            isinstance(k, str) and isinstance(v, str) for k, v in encoded
        )
        assert decode_overrides(encoded) == overrides
        # Canonical: dict order does not leak into the encoding.
        reordered = {"cities": "Boston, MA;Chicago, IL", "seed": 9}
        assert encode_overrides(reordered) == encoded

    def test_demographic_mix_parses_from_string(self):
        config = get_scenario("mega_marketplace").with_overrides(
            {"demographic_mix": "Male:White:3;Female:White:1"}
        )
        assert config.demographic_mix == (
            ("Male", "White", 3.0),
            ("Female", "White", 1.0),
        )
        assert config.is_scaled


# ----------------------------------------------------------------------
# Scaled site: bounded, lazy, deterministic
# ----------------------------------------------------------------------


class TestScaledSite:
    def test_population_apportionment_is_exact(self):
        config = _scaled_config()
        site = ScaledMarketplaceSite(config)
        assert sum(site.cell_counts.values()) == config.population == 4_000

    def test_materialization_is_lazy_and_bounded(self):
        from repro.marketplace.site import RESULT_CAP

        site = ScaledMarketplaceSite(_scaled_config())
        ranking = site.search("Handyman", "Boston, MA")
        assert len(ranking) == min(RESULT_CAP, PAGE_SLOTS)
        # One query samples one availability page, never the full roster.
        assert len(site.materialized_ids()) <= PAGE_SLOTS

    def test_search_is_deterministic_across_instances(self):
        config = _scaled_config()
        first = ScaledMarketplaceSite(config).search("Delivery", "Chicago, IL")
        second = ScaledMarketplaceSite(config).search("Delivery", "Chicago, IL")
        assert first.items == second.items

    def test_mega_preset_is_scaled(self):
        assert PRESETS["mega_marketplace"].is_scaled
        assert not PRESETS["paper_taskrabbit"].is_scaled

    def test_scenario_site_matches_dataset(self):
        """The simulate surface and the generate surface agree."""
        config = _scaled_config()
        dataset = build_scenario(config)
        site = build_scenario_site(config)
        observed = dataset.observation("Handyman", "Boston, MA").ranking
        assert observed.items == site.search("Handyman", "Boston, MA").items


# ----------------------------------------------------------------------
# Byte identity across build surfaces
# ----------------------------------------------------------------------


class TestByteIdentity:
    def test_cli_and_registry_builds_are_byte_identical(self, tmp_path):
        from repro.cli import main

        cli_path = tmp_path / "cli.jsonl"
        rc = main(
            [
                "generate",
                "--scenario",
                "mega_marketplace",
                "--override",
                "workers=4000",
                "--override",
                "cities=Boston, MA;Chicago, IL",
                "--override",
                "queries=Handyman;Delivery",
                "--override",
                "seed=5",
                str(cli_path),
            ]
        )
        assert rc == 0
        spec = scenario_spec("m", "mega_marketplace", SCALED_OVERRIDES)
        registry_path = tmp_path / "registry.jsonl"
        save_marketplace_dataset(spec.loader(), registry_path)
        assert cli_path.read_bytes() == registry_path.read_bytes()

    def test_saved_scenario_round_trips(self, tmp_path):
        dataset = build_scenario(_scaled_config())
        path = tmp_path / "scenario.jsonl"
        save_marketplace_dataset(dataset, path)
        reloaded = load_marketplace_dataset(path)
        assert len(reloaded) == len(dataset)
        assert reloaded.queries == dataset.queries

    def test_quantify_identical_across_cores(self):
        """The same scenario served by dict and columnar cores answers
        byte-identical quantification documents."""
        from repro.service.server import make_server

        documents = []
        for core in ("dict", "columnar"):
            server = make_server(
                port=0, quiet=True, core=core, admin_token=ADMIN_TOKEN
            )
            thread = threading.Thread(
                target=server.serve_forever, daemon=True
            )
            thread.start()
            try:
                with FBoxClient(
                    server.url, retry=RetryPolicy(max_attempts=1, seed=0)
                ) as client:
                    client.register_scenario(
                        "nb", "null_no_bias", token=ADMIN_TOKEN
                    )
                    documents.append(
                        json.dumps(
                            client.quantify("nb", "group", k=3),
                            sort_keys=True,
                        )
                    )
            finally:
                server.shutdown()
                thread.join(timeout=5)
                server.server_close()
        assert documents[0] == documents[1]


# ----------------------------------------------------------------------
# Service surface: GET /v1/scenarios, POST /v1/datasets, pagination
# ----------------------------------------------------------------------


@pytest.fixture
def service(start_service):
    return start_service(admin_token=ADMIN_TOKEN)


@pytest.fixture
def client(service):
    with FBoxClient(
        service.url, retry=RetryPolicy(max_attempts=1, seed=0)
    ) as client:
        yield client


class TestScenarioEndpoints:
    def test_scenarios_listing(self, client):
        document = client.scenarios()
        names = [entry["name"] for entry in document["scenarios"]]
        assert names == list(scenario_names())
        assert document["count"] == len(names)
        assert document["next_offset"] is None
        by_name = {entry["name"]: entry for entry in document["scenarios"]}
        assert by_name["mega_marketplace"]["population"] == 1_000_000
        assert by_name["null_no_bias"]["bias_scale"] == 0.0

    def test_scenarios_pagination_walks_the_catalog(self, client):
        collected = []
        offset = 0
        while offset is not None:
            _, page = client.get(
                f"/v1/scenarios?limit=2&offset={offset}"
            )
            assert page["limit"] == 2
            collected.extend(e["name"] for e in page["scenarios"])
            offset = page["next_offset"]
        assert collected == list(scenario_names())

    def test_bad_page_params_are_rejected(self, client):
        with pytest.raises(ClientError) as excinfo:
            client.get("/v1/scenarios?limit=zero")
        assert excinfo.value.status == 400
        with pytest.raises(ClientError) as excinfo:
            client.get("/v1/datasets?offset=-1")
        assert excinfo.value.status == 400

    def test_datasets_listing_is_paginated(self, client):
        document = client.datasets()
        assert {"count", "offset", "limit", "next_offset"} <= set(document)
        _, page = client.get("/v1/datasets?limit=1")
        assert len(page["datasets"]) == 1
        assert page["next_offset"] == 1


class TestRuntimeRegistration:
    def test_registration_requires_the_admin_token(self, client):
        with pytest.raises(ClientError) as excinfo:
            client.register_scenario("nb", "null_no_bias")
        assert excinfo.value.status == 403
        with pytest.raises(ClientError) as excinfo:
            client.register_scenario("nb", "null_no_bias", token="wrong")
        assert excinfo.value.status == 403

    def test_register_then_lazily_materialize(self, client):
        document = client.register_scenario(
            "nb", "null_no_bias", overrides={"seed": 9}, token=ADMIN_TOKEN
        )
        assert document["dataset"] == "nb"
        assert document["scenario"] == "null_no_bias"
        assert document["overrides"] == {"seed": 9}
        assert document["site"] == "taskrabbit"

        listing = {
            e["name"]: e for e in client.datasets()["datasets"]
        }
        assert listing["nb"]["loaded"] is False  # registered, not built
        assert listing["nb"]["scenario"] == "null_no_bias"
        assert listing["nb"]["overrides"] == {"seed": 9}

        answer = client.quantify("nb", "group", k=3)
        assert answer["kind"] == "quantification"

        listing = {
            e["name"]: e for e in client.datasets()["datasets"]
        }
        assert listing["nb"]["loaded"] is True

    def test_name_collision_is_a_conflict(self, client):
        client.register_scenario("nb", "null_no_bias", token=ADMIN_TOKEN)
        with pytest.raises(ClientError) as excinfo:
            client.register_scenario("nb", "null_no_bias", token=ADMIN_TOKEN)
        assert excinfo.value.status == 409
        assert excinfo.value.body["error"]["code"] == "dataset_exists"

    def test_builtin_names_collide_too(self, client):
        with pytest.raises(ClientError) as excinfo:
            client.register_scenario(
                "taskrabbit", "null_no_bias", token=ADMIN_TOKEN
            )
        assert excinfo.value.status == 409

    def test_unknown_scenario_and_bad_overrides(self, client):
        with pytest.raises(ClientError) as excinfo:
            client.register_scenario("x", "no_such_preset", token=ADMIN_TOKEN)
        assert excinfo.value.status == 404
        with pytest.raises(ClientError) as excinfo:
            client.register_scenario(
                "x", "null_no_bias", overrides={"name": "y"}, token=ADMIN_TOKEN
            )
        assert excinfo.value.status == 422
        with pytest.raises(ClientError) as excinfo:
            client.register_scenario(
                "x", "null_no_bias", overrides={"seed": "NaN-ish"},
                token=ADMIN_TOKEN,
            )
        assert excinfo.value.status == 422

    def test_validation_of_the_envelope(self, client):
        for payload in ({}, {"name": "x"}, {"scenario": "null_no_bias"},
                        {"name": "x", "scenario": "null_no_bias",
                         "overrides": [1, 2]}):
            with pytest.raises(ClientError) as excinfo:
                client.post(
                    "/v1/datasets", payload,
                    headers={"X-Admin-Token": ADMIN_TOKEN},
                )
            assert excinfo.value.status == 400


# ----------------------------------------------------------------------
# Loadgen: seeded planning, report schema, a live quick run
# ----------------------------------------------------------------------


class TestLoadgenPlanning:
    def test_operation_plan_is_deterministic(self):
        first = plan_operations({"quantify": 3, "compare": 1}, 50, seed=4)
        second = plan_operations({"quantify": 3, "compare": 1}, 50, seed=4)
        assert first == second
        assert len(first) == 50
        assert set(first) <= {"quantify", "compare"}
        assert plan_operations({"quantify": 3, "compare": 1}, 50, seed=5) != first

    def test_unknown_ops_are_rejected(self):
        with pytest.raises(Unprocessable):
            plan_operations({"frobnicate": 1}, 10, seed=0)
        with pytest.raises(Unprocessable):
            plan_operations({"quantify": 0}, 10, seed=0)
        # An absent mix means "the default", not an error.
        assert len(plan_operations(None, 10, seed=0)) == 10

    def test_arrival_schedule_is_deterministic_and_monotone(self):
        first = arrival_schedule(100.0, 40, seed=2)
        second = arrival_schedule(100.0, 40, seed=2)
        assert first == second
        assert len(first) == 40
        assert all(b >= a for a, b in zip(first, first[1:]))
        assert first[0] >= 0.0


class TestLoadgenLiveRun:
    @pytest.fixture(scope="class")
    def loadgen_server(self):
        from repro.service.server import make_server

        server = make_server(port=0, quiet=True, admin_token=ADMIN_TOKEN)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        with FBoxClient(server.url) as client:
            client.register_scenario("nb", "null_no_bias", token=ADMIN_TOKEN)
        yield server
        server.shutdown()
        thread.join(timeout=5)
        server.server_close()

    def test_report_schema_and_zero_hard_failures(self, loadgen_server):
        config = get_scenario("null_no_bias")
        report = run_loadgen(
            loadgen_server.url,
            "nb",
            config,
            requests=24,
            workers=2,
            warmup=4,
            seed=3,
        )
        assert set(report) == report_keys()
        assert set(report["latency_ms"]) == latency_keys()
        assert report["errors"]["hard"] == 0
        assert report["throughput_rps"] > 0
        assert report["measured"] == 20
        for stats in report["mix"].values():
            assert {"requests", "hard", "shed", "p50_ms"} <= set(stats)
        json.dumps(report)  # the report must be a plain JSON document

    def test_open_loop_measures_from_scheduled_arrival(self, loadgen_server):
        config = get_scenario("null_no_bias")
        report = run_loadgen(
            loadgen_server.url,
            "nb",
            config,
            mode="open",
            requests=16,
            workers=4,
            rate=400.0,
            seed=3,
        )
        assert report["mode"] == "open"
        assert report["rate"] == 400.0
        assert report["errors"]["hard"] == 0
