"""The marketplace substrate: catalog, workers, scoring, site, crawl."""

from __future__ import annotations

import pytest

from repro.calibration import PROFILE_PENALTY
from repro.data.schema import WorkerProfile
from repro.exceptions import DataError
from repro.marketplace.catalog import (
    ALL_JOBS,
    CATEGORIES,
    CITIES,
    JOBS_BY_CATEGORY,
    UNAVAILABLE_PAIRS,
    category_of,
    crawl_queries,
    jobs_available_in,
)
from repro.marketplace.crawl import run_crawl
from repro.marketplace.scoring import (
    ETHNICITY_PENALTY,
    GENDER_PENALTY,
    ScoringModel,
)
from repro.marketplace.site import AVAILABILITY_QUOTA, TaskRabbitSite
from repro.marketplace.workers import (
    CITY_COMPOSITION,
    TOTAL_WORKERS,
    demographic_breakdown,
    generate_city_workers,
    generate_population,
)


class TestCatalog:
    def test_fifty_six_cities(self):
        assert len(CITIES) == 56
        assert len(set(CITIES)) == 56

    def test_eight_categories_of_twelve_jobs(self):
        assert len(CATEGORIES) == 8
        assert all(len(JOBS_BY_CATEGORY[c]) == 12 for c in CATEGORIES)
        assert len(ALL_JOBS) == 96

    def test_crawl_yields_papers_5361_queries(self):
        assert len(crawl_queries()) == 5361

    def test_unavailable_pairs_reference_real_jobs_and_cities(self):
        for job, city in UNAVAILABLE_PAIRS:
            assert job in ALL_JOBS
            assert city in CITIES

    def test_category_of(self):
        assert category_of("Lawn Mowing") == "Yard Work"
        assert category_of("Handyman") == "Handyman"
        with pytest.raises(DataError):
            category_of("Quantum Repair")

    def test_jobs_available_in_respects_gaps(self):
        assert "Snow Removal" not in jobs_available_in("Miami, FL")
        assert "Snow Removal" in jobs_available_in("Chicago, IL")
        with pytest.raises(DataError):
            jobs_available_in("Atlantis")

    def test_comparison_subjects_exist(self):
        for job in ("Lawn Mowing", "Event Decorating", "Back To Organized",
                    "Organize & Declutter", "Organize Closet"):
            assert job in ALL_JOBS


class TestWorkers:
    def test_population_totals_papers_3311(self):
        population = generate_population(seed=3)
        assert sum(len(pool) for pool in population.values()) == TOTAL_WORKERS == 3311

    def test_city_composition_is_enforced(self):
        workers = generate_city_workers("Detroit, MI", seed=3)
        counts = {}
        for worker in workers:
            key = (worker.attributes["gender"], worker.attributes["ethnicity"])
            counts[key] = counts.get(key, 0) + 1
        assert counts == CITY_COMPOSITION

    def test_generation_is_deterministic(self):
        a = generate_city_workers("Boston, MA", seed=5)
        b = generate_city_workers("Boston, MA", seed=5)
        assert [(w.worker_id, w.features) for w in a] == [
            (w.worker_id, w.features) for w in b
        ]

    def test_different_seeds_differ(self):
        a = generate_city_workers("Boston, MA", seed=5)
        b = generate_city_workers("Boston, MA", seed=6)
        assert any(
            x.features["rating"] != y.features["rating"] for x, y in zip(a, b)
        )

    def test_breakdown_tracks_figures_7_and_8(self):
        breakdown = demographic_breakdown(generate_population(seed=3))
        # Paper: ≈72% male, ≈66% white (we include a small Unknown slice).
        assert breakdown["gender"]["Male"] == pytest.approx(0.72, abs=0.08)
        assert breakdown["ethnicity"]["White"] == pytest.approx(0.66, abs=0.08)

    def test_ratings_within_bounds(self):
        for worker in generate_city_workers("Chicago, IL", seed=3):
            assert 1.0 <= worker.features["rating"] <= 5.0


class TestScoring:
    @pytest.fixture(scope="class")
    def model(self):
        return ScoringModel(seed=3)

    def make_worker(self, gender, ethnicity):
        return WorkerProfile(
            "w-test",
            {"gender": gender, "ethnicity": ethnicity},
            {"rating": 4.5, "jobs_completed": 100.0},
        )

    def test_penalty_decomposition_matches_table8_extremes(self):
        af = GENDER_PENALTY["Female"] + ETHNICITY_PENALTY["Asian"]
        assert af == pytest.approx(PROFILE_PENALTY["Asian Female"], abs=0.01)
        assert GENDER_PENALTY["Male"] + ETHNICITY_PENALTY["White"] == 0.0

    def test_asian_females_penalized_most(self, model):
        af = model.penalty(self.make_worker("Female", "Asian"), "Handyman", "Birmingham, UK")
        wm = model.penalty(self.make_worker("Male", "White"), "Handyman", "Birmingham, UK")
        assert af > wm == 0.0

    def test_penalty_scales_with_location(self, model):
        worker = self.make_worker("Female", "Asian")
        unfair = model.penalty(worker, "Handyman", "Birmingham, UK")
        fair = model.penalty(worker, "Handyman", "Chicago, IL")
        assert unfair > fair

    def test_penalty_scales_with_job(self, model):
        worker = self.make_worker("Female", "Asian")
        handyman = model.penalty(worker, "Handyman", "Boston, MA")
        delivery = model.penalty(worker, "Delivery", "Boston, MA")
        assert handyman > delivery

    def test_gender_flip_cities_penalize_males(self, model):
        male = self.make_worker("Male", "White")
        assert model.gender_component("Male", "Nashville, TN") > 0.0
        assert model.gender_component("Female", "Nashville, TN") == 0.0
        assert model.penalty(male, "Handyman", "Nashville, TN") > 0.0

    def test_bias_scale_zero_is_neutral(self):
        neutral = ScoringModel(seed=3, bias_scale=0.0)
        worker = self.make_worker("Female", "Asian")
        assert neutral.penalty(worker, "Handyman", "Birmingham, UK") == 0.0
        assert neutral.exclusion(worker, "Handyman", "Birmingham, UK") == 0.0
        assert neutral.instability(worker, "Handyman", "Birmingham, UK") == 0.0

    def test_exclusion_probability_bounds(self, model):
        worker = self.make_worker("Female", "Asian")
        probability = model.exclusion_probability(worker, "Handyman", "Birmingham, UK")
        assert 0.0 < probability <= 0.85

    def test_boost_overrides_yield_promotions(self, model):
        white = self.make_worker("Male", "White")
        probability = model.exclusion_probability(
            white, "Event Decorating", "Boston, MA"
        )
        assert probability < 0.0  # Tables 13–14 White boost

    def test_scores_clipped_to_unit_interval(self, model):
        worker = self.make_worker("Female", "Asian")
        for city in ("Birmingham, UK", "Chicago, IL"):
            assert 0.0 <= model.score(worker, "Handyman", city) <= 1.0

    def test_deterministic(self):
        a = ScoringModel(seed=3)
        b = ScoringModel(seed=3)
        worker = self.make_worker("Female", "Black")
        assert a.raw_score(worker, "Delivery", "Boston, MA") == b.raw_score(
            worker, "Delivery", "Boston, MA"
        )


class TestSite:
    def test_search_returns_capped_quota_composition(self, site):
        from repro.marketplace.site import RESULT_CAP

        ranking = site.search("Handyman", "Chicago, IL")
        # 52 available workers truncated to the paper's 50-result page.
        assert len(ranking) == RESULT_CAP
        counts = {}
        by_id = {w.worker_id: w for w in site.workers_in("Chicago, IL")}
        for worker_id in ranking:
            worker = by_id[worker_id]
            key = (worker.attributes["gender"], worker.attributes["ethnicity"])
            counts[key] = counts.get(key, 0) + 1
        cut = sum(AVAILABILITY_QUOTA.values()) - RESULT_CAP
        for profile, quota in AVAILABILITY_QUOTA.items():
            assert quota - cut <= counts.get(profile, 0) <= quota

    def test_search_is_deterministic(self, site):
        a = site.search("Delivery", "Boston, MA")
        b = site.search("Delivery", "Boston, MA")
        assert a.items == b.items

    def test_different_jobs_rank_differently(self, site):
        a = site.search("Handyman", "Boston, MA")
        b = site.search("Delivery", "Boston, MA")
        assert a.items != b.items

    def test_scores_normalized_when_requested(self, site):
        ranking = site.search("Handyman", "Boston, MA", with_scores=True)
        values = [ranking.scores[item] for item in ranking]
        assert max(values) == pytest.approx(1.0)
        assert min(values) == pytest.approx(0.0)
        assert values == sorted(values, reverse=True)

    def test_no_scores_by_default(self, site):
        assert site.search("Handyman", "Boston, MA").scores is None

    def test_unknown_city_rejected(self, site):
        with pytest.raises(DataError):
            site.search("Handyman", "Gotham")

    def test_unknown_job_rejected(self, site):
        with pytest.raises(DataError):
            site.search("Dragon Taming", "Boston, MA")

    def test_limit_truncates(self, site):
        assert len(site.search("Handyman", "Boston, MA", limit=5)) == 5


class TestCrawl:
    def test_category_level_scope(self, site):
        report = run_crawl(site, level="category", cities=["Boston, MA"])
        assert report.queries_run == len(CATEGORIES)
        assert report.dataset.locations == ["Boston, MA"]

    def test_job_level_respects_unavailable_pairs(self, site):
        report = run_crawl(site, level="job", cities=["Miami, FL"])
        assert ("Snow Removal") not in report.dataset.queries
        assert report.queries_run == len(jobs_available_in("Miami, FL"))

    def test_invalid_level_rejected(self, site):
        with pytest.raises(DataError, match="level"):
            run_crawl(site, level="continental")

    def test_empty_scope_rejected(self, site):
        with pytest.raises(DataError, match="selects no"):
            run_crawl(site, level="job", jobs=[])

    def test_labeling_error_rate_flows_through(self, site):
        report = run_crawl(
            site, level="category", cities=["Boston, MA"], label_error_rate=0.3
        )
        assert report.labeling_accuracy < 1.0

    def test_perfect_labels_by_default(self, site):
        report = run_crawl(site, level="category", cities=["Boston, MA"])
        assert report.labeling_accuracy == 1.0
