"""The paper-derived calibration tables."""

from __future__ import annotations

import pytest

from repro import calibration as cal
from repro.marketplace.catalog import CATEGORIES, CITIES


class TestPaperTargets:
    def test_table8_has_all_eleven_groups(self):
        assert len(cal.TASKRABBIT_GROUP_EMD) == 11
        assert len(cal.TASKRABBIT_GROUP_EXPOSURE) == 11

    def test_table8_emd_male_female_tie(self):
        assert cal.TASKRABBIT_GROUP_EMD["Male"] == cal.TASKRABBIT_GROUP_EMD["Female"]

    def test_table9_covers_all_categories(self):
        assert set(cal.TASKRABBIT_JOB_EMD) == set(CATEGORIES)
        assert set(cal.TASKRABBIT_JOB_EXPOSURE) == set(CATEGORIES)

    def test_location_tables_reference_real_cities(self):
        for city in (*cal.TASKRABBIT_UNFAIREST_LOCATIONS, *cal.TASKRABBIT_FAIREST_LOCATIONS):
            assert city in CITIES

    def test_fairest_and_unfairest_are_disjoint(self):
        assert not set(cal.TASKRABBIT_UNFAIREST_LOCATIONS) & set(
            cal.TASKRABBIT_FAIREST_LOCATIONS
        )


class TestDerivedIntensities:
    def test_profile_penalty_spans_unit_interval(self):
        assert cal.PROFILE_PENALTY["White Male"] == 0.0
        assert cal.PROFILE_PENALTY["Asian Female"] == 1.0

    def test_profile_penalty_preserves_table8_order(self):
        order = [
            "Asian Female",
            "Asian Male",
            "Black Female",
            "Black Male",
            "White Female",
            "White Male",
        ]
        values = [cal.PROFILE_PENALTY[name] for name in order]
        assert values == sorted(values, reverse=True)

    def test_job_bias_ordering_follows_table9(self):
        assert cal.JOB_BIAS["Handyman"] == max(cal.JOB_BIAS.values())
        assert cal.JOB_BIAS["Delivery"] == min(cal.JOB_BIAS.values())

    def test_unfair_cities_all_above_fair_cities(self):
        unfair_floor = min(
            cal.LOCATION_BIAS[c] for c in cal.TASKRABBIT_UNFAIREST_LOCATIONS
        )
        fair_ceiling = max(
            cal.LOCATION_BIAS[c] for c in cal.TASKRABBIT_FAIREST_LOCATIONS
        )
        assert unfair_floor > fair_ceiling

    def test_default_location_bias_sits_between_bands(self):
        default = cal.location_bias("Nowhere, ZZ")
        fair_ceiling = max(
            cal.LOCATION_BIAS[c] for c in cal.TASKRABBIT_FAIREST_LOCATIONS
        )
        unfair_floor = min(
            cal.LOCATION_BIAS[c] for c in cal.TASKRABBIT_UNFAIREST_LOCATIONS
        )
        assert fair_ceiling < default < unfair_floor

    def test_profile_key(self):
        assert cal.profile_key("Female", "Black") == "Black Female"


class TestGoogleCalibration:
    def test_white_female_most_divergent(self):
        assert cal.GOOGLE_GROUP_DIVERGENCE["White Female"] == max(
            cal.GOOGLE_GROUP_DIVERGENCE.values()
        )

    def test_black_male_least_divergent(self):
        assert cal.GOOGLE_GROUP_DIVERGENCE["Black Male"] == min(
            cal.GOOGLE_GROUP_DIVERGENCE.values()
        )

    def test_dc_is_perfectly_fair(self):
        assert cal.GOOGLE_LOCATION_DIVERGENCE["Washington, DC"] == 0.0

    def test_london_is_most_divergent(self):
        assert cal.GOOGLE_LOCATION_DIVERGENCE["London, UK"] == max(
            cal.GOOGLE_LOCATION_DIVERGENCE.values()
        )

    def test_query_endpoints(self):
        assert cal.GOOGLE_QUERY_DIVERGENCE["yard work"] == max(
            cal.GOOGLE_QUERY_DIVERGENCE.values()
        )
        assert cal.GOOGLE_QUERY_DIVERGENCE["furniture assembly"] == min(
            cal.GOOGLE_QUERY_DIVERGENCE.values()
        )

    def test_flip_cities_are_table16_rows(self):
        assert cal.GOOGLE_FEMALE_FAIRER_LOCATIONS == {
            "Birmingham, UK",
            "Bristol, UK",
            "Detroit, MI",
            "New York City, NY",
        }
