"""Property-style checks on the search engine's perturbation model."""

from __future__ import annotations

import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.measures.jaccard import jaccard_distance
from repro.core.measures.kendall import kendall_tau_distance
from repro.data.schema import SearchUser
from repro.searchengine.engine import GoogleJobsEngine, NoiseConfig
from repro.searchengine.jobs import base_ranking, posting_pool

QUIET = NoiseConfig(
    carry_over=False, ab_testing=False, geolocation=False, infrastructure=False
)

PROFILES = [
    ("Male", "White"),
    ("Male", "Black"),
    ("Male", "Asian"),
    ("Female", "White"),
    ("Female", "Black"),
    ("Female", "Asian"),
]


def _user(gender: str, ethnicity: str, index: int = 0) -> SearchUser:
    return SearchUser(
        f"u-{ethnicity.lower()}-{gender.lower()}-{index}",
        {"gender": gender, "ethnicity": ethnicity},
    )


class TestPerturbationStructure:
    def test_pages_are_permutations_plus_substitutions_from_pool(self):
        engine = GoogleJobsEngine(seed=3, noise=QUIET)
        pool = set(posting_pool("yard work", "London, UK"))
        for gender, ethnicity in PROFILES:
            page = engine.search(_user(gender, ethnicity), "yard work jobs", "London, UK")
            assert set(page.items) <= pool
            assert len(page) == len(base_ranking("yard work", "London, UK"))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_divergence_tracks_measured_distance(self, seed):
        """Across profiles, calibrated divergence and measured distance from
        the base ranking must be strongly rank-correlated."""
        from scipy.stats import spearmanr

        engine = GoogleJobsEngine(seed=seed, noise=QUIET)
        base = base_ranking("yard work", "London, UK")
        from repro.core.rankings import RankedList

        base_list = RankedList(base)
        divergences, distances = [], []
        for gender, ethnicity in PROFILES:
            values = []
            for index in range(12):
                user = _user(gender, ethnicity, index)
                page = engine.search(user, "yard work jobs", "London, UK")
                values.append(kendall_tau_distance(base_list, page))
            divergences.append(
                engine.divergence(_user(gender, ethnicity), "yard work jobs", "London, UK")
            )
            distances.append(statistics.fmean(values))
        rho, _ = spearmanr(divergences, distances)
        # Spearman over six profile points is quantized to steps of 1/35;
        # with 12 users per profile the correlation is deterministic per
        # seed, and an exhaustive scan of seeds 0–500 bottoms out at
        # rho = 11/35 ≈ 0.314 (seed 140).  Assert just below that floor:
        # the correlation must stay clearly positive at every seed, and
        # typical seeds sit at 0.8–1.0.
        assert rho > 0.3

    def test_same_group_users_get_different_pages(self):
        engine = GoogleJobsEngine(seed=3, noise=QUIET)
        first = engine.search(_user("Female", "White", 0), "yard work jobs", "London, UK")
        second = engine.search(_user("Female", "White", 1), "yard work jobs", "London, UK")
        assert first.items != second.items

    def test_within_group_distance_grows_with_divergence(self):
        """Two White Females should differ more than two Black Males."""
        engine = GoogleJobsEngine(seed=3, noise=QUIET)

        def within(gender, ethnicity):
            a = engine.search(_user(gender, ethnicity, 0), "yard work jobs", "London, UK")
            b = engine.search(_user(gender, ethnicity, 1), "yard work jobs", "London, UK")
            return jaccard_distance(a.item_set(), b.item_set())

        assert within("Female", "White") >= within("Male", "Black")


class TestNoiseConfigIndependence:
    def test_disabling_all_noise_makes_search_execution_independent(self):
        from repro.searchengine.engine import ExecutionContext

        engine = GoogleJobsEngine(seed=3, noise=QUIET)
        user = _user("Female", "White")
        first = engine.search(
            user, "yard work jobs", "London, UK", ExecutionContext(execution=0)
        )
        second = engine.search(
            user, "yard work jobs", "London, UK", ExecutionContext(execution=5)
        )
        assert first.items == second.items

    def test_ab_probability_zero_equals_disabled(self):
        enabled_but_zero = NoiseConfig(
            carry_over=False, geolocation=False, infrastructure=False,
            ab_probability=0.0,
        )
        a = GoogleJobsEngine(seed=3, noise=QUIET)
        b = GoogleJobsEngine(seed=3, noise=enabled_but_zero)
        user = _user("Male", "Asian")
        assert (
            a.search(user, "run errand jobs", "Boston, MA").items
            == b.search(user, "run errand jobs", "Boston, MA").items
        )
