"""Chaos and resilience tests for the F-Box query service.

Covers the whole resilience layer:

* admission control — bounded queue, fast 429 shedding, Retry-After;
* the per-dataset circuit breaker — open/half-open/closed transitions,
  validation errors never tripping it, re-registration resetting it;
* deterministic fault injection — with a fixed seed, the breaker transition
  sequence and the shed count are byte-for-byte identical across runs;
* graceful degradation — ``allow_stale`` requests get the last-known-good
  answer, loudly marked, when a deadline fires or a breaker is open;
* the liveness/readiness split (``/healthz`` vs ``/readyz``);
* result-cache TTLs against an injectable clock;
* the retrying :class:`~repro.client.FBoxClient`; and
* the overload scenario itself: under 4x-capacity load, shedding keeps the
  p99 of *accepted* requests below the no-admission server's, and no
  request — accepted or shed — outlives its deadline.
"""

from __future__ import annotations

import json
import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager

import pytest

from repro.client import ClientError, FBoxClient, RetryPolicy
from repro.service.cache import LRUCache
from repro.service.errors import CircuitOpen, TooManyRequests, Unprocessable
from repro.service.faults import (
    FaultInjector,
    FaultRule,
    InjectedFault,
    faults_from_env,
)
from repro.service.handlers import ServiceContext, handle_readyz
from repro.service.registry import DatasetRegistry, DatasetSpec
from repro.service.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    AdmissionController,
    BreakerConfig,
    CircuitBreaker,
)
from repro.service.server import make_server

from tests.test_service import ServiceHarness, _registry


class FakeClock:
    """A manually advanced monotonic clock for breaker and TTL tests."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def live_server(backend):
    """A contextmanager factory booting a real server on the parameterized
    backend (ephemeral port, always torn down)."""

    @contextmanager
    def _live(**kwargs):
        # This suite predates /v1 and exercises the straggler passthrough;
        # retirement (the default --legacy-routes gone) is covered by
        # tests/test_service_api_v1.py::TestLegacyRetired.
        kwargs.setdefault("legacy_routes", "serve")
        server = make_server(port=0, backend=backend, **kwargs)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield ServiceHarness(server)
        finally:
            server.shutdown()
            thread.join(timeout=5)
            server.server_close()

    return _live


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------


class TestAdmissionController:
    def test_zero_concurrency_disables_admission(self):
        admission = AdmissionController(max_concurrency=0)
        assert not admission.enabled
        admission.acquire()  # no-op, no slot accounting
        admission.release()
        assert admission.snapshot()["accepted"] == 0

    def test_sheds_immediately_when_queue_is_full(self):
        admission = AdmissionController(max_concurrency=1, max_queue=0)
        admission.acquire()
        with pytest.raises(TooManyRequests) as excinfo:
            admission.acquire()
        error = excinfo.value
        assert error.status == 429
        assert error.retry_after == 1.0
        assert error.extra == {"max_concurrency": 1, "max_queue": 0}
        snapshot = admission.snapshot()
        assert snapshot["accepted"] == 1
        assert snapshot["shed"] == 1
        admission.release()

    def test_queued_request_sheds_after_queue_timeout(self):
        admission = AdmissionController(
            max_concurrency=1, max_queue=4, queue_timeout=0.05
        )
        admission.acquire()
        started = time.monotonic()
        with pytest.raises(TooManyRequests, match="queued longer"):
            admission.acquire()
        assert time.monotonic() - started >= 0.05
        assert admission.snapshot()["shed"] == 1
        admission.release()

    def test_queued_request_runs_once_a_slot_frees(self):
        admission = AdmissionController(max_concurrency=1, max_queue=1)
        admission.acquire()
        got_slot = threading.Event()

        def waiter() -> None:
            admission.acquire()
            got_slot.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not got_slot.is_set()
        assert admission.snapshot()["queue_depth"] == 1
        admission.release()
        assert got_slot.wait(2.0)
        thread.join(timeout=2)
        snapshot = admission.snapshot()
        assert snapshot["accepted"] == 2
        assert snapshot["queue_depth"] == 0
        admission.release()

    def test_admit_context_manager_pairs_acquire_and_release(self):
        admission = AdmissionController(max_concurrency=2, max_queue=0)
        with admission.admit():
            assert admission.snapshot()["active"] == 1
        assert admission.snapshot()["active"] == 0


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def _breaker(self, **config) -> tuple[CircuitBreaker, FakeClock]:
        clock = FakeClock()
        breaker = CircuitBreaker(
            "ds", BreakerConfig(**config), clock=clock
        )
        return breaker, clock

    def test_opens_after_threshold_then_probe_closes(self):
        breaker, clock = self._breaker(failure_threshold=2, reset_timeout=10.0)
        for _ in range(2):
            breaker.allow()
            breaker.record_failure()
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpen) as excinfo:
            breaker.allow()
        error = excinfo.value
        assert error.status == 503
        assert error.extra["breaker"]["state"] == OPEN
        assert 0 < error.retry_after <= 10.0
        clock.advance(10.0)
        breaker.allow()  # the half-open probe
        assert breaker.state == HALF_OPEN
        with pytest.raises(CircuitOpen):
            breaker.allow()  # one probe at a time
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.transition_log() == (
            "closed->open",
            "open->half_open",
            "half_open->closed",
        )

    def test_failed_probe_reopens_with_fresh_backoff(self):
        breaker, clock = self._breaker(failure_threshold=1, reset_timeout=5.0)
        breaker.allow()
        breaker.record_failure()
        clock.advance(5.0)
        breaker.allow()
        breaker.record_failure()  # the probe crashed too
        assert breaker.state == OPEN
        assert breaker.retry_in() == pytest.approx(5.0)
        clock.advance(5.0)
        breaker.allow()
        breaker.record_success()
        assert breaker.transition_log() == (
            "closed->open",
            "open->half_open",
            "half_open->open",
            "open->half_open",
            "half_open->closed",
        )

    def test_bypass_never_moves_the_state_machine(self):
        breaker, clock = self._breaker(failure_threshold=1, reset_timeout=5.0)
        for _ in range(3):
            breaker.allow()
            breaker.record_bypass()
        assert breaker.state == CLOSED
        assert breaker.transition_log() == ()
        # A bypassed half-open probe frees the probe slot without closing.
        breaker.allow()
        breaker.record_failure()
        clock.advance(5.0)
        breaker.allow()
        breaker.record_bypass()
        assert breaker.state == HALF_OPEN
        breaker.allow()  # probe slot is free again
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerConfig(reset_timeout=-1.0)


class TestRegistryBreaker:
    def _failing_registry(
        self, dataset, failures: int, clock: FakeClock
    ) -> tuple[DatasetRegistry, list]:
        """A registry whose taskrabbit loader crashes ``failures`` times."""
        faults = FaultInjector(
            [FaultRule(site="dataset_load", match="taskrabbit", times=failures)],
            seed=42,
        )
        registry = DatasetRegistry(
            breaker_config=BreakerConfig(failure_threshold=2, reset_timeout=5.0),
            faults=faults,
            clock=clock,
        )
        loads: list = []

        def loader():
            loads.append(1)
            return dataset

        registry.register(
            DatasetSpec(name="taskrabbit", site="taskrabbit", loader=loader)
        )
        return registry, loads

    def test_crashing_loader_quarantines_then_recovers(
        self, small_marketplace_dataset
    ):
        clock = FakeClock()
        registry, loads = self._failing_registry(
            small_marketplace_dataset, failures=2, clock=clock
        )
        for _ in range(2):
            with pytest.raises(InjectedFault):
                registry.dataset("taskrabbit")
        assert registry.breaker("taskrabbit").state == OPEN
        assert registry.quarantined() == ["taskrabbit"]
        # Quarantined: the loader is not even consulted.
        with pytest.raises(CircuitOpen):
            registry.dataset("taskrabbit")
        assert loads == []
        clock.advance(5.0)
        dataset = registry.dataset("taskrabbit")  # half-open probe, fault spent
        assert dataset is small_marketplace_dataset
        assert loads == [1]
        assert registry.breaker("taskrabbit").state == CLOSED
        assert registry.breaker("taskrabbit").transition_log() == (
            "closed->open",
            "open->half_open",
            "half_open->closed",
        )

    def test_validation_errors_never_trip_the_breaker(
        self, small_marketplace_dataset, small_search_dataset
    ):
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        for _ in range(registry.breaker_config.failure_threshold + 1):
            with pytest.raises(Unprocessable):
                registry.fbox("taskrabbit", "not-a-measure")
        assert registry.breaker("taskrabbit").state == CLOSED

    def test_reregistration_resets_the_breaker(self, small_marketplace_dataset):
        clock = FakeClock()
        registry, _ = self._failing_registry(
            small_marketplace_dataset, failures=2, clock=clock
        )
        for _ in range(2):
            with pytest.raises(InjectedFault):
                registry.dataset("taskrabbit")
        assert registry.breaker("taskrabbit").state == OPEN
        registry.register(
            DatasetSpec(
                name="taskrabbit",
                site="taskrabbit",
                loader=lambda: small_marketplace_dataset,
            )
        )
        breaker = registry.breaker("taskrabbit")
        assert breaker.state == CLOSED
        assert breaker.transition_log() == ()
        assert registry.dataset("taskrabbit") is small_marketplace_dataset


# ----------------------------------------------------------------------
# Deterministic chaos
# ----------------------------------------------------------------------


class TestChaosDeterminism:
    def _run_scenario(self, dataset) -> str:
        """One scripted chaos run, serialized for byte-for-byte comparison."""
        clock = FakeClock()
        faults = FaultInjector(
            [
                FaultRule(site="dataset_load", match="taskrabbit", times=3),
                FaultRule(site="handler", match="/quantify", probability=0.5),
            ],
            seed=42,
        )
        registry = DatasetRegistry(
            breaker_config=BreakerConfig(failure_threshold=2, reset_timeout=4.0),
            faults=faults,
            clock=clock,
        )
        registry.register(
            DatasetSpec(
                name="taskrabbit", site="taskrabbit", loader=lambda: dataset
            )
        )
        outcomes: list[str] = []
        for _ in range(12):
            try:
                registry.dataset("taskrabbit")
                outcomes.append("ok")
            except InjectedFault:
                outcomes.append("fault")
            except CircuitOpen:
                outcomes.append("quarantined")
            clock.advance(1.0)

        admission = AdmissionController(max_concurrency=1, max_queue=0)
        for _ in range(3):
            admission.acquire()
            try:
                admission.acquire()
            except TooManyRequests:
                pass
            admission.release()

        coin_flips = []
        for _ in range(20):
            try:
                faults.fail("handler", "/quantify")
                coin_flips.append(0)
            except InjectedFault:
                coin_flips.append(1)

        return json.dumps(
            {
                "transitions": list(
                    registry.breaker("taskrabbit").transition_log()
                ),
                "outcomes": outcomes,
                "shed": admission.snapshot()["shed"],
                "accepted": admission.snapshot()["accepted"],
                "coin_flips": coin_flips,
                "faults": faults.snapshot(),
            },
            sort_keys=True,
        )

    def test_fixed_seed_reproduces_breaker_and_shed_sequence(
        self, small_marketplace_dataset
    ):
        first = self._run_scenario(small_marketplace_dataset)
        second = self._run_scenario(small_marketplace_dataset)
        assert first == second  # byte-for-byte
        replay = json.loads(first)
        # The scripted schedule: 2 faults open the circuit, probes at t=4
        # and t=9 are spent on the remaining injected fault, the t>=9 probe
        # finally loads the dataset.
        assert replay["transitions"] == [
            "closed->open",
            "open->half_open",
            "half_open->open",
            "open->half_open",
            "half_open->closed",
        ]
        assert replay["shed"] == 3
        assert "quarantined" in replay["outcomes"]
        assert replay["outcomes"][-1] == "ok"
        assert sum(replay["coin_flips"]) > 0  # the 50% rule really fires
        assert 0 < sum(replay["coin_flips"]) < 20  # ... and really skips


# ----------------------------------------------------------------------
# Fault injection plumbing
# ----------------------------------------------------------------------


class TestFaultInjection:
    def test_skip_then_times_budget(self):
        injector = FaultInjector(
            [FaultRule(site="dataset_load", match="*", skip=1, times=2)]
        )
        injector.fail("dataset_load", "any")  # skipped
        for _ in range(2):
            with pytest.raises(InjectedFault):
                injector.fail("dataset_load", "any")
        injector.fail("dataset_load", "any")  # budget spent, inert
        (snapshot,) = injector.snapshot()
        assert snapshot["matched"] == 4
        assert snapshot["fired"] == 2
        assert injector.fired_total() == 2

    def test_glob_matching_is_per_target(self):
        injector = FaultInjector([FaultRule(site="handler", match="/quant*")])
        injector.fail("handler", "/compare")  # no match, no raise
        with pytest.raises(InjectedFault):
            injector.fail("handler", "/quantify")

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            FaultRule(site="nope")
        with pytest.raises(ValueError):
            FaultRule(site="handler", probability=1.5)
        with pytest.raises(ValueError):
            FaultRule(site="handler", skip=-1)

    def test_faults_from_env_roundtrip(self):
        spec = {
            "seed": 7,
            "rules": [{"site": "dataset_load", "match": "google", "times": 2}],
        }
        injector = faults_from_env({"FBOX_FAULTS": json.dumps(spec)})
        assert injector is not None
        assert injector.seed == 7
        assert injector.rules[0].match == "google"
        assert faults_from_env({}) is None

    def test_faults_from_env_rejects_malformed_values(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            faults_from_env({"FBOX_FAULTS": "{nope"})
        with pytest.raises(ValueError, match="JSON object"):
            faults_from_env({"FBOX_FAULTS": "[1, 2]"})


# ----------------------------------------------------------------------
# Graceful degradation over HTTP
# ----------------------------------------------------------------------


def _boom_loader():
    raise RuntimeError("dataset storage is on fire")


class TestDegradedAnswers:
    def test_open_breaker_serves_marked_stale_answer(
        self, live_server, small_marketplace_dataset, small_search_dataset
    ):
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        registry.breaker_config = BreakerConfig(
            failure_threshold=1, reset_timeout=60.0
        )
        with live_server(registry=registry, request_timeout=60.0) as service:
            payload = {
                "dataset": "taskrabbit",
                "dimension": "group",
                "k": 3,
                "allow_stale": True,
            }
            status, fresh = service.post("/quantify", payload)
            assert status == 200 and not fresh.get("degraded")

            # Replace the dataset with one whose loader crashes: the next
            # request opens the breaker (threshold 1) ...
            registry.register(
                DatasetSpec(
                    name="taskrabbit", site="taskrabbit", loader=_boom_loader
                )
            )
            status, body = service.post("/quantify", payload)
            assert status == 500
            assert registry.breaker("taskrabbit").state == OPEN

            # ... and every later opted-in request gets the last-known-good
            # answer, loudly marked with staleness facts.
            status, degraded = service.post("/quantify", payload)
            assert status == 200
            assert degraded["degraded"] is True
            assert degraded["degraded_reason"] == "circuit_open"
            assert degraded["age_generations"] == 1
            assert degraded["entries"] == fresh["entries"]

            # Without the opt-in the breaker error surfaces untouched.
            status, refused = service.post(
                "/quantify", {**payload, "allow_stale": False}
            )
            assert status == 503
            assert refused["error"]["kind"] == "circuit_open"
            assert refused["error"]["breaker"]["state"] == OPEN

            metrics = service.get("/metrics")[1]
            assert "fbox_degraded_responses_total 1" in metrics
            assert 'fbox_breaker_state{dataset="taskrabbit"} 2' in metrics

    def test_deadline_serves_stale_within_the_deadline(
        self, live_server, small_marketplace_dataset, small_search_dataset
    ):
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        faults = FaultInjector(
            [FaultRule(site="latency", match="/quantify", skip=1, latency=3.0)]
        )
        # The deadline must clear the warm first-touch build (~0.4s on a
        # loaded single-core runner) while staying far below the 3s stall.
        with live_server(
            registry=registry, request_timeout=1.0, faults=faults
        ) as service:
            payload = {
                "dataset": "taskrabbit",
                "dimension": "group",
                "k": 3,
                "allow_stale": True,
            }
            status, fresh = service.post("/quantify", payload)  # warm, no delay
            assert status == 200

            started = time.monotonic()
            status, degraded = service.post("/quantify", payload)
            elapsed = time.monotonic() - started
            assert status == 200
            assert degraded["degraded"] is True
            assert degraded["degraded_reason"] == "timeout"
            assert degraded["age_generations"] == 0
            assert degraded["entries"] == fresh["entries"]
            # Served at the deadline, not after the injected 3s stall.
            assert elapsed < 2.0

            status, refused = service.post(
                "/quantify", {**payload, "allow_stale": False}
            )
            assert status == 503
            assert refused["error"]["kind"] == "timeout"


# ----------------------------------------------------------------------
# Liveness vs readiness
# ----------------------------------------------------------------------


class TestReadiness:
    def test_readyz_gates_on_preload_and_breakers(
        self, small_marketplace_dataset, small_search_dataset
    ):
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        context = ServiceContext(
            registry=registry, require_loaded=("taskrabbit", "google")
        )
        status, body = handle_readyz(context)
        assert status == 503
        assert body["status"] == "unavailable"
        assert any("not loaded" in blocker for blocker in body["blockers"])

        registry.dataset("taskrabbit")
        registry.dataset("google")
        status, body = handle_readyz(context)
        assert status == 200
        assert body["status"] == "ready" and body["blockers"] == []

        breaker = registry.breaker("google")
        for _ in range(registry.breaker_config.failure_threshold):
            breaker.record_failure()
        status, body = handle_readyz(context)
        assert status == 503
        assert any("breaker is open" in blocker for blocker in body["blockers"])

    def test_healthz_stays_alive_while_readyz_says_unavailable(
        self, live_server, small_marketplace_dataset, small_search_dataset
    ):
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        with live_server(registry=registry) as service:
            status, body = service.get_json("/readyz")
            assert status == 200 and body["status"] == "ready"

            breaker = service.registry.breaker("taskrabbit")
            for _ in range(service.registry.breaker_config.failure_threshold):
                breaker.record_failure()

            status, body = service.get_json("/readyz")
            assert status == 503
            assert body["status"] == "unavailable"
            states = {entry["name"]: entry for entry in body["datasets"]}
            assert states["taskrabbit"]["breaker"] == OPEN
            assert states["taskrabbit"]["retry_in"] > 0
            # Liveness is deliberately oblivious: don't restart a pod over
            # a quarantined dataset.
            status, body = service.get_json("/healthz")
            assert status == 200 and body["status"] == "ok"


# ----------------------------------------------------------------------
# Result-cache TTLs
# ----------------------------------------------------------------------


class TestCacheTTL:
    def test_entries_expire_into_miss_plus_counters(self):
        clock = FakeClock()
        cache = LRUCache(8, default_ttl=10.0, clock=clock)
        cache.put("answer", {"k": 1})
        assert cache.get("answer") == {"k": 1}
        assert "answer" in cache
        clock.advance(10.0)
        assert "answer" not in cache
        assert cache.get("answer") is None
        assert cache.stats() == {
            "size": 0,
            "capacity": 8,
            "hits": 1,
            "misses": 1,
            "evictions": 1,
            "expirations": 1,
        }

    def test_per_entry_ttl_overrides_the_default(self):
        clock = FakeClock()
        cache = LRUCache(8, default_ttl=5.0, clock=clock)
        cache.put("short", 1, ttl=1.0)
        cache.put("default", 2)
        cache.put("pinned", 3, ttl=None)  # never expires
        clock.advance(1.0)
        assert cache.get("short") is None
        assert cache.get("default") == 2
        clock.advance(4.0)
        assert cache.get("default") is None
        clock.advance(1_000_000.0)
        assert cache.get("pinned") == 3

    def test_no_ttl_entries_never_expire(self):
        clock = FakeClock()
        cache = LRUCache(4, clock=clock)
        cache.put("forever", "x")
        clock.advance(1e9)
        assert cache.get("forever") == "x"
        assert cache.stats()["expirations"] == 0

    def test_generation_keys_still_partition_the_cache(self):
        # TTL bounds staleness in time; generations bound staleness across
        # re-registration.  The two must compose, not interfere.
        clock = FakeClock()
        cache = LRUCache(8, default_ttl=10.0, clock=clock)
        cache.put("quantify|gen=1", "old")
        cache.put("quantify|gen=2", "new")
        assert cache.get("quantify|gen=1") == "old"
        assert cache.get("quantify|gen=2") == "new"
        clock.advance(10.0)
        assert cache.get("quantify|gen=1") is None
        assert cache.get("quantify|gen=2") is None


# ----------------------------------------------------------------------
# The retrying client
# ----------------------------------------------------------------------


class TestClient:
    def test_backoff_is_capped_and_honors_retry_after(self):
        client = FBoxClient(
            "http://unused",
            retry=RetryPolicy(base_delay=0.1, max_delay=2.0, jitter=0.1, seed=3),
        )
        assert client._backoff_delay(0, retry_after=1.5) == 1.5  # floor wins
        small = client._backoff_delay(0, retry_after=None)
        assert 0.1 <= small <= 0.11
        capped = client._backoff_delay(10, retry_after=None)
        assert capped <= 2.0 * 1.1

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)

    def test_client_retries_a_shed_request_after_retry_after(
        self, live_server, small_marketplace_dataset, small_search_dataset
    ):
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        faults = FaultInjector(
            [FaultRule(site="latency", match="/compare", latency=0.8)]
        )
        with live_server(
            registry=registry,
            request_timeout=10.0,
            max_concurrency=1,
            queue_depth=0,
            faults=faults,
        ) as service:
            hog = threading.Thread(
                target=service.post,
                args=(
                    "/compare",
                    {
                        "dataset": "taskrabbit",
                        "dimension": "group",
                        "r1": "gender=Female",
                        "r2": "gender=Male",
                        "breakdown": "location",
                    },
                ),
                daemon=True,
            )
            hog.start()
            time.sleep(0.2)  # let the hog take the only slot

            client = FBoxClient(
                service.base,
                retry=RetryPolicy(max_attempts=5, base_delay=0.01, seed=1),
            )
            answer = client.quantify("taskrabbit", "group", k=3)
            hog.join(timeout=5)
            assert answer["entries"]
            assert client.retries >= 1
            # The shed's Retry-After (1s) is a floor the backoff never undercuts.
            assert min(client.sleeps) >= 1.0

    def test_non_retryable_errors_surface_immediately(
        self, live_server, small_marketplace_dataset, small_search_dataset
    ):
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        with live_server(registry=registry) as service:
            client = FBoxClient(service.base)
            with pytest.raises(ClientError) as excinfo:
                client.quantify("taskrabbit", "not-a-dimension")
            assert excinfo.value.status == 422
            assert client.attempts == 1
            assert client.sleeps == []

    def test_connection_failures_retry_then_raise(self):
        sleeps: list[float] = []
        client = FBoxClient(
            "http://127.0.0.1:9",  # nothing listens on the discard port
            timeout=0.2,
            retry=RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0),
            sleeper=sleeps.append,
        )
        with pytest.raises(ClientError) as excinfo:
            client.datasets()
        assert excinfo.value.status == 0
        assert client.attempts == 3
        assert len(client.sleeps) == 2

    def test_readyz_reports_503_as_an_answer_not_an_error(
        self, live_server, small_marketplace_dataset, small_search_dataset
    ):
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        with live_server(registry=registry) as service:
            breaker = registry.breaker("google")
            for _ in range(registry.breaker_config.failure_threshold):
                breaker.record_failure()
            client = FBoxClient(service.base)
            status, body = client.readyz()
            assert status == 503
            assert body["status"] == "unavailable"
            assert client.retries == 0


# ----------------------------------------------------------------------
# Overload: shedding bounds the p99 of accepted requests
# ----------------------------------------------------------------------


def _p99(values: list[float]) -> float:
    ranked = sorted(values)
    return ranked[max(0, math.ceil(0.99 * len(ranked)) - 1)]


def _storm(service: ServiceHarness, clients: int, deadline: float):
    """Fire ``clients`` simultaneous quantifies; return (durations, statuses)."""
    payload = {"dataset": "taskrabbit", "dimension": "group", "k": 3}
    barrier = threading.Barrier(clients)

    def one_request():
        barrier.wait()
        started = time.monotonic()
        status, _ = service.post("/quantify", payload)
        return time.monotonic() - started, status

    with ThreadPoolExecutor(max_workers=clients) as pool:
        outcomes = list(pool.map(lambda _: one_request(), range(clients)))
    durations = [duration for duration, _ in outcomes]
    statuses = [status for _, status in outcomes]
    assert max(durations) < deadline + 2.0, "a request outlived its deadline"
    return durations, statuses


class TestOverloadShedding:
    CLIENTS = 24  # 4x the shedding server's cap + queue
    BURN = 0.03  # thread-CPU seconds per request
    DEADLINE = 5.0

    def _faults(self) -> FaultInjector:
        # skip=1 lets the warm-up request through untouched; every storm
        # request then burns real CPU, contending for the interpreter.
        return FaultInjector(
            [FaultRule(site="latency", match="/quantify", skip=1, busy=self.BURN)],
            seed=1,
        )

    def test_shedding_bounds_p99_of_accepted_requests(
        self, live_server, small_marketplace_dataset, small_search_dataset
    ):
        warm_up = {"dataset": "taskrabbit", "dimension": "group", "k": 3}

        registry = _registry(small_marketplace_dataset, small_search_dataset)
        with live_server(
            registry=registry,
            request_timeout=self.DEADLINE,
            max_concurrency=2,
            queue_depth=4,
            faults=self._faults(),
        ) as shedding:
            assert shedding.post("/quantify", warm_up)[0] == 200
            durations, statuses = _storm(shedding, self.CLIENTS, self.DEADLINE)
            accepted = [
                duration
                for duration, status in zip(durations, statuses)
                if status == 200
            ]
            shed = statuses.count(429)
            assert set(statuses) <= {200, 429}
            assert shed >= self.CLIENTS // 2, "expected most of 4x load shed"
            assert accepted, "some requests must still be served"
            p99_shedding = _p99(accepted)
            snapshot = shedding.server.context.admission.snapshot()
            assert snapshot["shed"] == shed
            metrics = shedding.get("/metrics")[1]
            assert f'fbox_admission_total{{outcome="shed"}} {shed}' in metrics

        registry = _registry(small_marketplace_dataset, small_search_dataset)
        with live_server(
            registry=registry,
            request_timeout=self.DEADLINE,
            max_concurrency=0,  # admission disabled: everything executes
            faults=self._faults(),
        ) as unbounded:
            assert unbounded.post("/quantify", warm_up)[0] == 200
            durations, statuses = _storm(unbounded, self.CLIENTS, self.DEADLINE)
            assert statuses.count(200) == self.CLIENTS
            p99_unbounded = _p99(durations)

        # The point of shedding: accepted requests finish fast because at
        # most cap + queue of them ever share the interpreter, while the
        # unbounded server makes all 24 burns fight each other.
        assert p99_shedding < p99_unbounded


# ----------------------------------------------------------------------
# Metrics exposition for the resilience layer
# ----------------------------------------------------------------------


class TestResilienceMetrics:
    def test_breaker_queue_and_fault_series_are_exposed(
        self, live_server, small_marketplace_dataset, small_search_dataset
    ):
        registry = _registry(small_marketplace_dataset, small_search_dataset)
        faults = FaultInjector(
            [FaultRule(site="handler", match="/never-called")]
        )
        with live_server(
            registry=registry, max_concurrency=4, queue_depth=8, faults=faults
        ) as service:
            service.post(
                "/quantify", {"dataset": "taskrabbit", "dimension": "group", "k": 2}
            )
            metrics = service.get("/metrics")[1]
            for needle in (
                'fbox_admission_total{outcome="accepted"}',
                'fbox_admission_total{outcome="shed"} 0',
                "fbox_queue_depth 0",
                "fbox_admission_active 0",
                "fbox_concurrency_limit 4",
                "fbox_queue_limit 8",
                'fbox_breaker_state{dataset="taskrabbit"} 0',
                'fbox_breaker_state{dataset="google"} 0',
                'fbox_breaker_transitions_total{dataset="taskrabbit"} 0',
                'fbox_injected_faults_total{site="handler"} 0',
                "fbox_degraded_responses_total 0",
                "fbox_cache_events_total{event=\"expirations\"} 0",
            ):
                assert needle in metrics, f"missing metric line: {needle}"
