"""Explanations: per-comparable-group decomposition and cell attribution."""

from __future__ import annotations

import statistics

import pytest

from repro.core.explain import explain_aggregate, explain_cell
from repro.core.fbox import FBox
from repro.core.groups import Group
from repro.core.unfairness import MarketplaceUnfairness, SearchEngineUnfairness
from repro.exceptions import DataError

BLACK_FEMALE = Group({"gender": "Female", "ethnicity": "Black"})
QUERY, LOCATION = "Home Cleaning", "San Francisco"


class TestExplainCellMarketplace:
    def test_contributions_average_to_value_for_emd(self, schema, toy_market_dataset):
        engine = MarketplaceUnfairness(toy_market_dataset, schema, measure="emd")
        explanation = explain_cell(engine, BLACK_FEMALE, QUERY, LOCATION)
        mean = statistics.fmean(c.distance for c in explanation.contributions)
        assert explanation.value == pytest.approx(mean)

    def test_covers_all_populated_comparables(self, schema, toy_market_dataset):
        engine = MarketplaceUnfairness(toy_market_dataset, schema, measure="emd")
        explanation = explain_cell(engine, BLACK_FEMALE, QUERY, LOCATION)
        names = {str(c.comparable) for c in explanation.contributions}
        assert names == {"Black Male", "Asian Female", "White Female"}

    def test_member_counts(self, schema, toy_market_dataset):
        engine = MarketplaceUnfairness(toy_market_dataset, schema, measure="emd")
        explanation = explain_cell(engine, BLACK_FEMALE, QUERY, LOCATION)
        assert all(c.group_size == 2 for c in explanation.contributions)

    def test_exposure_contributions_exist(self, schema, toy_market_dataset):
        engine = MarketplaceUnfairness(toy_market_dataset, schema, measure="exposure")
        explanation = explain_cell(engine, BLACK_FEMALE, QUERY, LOCATION)
        assert len(explanation.contributions) == 3

    def test_narrative_mentions_dominant_group(self, schema, toy_market_dataset):
        engine = MarketplaceUnfairness(toy_market_dataset, schema, measure="emd")
        explanation = explain_cell(engine, BLACK_FEMALE, QUERY, LOCATION)
        assert str(explanation.dominant.comparable) in explanation.narrative()

    def test_unpopulated_group_raises(self, schema, toy_market_dataset):
        engine = MarketplaceUnfairness(toy_market_dataset, schema, measure="emd")
        ghost = Group({"gender": "Male", "ethnicity": "White"})
        # WM exists in the toy data, so use a query that does not.
        with pytest.raises(DataError):
            explain_cell(engine, ghost, "missing-query", LOCATION)


class TestExplainCellSearch:
    def test_contributions_average_to_value(self, schema, toy_search_dataset):
        engine = SearchEngineUnfairness(toy_search_dataset, schema, measure="kendall")
        explanation = explain_cell(engine, BLACK_FEMALE, QUERY, LOCATION)
        mean = statistics.fmean(c.distance for c in explanation.contributions)
        assert explanation.value == pytest.approx(mean)

    def test_jaccard_variant(self, schema, toy_search_dataset):
        engine = SearchEngineUnfairness(toy_search_dataset, schema, measure="jaccard")
        explanation = explain_cell(engine, BLACK_FEMALE, QUERY, LOCATION)
        assert 0.0 <= explanation.value <= 1.0


class TestExplainAggregate:
    def test_returns_top_cells_sorted(self, schema, small_marketplace_dataset):
        fbox = FBox.for_marketplace(small_marketplace_dataset, schema)
        cells = explain_aggregate(fbox.cube, "query", "Handyman", top=4)
        assert len(cells) == 4
        values = [cell.value for cell in cells]
        assert values == sorted(values, reverse=True)
        assert all(cell.query == "Handyman" for cell in cells)

    def test_group_dimension(self, schema, small_marketplace_dataset):
        fbox = FBox.for_marketplace(small_marketplace_dataset, schema)
        group = fbox.groups[0]
        cells = explain_aggregate(fbox.cube, "group", group, top=3)
        assert all(cell.group == group for cell in cells)

    def test_unknown_member_raises(self, schema, small_marketplace_dataset):
        fbox = FBox.for_marketplace(small_marketplace_dataset, schema)
        with pytest.raises(DataError, match="no defined cells"):
            explain_aggregate(fbox.cube, "query", "Quantum Repair")

    def test_nonpositive_top_raises(self, schema, small_marketplace_dataset):
        fbox = FBox.for_marketplace(small_marketplace_dataset, schema)
        with pytest.raises(DataError, match="positive"):
            explain_aggregate(fbox.cube, "query", "Handyman", top=0)
