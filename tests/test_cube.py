"""The unfairness cube."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cube import UnfairnessCube
from repro.core.groups import Group
from repro.core.unfairness import MarketplaceUnfairness
from repro.exceptions import CubeError

from tests.helpers import make_cube


class TestConstruction:
    def test_shape_validation(self):
        groups = [Group({"gender": "Male"})]
        with pytest.raises(CubeError, match="shape"):
            UnfairnessCube(groups, ["q"], ["l"], np.zeros((2, 1, 1)))

    def test_duplicate_domain_members_rejected(self):
        group = Group({"gender": "Male"})
        with pytest.raises(CubeError, match="duplicate"):
            UnfairnessCube([group, group], ["q"], ["l"], np.zeros((2, 1, 1)))

    def test_empty_dimension_rejected(self):
        with pytest.raises(CubeError):
            UnfairnessCube([], ["q"], ["l"], np.zeros((0, 1, 1)))

    def test_compute_from_engine(self, schema, toy_market_dataset):
        engine = MarketplaceUnfairness(toy_market_dataset, schema, measure="exposure")
        group = Group({"gender": "Female", "ethnicity": "Black"})
        cube = UnfairnessCube.compute(
            engine, [group], ["Home Cleaning"], ["San Francisco"]
        )
        assert cube.value(group, "Home Cleaning", "San Francisco") == pytest.approx(
            0.04, abs=0.005
        )

    def test_compute_marks_undefined_cells_missing(self, schema, toy_market_dataset):
        engine = MarketplaceUnfairness(toy_market_dataset, schema)
        present = Group({"gender": "Female", "ethnicity": "Black"})
        cube = UnfairnessCube.compute(
            engine, [present], ["Home Cleaning", "ghost-query"], ["San Francisco"]
        )
        assert cube.missing_cells == 1
        assert not cube.is_defined(present, "ghost-query", "San Francisco")


class TestLookup:
    def test_value_roundtrip(self, cube):
        group = cube.groups[0]
        assert cube.value(group, "q0", "l0") == pytest.approx(
            float(cube.values[0, 0, 0])
        )

    def test_unknown_group_raises(self, cube):
        with pytest.raises(CubeError, match="not in this cube"):
            cube.value(Group({"gender": "nope"}), "q0", "l0")

    def test_unknown_query_raises(self, cube):
        with pytest.raises(CubeError):
            cube.value(cube.groups[0], "zzz", "l0")

    def test_missing_cell_raises(self, cube):
        values = cube.values.copy()
        values[0, 0, 0] = np.nan
        holey = UnfairnessCube(cube.groups, cube.queries, cube.locations, values)
        with pytest.raises(CubeError, match="undefined"):
            holey.value(cube.groups[0], "q0", "l0")

    def test_domain_accessor(self, cube):
        assert cube.domain("query") == ["q0", "q1", "q2"]
        with pytest.raises(CubeError):
            cube.domain("time")


class TestAggregation:
    def test_full_aggregate_is_global_mean(self, cube):
        assert cube.aggregate() == pytest.approx(float(cube.values.mean()))

    def test_single_group_aggregate(self, cube):
        group = cube.groups[1]
        assert cube.aggregate(groups=[group]) == pytest.approx(
            float(cube.values[1].mean())
        )

    def test_aggregate_for_matches_aggregate(self, cube):
        group = cube.groups[2]
        assert cube.aggregate_for("group", group) == cube.aggregate(groups=[group])
        assert cube.aggregate_for("query", "q1") == cube.aggregate(queries=["q1"])
        assert cube.aggregate_for("location", "l2") == cube.aggregate(
            locations=["l2"]
        )

    def test_aggregate_skips_missing(self, cube):
        values = cube.values.copy()
        values[0, :, :] = np.nan
        values[0, 0, 0] = 0.5
        holey = UnfairnessCube(cube.groups, cube.queries, cube.locations, values)
        assert holey.aggregate(groups=[cube.groups[0]]) == pytest.approx(0.5)

    def test_entirely_missing_aggregate_raises(self, cube):
        values = cube.values.copy()
        values[0, :, :] = np.nan
        holey = UnfairnessCube(cube.groups, cube.queries, cube.locations, values)
        with pytest.raises(CubeError, match="undefined sub-cube"):
            holey.aggregate(groups=[cube.groups[0]])

    def test_fill_missing(self, cube):
        values = cube.values.copy()
        values[0, 0, 0] = np.nan
        holey = UnfairnessCube(cube.groups, cube.queries, cube.locations, values)
        filled = holey.fill_missing(0.0)
        assert filled.missing_cells == 0
        assert filled.value(cube.groups[0], "q0", "l0") == 0.0

    def test_repr_mentions_shape(self, cube):
        assert "4×3×3" in repr(cube)


class TestMakeCubeHelper:
    def test_deterministic(self):
        assert np.array_equal(make_cube(seed=3).values, make_cube(seed=3).values)
