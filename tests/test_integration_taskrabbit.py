"""End-to-end TaskRabbit pipeline: site → crawl → F-Box → paper findings.

These run on a reduced crawl (six cities, category level) and assert the
*shape* properties the paper reports, which the calibrated simulator must
reproduce even at small scale.
"""

from __future__ import annotations

import pytest

from repro.core.fbox import FBox
from repro.core.groups import Group
from repro.marketplace.crawl import run_crawl
from repro.marketplace.site import TaskRabbitSite

AF = Group({"gender": "Female", "ethnicity": "Asian"})
WM = Group({"gender": "Male", "ethnicity": "White"})
MALE = Group({"gender": "Male"})
FEMALE = Group({"gender": "Female"})


@pytest.fixture(scope="module")
def emd_fbox(small_marketplace_dataset, schema):
    fbox = FBox.for_marketplace(small_marketplace_dataset, schema, measure="emd")
    fbox.cube
    return fbox


class TestHeadlineFindings:
    def test_asian_females_more_discriminated_than_white_males(self, emd_fbox):
        assert emd_fbox.aggregate(groups=[AF]) > emd_fbox.aggregate(groups=[WM])

    def test_asian_females_top_the_group_ranking(self, emd_fbox):
        top = emd_fbox.quantify("group", k=3)
        assert AF in top.keys()

    def test_male_female_emd_tie(self, emd_fbox):
        """Table 8's Male = Female equality under EMD is structural."""
        assert emd_fbox.aggregate(groups=[MALE]) == pytest.approx(
            emd_fbox.aggregate(groups=[FEMALE])
        )

    def test_handyman_less_fair_than_delivery(self, emd_fbox):
        handyman = emd_fbox.aggregate(queries=["Handyman"])
        delivery = emd_fbox.aggregate(queries=["Delivery"])
        assert handyman > delivery

    def test_birmingham_less_fair_than_chicago(self, emd_fbox):
        birmingham = emd_fbox.aggregate(locations=["Birmingham, UK"])
        chicago = emd_fbox.aggregate(locations=["Chicago, IL"])
        assert birmingham > chicago


class TestBiasAblation:
    def test_unbiased_site_erases_group_gap(self, schema, small_marketplace_dataset):
        neutral_site = TaskRabbitSite(seed=11, bias_scale=0.0)
        neutral = run_crawl(
            neutral_site,
            level="category",
            cities=list(small_marketplace_dataset.locations),
        ).dataset
        biased_fbox = FBox.for_marketplace(small_marketplace_dataset, schema)
        neutral_fbox = FBox.for_marketplace(neutral, schema)
        biased_gap = biased_fbox.aggregate(groups=[AF]) - biased_fbox.aggregate(
            groups=[WM]
        )
        neutral_gap = neutral_fbox.aggregate(groups=[AF]) - neutral_fbox.aggregate(
            groups=[WM]
        )
        assert biased_gap > neutral_gap


class TestLabelingNoiseRobustness:
    def test_conclusions_survive_amt_noise(self, schema, site):
        noisy = run_crawl(
            site,
            level="category",
            cities=["Birmingham, UK", "Chicago, IL"],
            label_error_rate=0.05,
        ).dataset
        fbox = FBox.for_marketplace(noisy, schema)
        assert fbox.aggregate(groups=[AF]) > fbox.aggregate(groups=[WM])


class TestProblemConsistency:
    def test_fagin_and_naive_agree_end_to_end(self, emd_fbox):
        for dimension in ("group", "query", "location"):
            fagin = emd_fbox.quantify(dimension, k=3)
            naive = emd_fbox.quantify(dimension, k=3, algorithm="naive")
            assert fagin.keys() == naive.keys()

    def test_comparison_rows_match_aggregates(self, emd_fbox):
        report = emd_fbox.compare("query", "Handyman", "Delivery", "location")
        for row in report.rows:
            assert row.value_r1 == pytest.approx(
                emd_fbox.aggregate(queries=["Handyman"], locations=[row.member])
            )
