"""Jaccard index and distance."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.measures.jaccard import JaccardMeasure, jaccard_distance, jaccard_index
from repro.core.rankings import RankedList
from repro.exceptions import MeasureError

item_sets = st.frozensets(st.sampled_from("abcdefgh"), min_size=1, max_size=8)


class TestIndex:
    def test_identical_sets(self):
        assert jaccard_index({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint_sets(self):
        assert jaccard_index({"a"}, {"b"}) == 0.0

    def test_partial_overlap(self):
        assert jaccard_index({"a", "b", "c"}, {"b", "c", "d"}) == pytest.approx(0.5)

    def test_both_empty_rejected(self):
        with pytest.raises(MeasureError, match="undefined"):
            jaccard_index(set(), set())

    def test_one_empty_is_zero(self):
        assert jaccard_index({"a"}, set()) == 0.0

    @given(item_sets, item_sets)
    def test_symmetry(self, left, right):
        assert jaccard_index(left, right) == jaccard_index(right, left)

    @given(item_sets, item_sets)
    def test_bounded(self, left, right):
        assert 0.0 <= jaccard_index(left, right) <= 1.0


class TestDistance:
    def test_complement_of_index(self):
        assert jaccard_distance({"a"}, {"a", "b"}) == pytest.approx(0.5)

    @given(item_sets, item_sets, item_sets)
    def test_triangle_inequality(self, a, b, c):
        # Jaccard distance is a metric on finite sets.
        ab = jaccard_distance(a, b)
        bc = jaccard_distance(b, c)
        ac = jaccard_distance(a, c)
        assert ac <= ab + bc + 1e-12

    @given(item_sets)
    def test_identity(self, items):
        assert jaccard_distance(items, items) == 0.0


class TestMeasureObject:
    def test_distance_mode_default(self):
        measure = JaccardMeasure()
        a = RankedList(["a", "b"])
        b = RankedList(["b", "c"])
        assert measure(a, b) == pytest.approx(2.0 / 3.0)

    def test_index_mode_reproduces_figure3_arithmetic(self):
        measure = JaccardMeasure(mode="index")
        a = RankedList(["a", "b"])
        b = RankedList(["b", "c"])
        assert measure(a, b) == pytest.approx(1.0 / 3.0)

    def test_order_is_ignored(self):
        measure = JaccardMeasure()
        assert measure(RankedList(["a", "b"]), RankedList(["b", "a"])) == 0.0

    def test_invalid_mode(self):
        with pytest.raises(MeasureError, match="mode"):
            JaccardMeasure(mode="other")
