"""The paper's worked examples (Figures 1–5, Tables 1–3)."""

from __future__ import annotations

import pytest

from repro.experiments.toy import (
    TABLE1_RESULTS,
    figure1_measured,
    figure1_unfairness,
    figure2_unfairness,
    figure3_measured,
    figure3_partial_unfairness,
    figure4_unfairness,
    figure5_exposure,
    table1_dataset,
    table2_workers,
    table3_ranking,
    toy_marketplace_dataset,
)


class TestIllustrativeAverages:
    def test_figure1(self):
        assert figure1_unfairness() == pytest.approx(0.50)

    def test_figure2(self):
        assert figure2_unfairness() == pytest.approx(0.45)

    def test_figure3(self):
        assert figure3_partial_unfairness() == pytest.approx(0.65)

    def test_figure4(self):
        assert figure4_unfairness() == pytest.approx(0.50)


class TestMeasuredOnToyData:
    def test_figure1_measured_is_a_valid_distance(self):
        assert 0.0 <= figure1_measured() <= 1.0

    def test_figure3_measured_is_a_valid_index(self):
        assert 0.0 <= figure3_measured() <= 1.0


class TestTable1:
    def test_verbatim_lists(self):
        assert TABLE1_RESULTS["w1"] == ("b", "d", "e")
        assert TABLE1_RESULTS["w10"] == ("a", "b", "c")

    def test_dataset_structure(self):
        dataset = table1_dataset()
        assert len(dataset.users) == 10
        observation = dataset.observation("Home Cleaning", "San Francisco")
        assert len(observation.results_by_user) == 10


class TestTables2And3:
    def test_ten_workers_with_three_attributes(self):
        workers = table2_workers()
        assert len(workers) == 10
        assert workers[0].attributes == {
            "gender": "Female",
            "nationality": "America",
            "ethnicity": "Asian",
        }

    def test_ranking_order_is_verbatim(self):
        ranking = table3_ranking()
        assert ranking.items[:3] == ("w3", "w8", "w6")
        assert ranking.items[-1] == "w10"

    def test_scores_match_table3(self):
        ranking = table3_ranking(with_scores=True)
        assert ranking.scores["w3"] == 0.9
        assert ranking.scores["w10"] == 0.0

    def test_rank_proxy_equals_table3_scores(self):
        """Table 3's scores are exactly 1 − rank/10, so the proxy is exact."""
        scored = table3_ranking(with_scores=True)
        proxied = table3_ranking()
        for worker in scored:
            assert proxied.relevance(worker) == pytest.approx(scored.scores[worker])

    def test_toy_dataset(self):
        dataset = toy_marketplace_dataset()
        assert len(dataset.workers) == 10


class TestFigure5:
    def test_full_walkthrough(self):
        result = figure5_exposure()
        assert result.group_exposure == pytest.approx(0.94, abs=0.01)
        assert result.comparable_exposure == pytest.approx(4.0, abs=0.06)
        assert result.group_relevance == pytest.approx(0.5)
        assert result.comparable_relevance == pytest.approx(2.9)
        assert result.unfairness == pytest.approx(0.04, abs=0.005)
