"""Ranked lists, relevance proxy, and exposure."""

from __future__ import annotations

import math

import pytest

from repro.core.rankings import RankedList, exposure_from_rank, relevance_from_rank
from repro.exceptions import MeasureError


class TestRelevanceProxy:
    def test_top_rank(self):
        assert relevance_from_rank(1, 10) == pytest.approx(0.9)

    def test_bottom_rank_is_zero(self):
        assert relevance_from_rank(10, 10) == 0.0

    def test_rejects_zero_rank(self):
        with pytest.raises(MeasureError, match="1-based"):
            relevance_from_rank(0, 10)

    def test_rejects_rank_beyond_size(self):
        with pytest.raises(MeasureError, match="exceeds"):
            relevance_from_rank(11, 10)


class TestExposure:
    def test_uses_natural_log(self):
        assert exposure_from_rank(1) == pytest.approx(1.0 / math.log(2.0))

    def test_decreasing_in_rank(self):
        assert exposure_from_rank(1) > exposure_from_rank(2) > exposure_from_rank(50)

    def test_rejects_zero_rank(self):
        with pytest.raises(MeasureError):
            exposure_from_rank(0)

    def test_figure5_black_female_mass(self):
        # Paper Figure 5: workers at ranks 7 and 8 hold exposure ≈ 0.94.
        assert exposure_from_rank(7) + exposure_from_rank(8) == pytest.approx(
            0.94, abs=0.01
        )


class TestRankedList:
    def test_ranks_are_one_based(self):
        ranking = RankedList(["a", "b", "c"])
        assert ranking.rank("a") == 1
        assert ranking.rank("c") == 3

    def test_rejects_duplicates(self):
        with pytest.raises(MeasureError, match="duplicate"):
            RankedList(["a", "a"])

    def test_missing_item_raises(self):
        with pytest.raises(MeasureError, match="not in this ranked list"):
            RankedList(["a"]).rank("z")

    def test_relevance_falls_back_to_rank_proxy(self):
        ranking = RankedList(["a", "b"])
        assert ranking.relevance("a") == pytest.approx(0.5)
        assert ranking.relevance("b") == 0.0

    def test_relevance_uses_true_scores_when_present(self):
        ranking = RankedList(["a", "b"], scores={"a": 0.9, "b": 0.3})
        assert ranking.relevance("b") == 0.3

    def test_scores_must_cover_all_items(self):
        with pytest.raises(MeasureError, match="missing"):
            RankedList(["a", "b"], scores={"a": 0.9})

    def test_scores_must_be_in_unit_interval(self):
        with pytest.raises(MeasureError, match="lie in"):
            RankedList(["a"], scores={"a": 1.5})

    def test_top_prefix(self):
        ranking = RankedList(["a", "b", "c"], scores={"a": 0.9, "b": 0.5, "c": 0.1})
        top = ranking.top(2)
        assert top.items == ("a", "b")
        assert top.scores == {"a": 0.9, "b": 0.5}

    def test_top_rejects_negative(self):
        with pytest.raises(MeasureError):
            RankedList(["a"]).top(-1)

    def test_container_protocol(self):
        ranking = RankedList(["a", "b"])
        assert len(ranking) == 2
        assert "a" in ranking
        assert "z" not in ranking
        assert list(ranking) == ["a", "b"]

    def test_item_set(self):
        assert RankedList(["a", "b"]).item_set() == frozenset({"a", "b"})
