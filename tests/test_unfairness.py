"""The unfairness engines (Equation 1 and §3.3) on hand-checked data."""

from __future__ import annotations

import statistics

import pytest

from repro.core.groups import Group
from repro.core.measures.jaccard import jaccard_distance
from repro.core.measures.kendall import kendall_tau_distance
from repro.core.rankings import RankedList
from repro.core.unfairness import (
    MarketplaceUnfairness,
    SearchEngineUnfairness,
    aggregate_unfairness,
)
from repro.data.schema import (
    MarketplaceDataset,
    MarketplaceObservation,
    SearchDataset,
    SearchObservation,
    SearchUser,
    WorkerProfile,
)
from repro.exceptions import DataError, MeasureError
from repro.experiments.toy import table1_dataset, toy_marketplace_dataset

BLACK_FEMALE = Group({"gender": "Female", "ethnicity": "Black"})
QUERY, LOCATION = "Home Cleaning", "San Francisco"


class TestSearchEngineUnfairness:
    def test_equation1_matches_hand_computation(self, schema, toy_search_dataset):
        engine = SearchEngineUnfairness(toy_search_dataset, schema, measure="kendall")
        value = engine.unfairness(BLACK_FEMALE, QUERY, LOCATION)

        observation = toy_search_dataset.observation(QUERY, LOCATION)
        lists = observation.results_by_user
        members = toy_search_dataset.members_in_observation(BLACK_FEMALE, observation)
        per_group = []
        for other in (
            Group({"gender": "Male", "ethnicity": "Black"}),
            Group({"gender": "Female", "ethnicity": "Asian"}),
            Group({"gender": "Female", "ethnicity": "White"}),
        ):
            others = toy_search_dataset.members_in_observation(other, observation)
            per_group.append(
                statistics.fmean(
                    kendall_tau_distance(lists[a], lists[b])
                    for a in members
                    for b in others
                )
            )
        assert value == pytest.approx(statistics.fmean(per_group))

    def test_jaccard_measure_variant(self, schema, toy_search_dataset):
        engine = SearchEngineUnfairness(toy_search_dataset, schema, measure="jaccard")
        value = engine.unfairness(BLACK_FEMALE, QUERY, LOCATION)
        assert 0.0 <= value <= 1.0

    def test_unknown_measure_rejected(self, schema, toy_search_dataset):
        with pytest.raises(MeasureError):
            SearchEngineUnfairness(toy_search_dataset, schema, measure="emd")

    def test_empty_group_is_undefined(self, schema):
        users = [
            SearchUser("u1", {"gender": "Male", "ethnicity": "White"}),
            SearchUser("u2", {"gender": "Female", "ethnicity": "White"}),
        ]
        dataset = SearchDataset(
            users,
            [
                SearchObservation(
                    "q", "l", {"u1": RankedList(["a"]), "u2": RankedList(["b"])}
                )
            ],
        )
        engine = SearchEngineUnfairness(dataset, schema)
        group = Group({"gender": "Male", "ethnicity": "Asian"})
        assert not engine.defined_for(group, "q", "l")
        with pytest.raises(DataError, match="no users"):
            engine.unfairness(group, "q", "l")

    def test_gender_symmetry_for_binary_split(self, schema, toy_search_dataset):
        """DIST is pairwise-symmetric, so Male and Female tie exactly."""
        engine = SearchEngineUnfairness(toy_search_dataset, schema)
        male = engine.unfairness(Group({"gender": "Male"}), QUERY, LOCATION)
        female = engine.unfairness(Group({"gender": "Female"}), QUERY, LOCATION)
        assert male == pytest.approx(female)


class TestMarketplaceUnfairness:
    def test_exposure_matches_figure5(self, schema, toy_market_dataset):
        engine = MarketplaceUnfairness(toy_market_dataset, schema, measure="exposure")
        value = engine.unfairness(BLACK_FEMALE, QUERY, LOCATION)
        assert value == pytest.approx(0.04, abs=0.005)

    def test_emd_is_bounded(self, schema, toy_market_dataset):
        engine = MarketplaceUnfairness(toy_market_dataset, schema, measure="emd")
        value = engine.unfairness(BLACK_FEMALE, QUERY, LOCATION)
        assert 0.0 <= value <= 1.0

    def test_emd_gender_symmetry(self, schema, toy_market_dataset):
        """Table 8's Male = Female EMD equality is structural."""
        engine = MarketplaceUnfairness(toy_market_dataset, schema, measure="emd")
        male = engine.unfairness(Group({"gender": "Male"}), QUERY, LOCATION)
        female = engine.unfairness(Group({"gender": "Female"}), QUERY, LOCATION)
        assert male == pytest.approx(female)

    def test_unknown_measure_rejected(self, schema, toy_market_dataset):
        with pytest.raises(MeasureError):
            MarketplaceUnfairness(toy_market_dataset, schema, measure="kendall")

    def test_unrepresented_group_is_undefined(self, schema):
        workers = [
            WorkerProfile("w1", {"gender": "Male", "ethnicity": "White"}),
            WorkerProfile("w2", {"gender": "Female", "ethnicity": "White"}),
        ]
        dataset = MarketplaceDataset(
            workers, [MarketplaceObservation("q", "l", RankedList(["w1", "w2"]))]
        )
        engine = MarketplaceUnfairness(dataset, schema)
        missing = Group({"gender": "Male", "ethnicity": "Asian"})
        assert not engine.defined_for(missing, "q", "l")
        with pytest.raises(DataError, match="no workers"):
            engine.unfairness(missing, "q", "l")

    def test_group_with_no_comparables_is_undefined(self, schema):
        workers = [WorkerProfile("w1", {"gender": "Male", "ethnicity": "White"})]
        dataset = MarketplaceDataset(
            workers, [MarketplaceObservation("q", "l", RankedList(["w1"]))]
        )
        engine = MarketplaceUnfairness(dataset, schema)
        group = Group({"gender": "Male", "ethnicity": "White"})
        assert not engine.defined_for(group, "q", "l")


class TestAggregation:
    def test_single_triple_aggregate(self, schema, toy_market_dataset):
        engine = MarketplaceUnfairness(toy_market_dataset, schema, measure="exposure")
        value = aggregate_unfairness(engine, [BLACK_FEMALE], [QUERY], [LOCATION])
        assert value == pytest.approx(engine.unfairness(BLACK_FEMALE, QUERY, LOCATION))

    def test_multi_group_aggregate_is_mean(self, schema, toy_market_dataset):
        engine = MarketplaceUnfairness(toy_market_dataset, schema, measure="exposure")
        groups = [BLACK_FEMALE, Group({"gender": "Male", "ethnicity": "White"})]
        combined = aggregate_unfairness(engine, groups, [QUERY], [LOCATION])
        individual = [
            engine.unfairness(group, QUERY, LOCATION) for group in groups
        ]
        assert combined == pytest.approx(statistics.fmean(individual))

    def test_all_undefined_raises(self, schema, toy_market_dataset):
        engine = MarketplaceUnfairness(toy_market_dataset, schema)
        ghost = Group({"gender": "Male", "ethnicity": "White"})
        with pytest.raises(DataError, match="no defined"):
            aggregate_unfairness(engine, [ghost], ["missing-query"], ["nowhere"])
