"""Headline findings hold across seeds, not just the default one.

The calibrated shape must be a property of the bias model, not of one lucky
random stream: the most-discriminated-group findings are re-checked on
fresh simulator instances with different root seeds, at reduced scope.
"""

from __future__ import annotations

import pytest

from repro.core.fbox import FBox
from repro.core.groups import Group
from repro.marketplace.crawl import run_crawl
from repro.marketplace.site import TaskRabbitSite
from repro.searchengine.engine import GoogleJobsEngine
from repro.searchengine.study import StudyDesign, run_study

AF = Group({"gender": "Female", "ethnicity": "Asian"})
WM = Group({"gender": "Male", "ethnicity": "White"})
WF = Group({"gender": "Female", "ethnicity": "White"})
BM = Group({"gender": "Male", "ethnicity": "Black"})

CITIES = ["Birmingham, UK", "Oklahoma City, OK", "Chicago, IL", "Boston, MA"]


@pytest.mark.parametrize("seed", [3, 42, 2026])
def test_marketplace_group_headline_across_seeds(schema, seed):
    site = TaskRabbitSite(seed=seed)
    dataset = run_crawl(site, level="category", cities=CITIES).dataset
    fbox = FBox.for_marketplace(dataset, schema, measure="emd")
    assert fbox.aggregate(groups=[AF]) > fbox.aggregate(groups=[WM])


@pytest.mark.parametrize("seed", [3, 42])
def test_google_group_headline_across_seeds(schema, seed):
    engine = GoogleJobsEngine(seed=seed)
    design = StudyDesign(
        pairs=(("yard work", "London, UK"), ("yard work", "Boston, MA"))
    )
    dataset = run_study(engine, design).dataset
    fbox = FBox.for_search(dataset, schema, measure="kendall")
    assert fbox.aggregate(groups=[WF]) > fbox.aggregate(groups=[BM])


@pytest.mark.parametrize("seed", [3, 42])
def test_same_seed_reproduces_identical_cubes(schema, seed):
    def build():
        site = TaskRabbitSite(seed=seed)
        dataset = run_crawl(
            site, level="category", cities=["Chicago, IL", "Boston, MA"]
        ).dataset
        return FBox.for_marketplace(dataset, schema).cube

    import numpy as np

    assert np.array_equal(build().values, build().values)
