"""The F-Box facade."""

from __future__ import annotations

import pytest

from repro.core.fbox import FBox
from repro.core.groups import Group
from repro.exceptions import AlgorithmError


class TestMarketplaceFBox:
    def test_defaults_to_full_lattice_and_observed_domains(
        self, schema, small_marketplace_dataset
    ):
        fbox = FBox.for_marketplace(small_marketplace_dataset, schema)
        assert len(fbox.groups) == 11
        assert fbox.queries == small_marketplace_dataset.queries
        assert fbox.locations == small_marketplace_dataset.locations

    def test_cube_is_cached(self, schema, small_marketplace_dataset):
        fbox = FBox.for_marketplace(small_marketplace_dataset, schema)
        assert fbox.cube is fbox.cube

    def test_quantify_fagin_equals_naive(self, schema, small_marketplace_dataset):
        fbox = FBox.for_marketplace(small_marketplace_dataset, schema)
        fagin = fbox.quantify("group", k=3)
        naive = fbox.quantify("group", k=3, algorithm="naive")
        assert fagin.keys() == naive.keys()
        assert fagin.values() == pytest.approx(naive.values())

    def test_unknown_algorithm_rejected(self, schema, small_marketplace_dataset):
        fbox = FBox.for_marketplace(small_marketplace_dataset, schema)
        with pytest.raises(AlgorithmError, match="algorithm"):
            fbox.quantify("group", k=1, algorithm="magic")

    def test_family_cached_per_direction(self, schema, small_marketplace_dataset):
        fbox = FBox.for_marketplace(small_marketplace_dataset, schema)
        assert fbox.family("group") is fbox.family("group")
        assert fbox.family("group") is not fbox.family("group", order="least")

    def test_family_rejects_bad_order(self, schema, small_marketplace_dataset):
        fbox = FBox.for_marketplace(small_marketplace_dataset, schema)
        with pytest.raises(AlgorithmError):
            fbox.family("group", order="sideways")

    def test_unfairness_lookup(self, schema, small_marketplace_dataset):
        fbox = FBox.for_marketplace(small_marketplace_dataset, schema)
        group = Group({"gender": "Female", "ethnicity": "Asian"})
        query = fbox.queries[0]
        location = fbox.locations[0]
        assert 0.0 <= fbox.unfairness(group, query, location) <= 1.0

    def test_compare_returns_report(self, schema, small_marketplace_dataset):
        fbox = FBox.for_marketplace(small_marketplace_dataset, schema)
        report = fbox.compare(
            "location", fbox.locations[0], fbox.locations[1], "query"
        )
        assert len(report.rows) == len(fbox.queries)

    def test_compare_index_algorithm_agrees(self, schema, small_marketplace_dataset):
        fbox = FBox.for_marketplace(small_marketplace_dataset, schema)
        cube_report = fbox.compare(
            "location", fbox.locations[0], fbox.locations[1], "query"
        )
        index_report = fbox.compare(
            "location", fbox.locations[0], fbox.locations[1], "query",
            algorithm="indices",
        )
        assert cube_report.reversed_members == index_report.reversed_members
        assert index_report.stats.sorted_accesses > 0

    def test_compare_unknown_algorithm_rejected(
        self, schema, small_marketplace_dataset
    ):
        fbox = FBox.for_marketplace(small_marketplace_dataset, schema)
        with pytest.raises(AlgorithmError, match="algorithm"):
            fbox.compare(
                "location", fbox.locations[0], fbox.locations[1], "query",
                algorithm="psychic",
            )


class TestSearchFBox:
    def test_constructor_and_quantify(self, schema, small_search_dataset):
        fbox = FBox.for_search(small_search_dataset, schema, measure="jaccard")
        result = fbox.quantify("group", k=2)
        assert len(result.entries) == 2

    def test_custom_groups_respected(self, schema, small_search_dataset):
        groups = [Group({"gender": "Male"}), Group({"gender": "Female"})]
        fbox = FBox.for_search(small_search_dataset, schema, groups=groups)
        assert fbox.cube.groups == groups
