"""The threshold algorithm vs the exhaustive baseline (Problem 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cube import UnfairnessCube
from repro.core.fagin import naive_top_k, top_k
from repro.exceptions import AlgorithmError

from tests.helpers import make_cube


class TestAgreementWithNaive:
    @pytest.mark.parametrize("dimension", ["group", "query", "location"])
    @pytest.mark.parametrize("order", ["most", "least"])
    def test_matches_naive_on_dense_cube(self, cube, dimension, order):
        k = 2
        fagin = top_k(cube, dimension, k, order=order)
        naive = naive_top_k(cube, dimension, k, order=order)
        assert fagin.keys() == naive.keys()
        assert fagin.values() == pytest.approx(naive.values())

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        k=st.integers(1, 6),
        dims=st.tuples(st.integers(2, 6), st.integers(2, 5), st.integers(2, 5)),
    )
    def test_matches_naive_on_random_cubes(self, seed, k, dims):
        cube = make_cube(*dims, seed=seed)
        for order in ("most", "least"):
            fagin = top_k(cube, "group", k, order=order)
            naive = naive_top_k(cube, "group", k, order=order)
            assert fagin.values() == pytest.approx(naive.values())
            assert fagin.keys() == naive.keys()

    def test_matches_naive_with_missing_cells(self):
        cube = make_cube(5, 4, 4, seed=1)
        values = cube.values.copy()
        values[1, 0, 0] = np.nan
        values[3, 2, 1] = np.nan
        holey = UnfairnessCube(cube.groups, cube.queries, cube.locations, values)
        fagin = top_k(holey, "group", 3)
        naive = naive_top_k(holey, "group", 3)
        assert fagin.keys() == naive.keys()
        assert fagin.values() == pytest.approx(naive.values())


class TestResults:
    def test_entries_are_sorted_best_first(self, cube):
        result = top_k(cube, "group", 4, order="most")
        assert result.values() == sorted(result.values(), reverse=True)

    def test_least_order_sorted_ascending(self, cube):
        result = top_k(cube, "group", 4, order="least")
        assert result.values() == sorted(result.values())

    def test_k_clamped_to_domain(self, cube):
        result = top_k(cube, "group", 99)
        assert len(result.entries) == len(cube.groups)

    def test_values_are_true_aggregates(self, cube):
        result = top_k(cube, "group", 1)
        key, value = result.entries[0]
        assert value == pytest.approx(cube.aggregate(groups=[key]))


class TestEarlyTermination:
    def test_early_stop_on_skewed_cube(self):
        # One group dominates everywhere: the threshold fires quickly.
        cube = make_cube(30, 4, 4, seed=2)
        values = cube.values * 0.3
        values[0, :, :] = 0.99
        skewed = UnfairnessCube(cube.groups, cube.queries, cube.locations, values)
        result = top_k(skewed, "group", 1)
        assert result.early_stopped
        assert result.rounds < len(cube.groups)
        assert result.entries[0][0] == cube.groups[0]

    def test_no_early_stop_with_missing_cells(self):
        cube = make_cube(6, 3, 3, seed=3)
        values = cube.values.copy()
        values[2, 1, 1] = np.nan
        holey = UnfairnessCube(cube.groups, cube.queries, cube.locations, values)
        result = top_k(holey, "group", 2)
        assert not result.early_stopped

    def test_access_stats_recorded(self, cube):
        result = top_k(cube, "group", 2)
        assert result.stats.sorted_accesses > 0
        assert result.stats.random_accesses > 0

    def test_fagin_saves_random_accesses_vs_full_scan(self):
        cube = make_cube(40, 5, 5, seed=4)
        values = cube.values * 0.2
        values[:3, :, :] += 0.7
        skewed = UnfairnessCube(cube.groups, cube.queries, cube.locations, values)
        result = top_k(skewed, "group", 3)
        full_scan = 40 * 5 * 5
        assert result.early_stopped
        assert result.stats.random_accesses < full_scan


class TestValidation:
    def test_rejects_nonpositive_k(self, cube):
        with pytest.raises(AlgorithmError, match="positive"):
            top_k(cube, "group", 0)

    def test_rejects_unknown_order(self, cube):
        with pytest.raises(AlgorithmError, match="order"):
            top_k(cube, "group", 1, order="middle")

    def test_rejects_unknown_dimension(self, cube):
        with pytest.raises(Exception):
            top_k(cube, "time", 1)

    def test_rejects_mismatched_family(self, cube):
        from repro.core.indices import build_family

        family = build_family(cube, "query")
        with pytest.raises(AlgorithmError, match="family"):
            top_k(cube, "group", 1, family=family)

    def test_naive_validates_too(self, cube):
        with pytest.raises(AlgorithmError):
            naive_top_k(cube, "group", -1)
