#!/usr/bin/env python3
"""Audit a marketplace end-to-end: the paper's TaskRabbit case study.

Reproduces the §5.2.1 workflow at reduced scale: crawl every job category
across a city sample, quantify unfairness along all three dimensions under
both marketplace measures (EMD and Exposure), then drill into one job and
one city.

Run:  python examples/taskrabbit_audit.py
"""

from __future__ import annotations

from repro import FBox, default_schema
from repro.experiments.report import render_table
from repro.marketplace import JOBS_BY_CATEGORY, TaskRabbitSite, run_crawl

CITIES = [
    "Birmingham, UK",
    "Bristol, UK",
    "Oklahoma City, OK",
    "Nashville, TN",
    "Chicago, IL",
    "San Francisco, CA",
    "Boston, MA",
    "Washington, DC",
]


def quantify_everything(fbox: FBox, measure: str) -> None:
    for dimension, k in (("group", 5), ("query", 8), ("location", 8)):
        most = fbox.quantify(dimension, k=k)
        print(
            render_table(
                f"{measure.upper()}: most unfair {dimension}s",
                (dimension, "unfairness"),
                [(str(member), value) for member, value in most.entries],
            )
        )
        print()


def drill_down(fbox: FBox) -> None:
    # §5.2.1 style question: which city is fairest for Handyman work?
    rows = sorted(
        (
            (city, fbox.aggregate(queries=["Handyman"], locations=[city]))
            for city in fbox.locations
        ),
        key=lambda pair: pair[1],
    )
    print(render_table("Cities ranked for Handyman (fairest first)", ("city", "EMD"), rows))
    print()

    # ...and which job is fairest in Birmingham?
    rows = sorted(
        (
            (category, fbox.aggregate(queries=[category], locations=["Birmingham, UK"]))
            for category in JOBS_BY_CATEGORY
        ),
        key=lambda pair: pair[1],
    )
    print(render_table("Jobs ranked in Birmingham, UK (fairest first)", ("job", "EMD"), rows))


def main() -> None:
    site = TaskRabbitSite(seed=7)
    dataset = run_crawl(site, level="category", cities=CITIES).dataset
    schema = default_schema()
    for measure in ("emd", "exposure"):
        fbox = FBox.for_marketplace(dataset, schema, measure=measure)
        quantify_everything(fbox, measure)
    drill_down(FBox.for_marketplace(dataset, schema, measure="emd"))


if __name__ == "__main__":
    main()
