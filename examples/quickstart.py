#!/usr/bin/env python3
"""Quickstart: quantify and compare fairness on a simulated marketplace.

Builds a small TaskRabbit-style crawl, wraps it in the F-Box, and asks the
paper's two generic questions: which groups does the site treat least
fairly (Problem 1), and where does the male/female comparison reverse
(Problem 2)?

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import FBox, Group, default_schema
from repro.experiments.report import render_comparison, render_table
from repro.marketplace import TaskRabbitSite, run_crawl


def main() -> None:
    # 1. A deterministic simulated marketplace, crawled like the paper's
    #    pipeline (Figure 6): every job category in a handful of cities.
    site = TaskRabbitSite(seed=7)
    report = run_crawl(
        site,
        level="category",
        cities=["Birmingham, UK", "Oklahoma City, OK", "Chicago, IL", "Boston, MA"],
    )
    print(
        f"crawled {report.queries_run} queries, "
        f"{report.workers_observed} unique taskers\n"
    )

    # 2. The F-Box: observations in, fairness answers out.
    schema = default_schema()
    fbox = FBox.for_marketplace(report.dataset, schema, measure="emd")

    # Problem 1 — the five groups the site is most unfair to.
    top = fbox.quantify("group", k=5)
    print(
        render_table(
            "Most discriminated groups (EMD)",
            ("group", "unfairness"),
            [(str(group), value) for group, value in top.entries],
        )
    )
    print(
        f"\n(threshold algorithm: {top.stats.sorted_accesses} sorted + "
        f"{top.stats.random_accesses} random accesses, "
        f"early stop: {top.early_stopped})\n"
    )

    # Problem 2 — cities where the male/female comparison reverses.
    males, females = Group({"gender": "Male"}), Group({"gender": "Female"})
    comparison = fbox.compare("group", males, females, "location")
    print(render_comparison("Males vs Females by city", comparison))


if __name__ == "__main__":
    main()
