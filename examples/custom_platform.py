#!/usr/bin/env python3
"""Bring your own platform: the framework on external ranking data.

The F-Box is not tied to the built-in simulators — any site whose rankings
you can observe fits.  This example audits a fictional freelance platform
("GigHub") from plain Python data structures: a custom attribute schema
(with a third ethnicity and an age bracket), hand-made worker profiles, and
observed rankings, demonstrating schema flexibility, the group lattice, and
dataset persistence.

Run:  python examples/custom_platform.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    AttributeSchema,
    FBox,
    Group,
    MarketplaceDataset,
    MarketplaceObservation,
    RankedList,
    WorkerProfile,
    group_lattice,
)
from repro.data.io import load_marketplace_dataset, save_marketplace_dataset
from repro.experiments.report import render_table

SCHEMA = AttributeSchema(
    {
        "gender": ("Male", "Female"),
        "ethnicity": ("Asian", "Black", "White", "Hispanic"),
        "age": ("Under40", "Over40"),
    }
)


def build_dataset() -> MarketplaceDataset:
    """Sixteen freelancers and two observed rankings."""
    profiles = []
    index = 0
    for gender in SCHEMA.values_of("gender"):
        for ethnicity in SCHEMA.values_of("ethnicity"):
            for age in SCHEMA.values_of("age"):
                profiles.append(
                    WorkerProfile(
                        worker_id=f"f{index:02d}",
                        attributes={
                            "gender": gender,
                            "ethnicity": ethnicity,
                            "age": age,
                        },
                    )
                )
                index += 1

    # A ranking biased against Over40 workers for "logo design"...
    by_age = sorted(profiles, key=lambda w: w.attributes["age"] == "Over40")
    logo = MarketplaceObservation(
        "logo design", "Remote", RankedList([w.worker_id for w in by_age])
    )
    # ...and a nearly age-neutral one for "data entry".
    interleaved = sorted(profiles, key=lambda w: w.worker_id)
    data_entry = MarketplaceObservation(
        "data entry", "Remote", RankedList([w.worker_id for w in interleaved])
    )
    return MarketplaceDataset(profiles, [logo, data_entry])


def main() -> None:
    dataset = build_dataset()
    print(f"group lattice size for this schema: {len(group_lattice(SCHEMA))}\n")

    # Audit age fairness per query.
    fbox = FBox.for_marketplace(
        dataset,
        SCHEMA,
        measure="exposure",
        groups=[Group({"age": "Over40"}), Group({"age": "Under40"})],
    )
    rows = [
        (
            query,
            fbox.aggregate(queries=[query], groups=[Group({"age": "Over40"})]),
        )
        for query in fbox.queries
    ]
    print(render_table("Over40 exposure unfairness by query", ("query", "value"), rows))

    # Persist and reload the observations.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "gighub.jsonl"
        save_marketplace_dataset(dataset, path)
        reloaded = load_marketplace_dataset(path)
        print(f"\nround-tripped {len(reloaded)} observations through {path.name}")


if __name__ == "__main__":
    main()
