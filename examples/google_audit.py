#!/usr/bin/env python3
"""Audit a personalized search engine: the paper's Google case study.

Runs the Figure 9 pipeline at reduced scale: recruit participants per
(group, location) study, execute the five Keyword-Planner term variants per
query through the Chrome-extension noise-control protocol, and quantify
unfairness under Kendall Tau and Jaccard.

Run:  python examples/google_audit.py
"""

from __future__ import annotations

from repro import FBox, default_schema
from repro.experiments.report import render_table
from repro.searchengine import (
    GoogleJobsEngine,
    StudyDesign,
    run_study,
    term_variants,
)

DESIGN = StudyDesign(
    pairs=(
        ("yard work", "London, UK"),
        ("yard work", "New York City, NY"),
        ("general cleaning", "Boston, MA"),
        ("general cleaning", "Bristol, UK"),
        ("furniture assembly", "Washington, DC"),
        ("run errand", "London, UK"),
    )
)


def main() -> None:
    engine = GoogleJobsEngine(seed=7)
    report = run_study(engine, DESIGN)
    print(
        f"{report.studies} studies, {report.participants} participants, "
        f"{report.searches_executed} searches executed\n"
    )

    schema = default_schema()
    for measure in ("kendall", "jaccard"):
        fbox = FBox.for_search(report.dataset, schema, measure=measure)

        groups = fbox.quantify("group", k=6)
        print(
            render_table(
                f"{measure}: most divergent groups",
                ("group", "unfairness"),
                [(str(member), value) for member, value in groups.entries],
            )
        )
        print()

        locations = fbox.quantify("location", k=len(fbox.locations), order="least")
        print(
            render_table(
                f"{measure}: locations, fairest first",
                ("location", "unfairness"),
                [(str(member), value) for member, value in locations.entries],
            )
        )
        print()

    # Term-level view: which general-cleaning formulations diverge most?
    fbox = FBox.for_search(
        report.dataset, schema, queries=term_variants("general cleaning")
    )
    terms = fbox.quantify("query", k=5)
    print(
        render_table(
            "General-cleaning term variants by unfairness",
            ("term", "unfairness"),
            [(str(member), value) for member, value in terms.entries],
        )
    )


if __name__ == "__main__":
    main()
