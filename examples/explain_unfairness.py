#!/usr/bin/env python3
"""Explaining unfairness values: who is a group compared against, and where?

The paper's comparable-group formulation was chosen because it "can be more
easily leveraged for explanations" (§3.1).  This example drills into a
measured value twice:

1. `explain_cell` — decompose one d<g,q,l> into the distances against each
   comparable group, naming the dominant contrast.
2. `explain_aggregate` — locate the (group, location) cells that make a job
   category look unfair overall.

Run:  python examples/explain_unfairness.py
"""

from __future__ import annotations

from repro import FBox, Group, default_schema
from repro.core.explain import explain_aggregate, explain_cell
from repro.experiments.report import render_table
from repro.marketplace import TaskRabbitSite, run_crawl

CITIES = ["Birmingham, UK", "Oklahoma City, OK", "Chicago, IL", "Boston, MA"]


def main() -> None:
    site = TaskRabbitSite(seed=7)
    dataset = run_crawl(site, level="category", cities=CITIES).dataset
    schema = default_schema()
    fbox = FBox.for_marketplace(dataset, schema, measure="emd")

    # 1. Why are Asian Females unfairly treated for Handyman in Birmingham?
    group = Group({"gender": "Female", "ethnicity": "Asian"})
    explanation = explain_cell(fbox.engine, group, "Handyman", "Birmingham, UK")
    print(explanation.narrative(), "\n")
    rows = [
        (str(c.comparable), c.distance, f"{c.group_size} vs {c.comparable_size}")
        for c in explanation.contributions
    ]
    print(
        render_table(
            "Per-comparable-group contributions",
            ("comparable group", "EMD", "members"),
            rows,
        )
    )
    print()

    # 2. Which cells drive Handyman's overall unfairness?
    cells = explain_aggregate(fbox.cube, "query", "Handyman", top=5)
    rows = [(str(cell.group), cell.location, cell.value) for cell in cells]
    print(
        render_table(
            "Hottest cells behind 'Handyman is unfair'",
            ("group", "city", "EMD"),
            rows,
        )
    )


if __name__ == "__main__":
    main()
