#!/usr/bin/env python3
"""Cross-platform hypothesis transfer: the paper's closing workflow.

The paper's stated use of the framework: *generate* hypotheses on one
platform (TaskRabbit) and *verify* them on another (Google job search).
This example drives the :mod:`repro.experiments.hypotheses` API through
that loop:

1. quantify job fairness on the marketplace and generate "X is less fair
   than Y" hypotheses from the extremes;
2. translate each TaskRabbit job category onto the Google side's search
   terms and verify;
3. test the group-level hypothesis too — which, as in the paper's own case
   studies, transfers only partially (Asian Females top the marketplace,
   White Females the search engine).

Run:  python examples/hypothesis_transfer.py
"""

from __future__ import annotations

from repro import FBox, default_schema
from repro.experiments.hypotheses import generate, verify
from repro.marketplace import TaskRabbitSite, run_crawl
from repro.searchengine import GoogleJobsEngine, StudyDesign, run_study, term_variants

CITIES = ["Birmingham, UK", "Oklahoma City, OK", "Bristol, UK", "Chicago, IL",
          "Boston, MA", "San Diego, CA", "Washington, DC", "Memphis, TN"]

#: TaskRabbit job categories → equivalent Google search-term sets.
JOB_TRANSLATION = {
    "Yard Work": term_variants("yard work"),
    "General Cleaning": term_variants("general cleaning"),
    "Event Staffing": term_variants("event staffing"),
    "Moving": term_variants("moving job"),
    "Run Errands": term_variants("run errand"),
    "Furniture Assembly": term_variants("furniture assembly"),
}


def main() -> None:
    schema = default_schema()

    # --- Generate on TaskRabbit -------------------------------------------
    site = TaskRabbitSite(seed=7)
    crawl = run_crawl(site, level="category", cities=CITIES).dataset
    source = FBox.for_marketplace(crawl, schema, measure="emd")
    job_hypotheses = [
        h
        for h in generate(source, "query", top=6, source="taskrabbit")
        if h.worse in JOB_TRANSLATION and h.better in JOB_TRANSLATION
    ]
    print("Hypotheses generated on TaskRabbit:")
    for hypothesis in job_hypotheses:
        print(f"  {hypothesis}")
    print()

    # --- Verify on Google job search --------------------------------------
    engine = GoogleJobsEngine(seed=7)
    design = StudyDesign(
        pairs=tuple(
            (query, location)
            for query in ("yard work", "general cleaning", "run errand",
                          "event staffing", "moving job", "furniture assembly")
            for location in ("Boston, MA", "San Diego, CA")
        )
    )
    study = run_study(engine, design).dataset
    target = FBox.for_search(study, schema, measure="kendall")

    print("Verification on Google job search:")
    for hypothesis in job_hypotheses:
        outcome = verify(
            hypothesis,
            target,
            translate=JOB_TRANSLATION.__getitem__,
            target="google",
        )
        print(f"  {hypothesis.worse} > {hypothesis.better}: {outcome}")
    print()

    # --- The group hypothesis transfers only partially ---------------------
    worst_source = source.quantify("group", k=1).keys()[0]
    worst_target = target.quantify("group", k=1).keys()[0]
    print(f"most discriminated on TaskRabbit:     {worst_source}")
    print(f"most discriminated on Google search:  {worst_target}")
    if str(worst_source) != str(worst_target):
        print("-> group-level hypothesis is platform-specific, as in the paper")


if __name__ == "__main__":
    main()
