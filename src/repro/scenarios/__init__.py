"""Declarative scenarios: named synthetic worlds + the load harness.

One frozen :class:`ScenarioConfig` names a world (population, catalogs,
demographic mix, bias intensities, seed); :data:`PRESETS` registers the
five named regimes; :func:`build_scenario` is the single generation funnel
shared by the CLI, the in-process registry, and ``POST /v1/datasets``; and
:func:`run_loadgen` replays realistic traffic mixes against a running
server with seeded arrivals and a p50/p95/p99 + error-budget report.
"""

from __future__ import annotations

from .build import (
    build_scenario,
    build_scenario_site,
    decode_overrides,
    encode_overrides,
    scenario_spec,
)
from .config import SITES, ScenarioConfig
from .loadgen import (
    DEFAULT_MIX,
    MODES,
    arrival_schedule,
    format_report,
    latency_keys,
    plan_operations,
    report_keys,
    run_loadgen,
)
from .presets import PRESETS, describe_scenarios, get_scenario, scenario_names
from .scaled import PAGE_SLOTS, ScaledMarketplaceSite

__all__ = [
    "ScenarioConfig",
    "SITES",
    "PRESETS",
    "get_scenario",
    "scenario_names",
    "describe_scenarios",
    "build_scenario",
    "build_scenario_site",
    "scenario_spec",
    "encode_overrides",
    "decode_overrides",
    "ScaledMarketplaceSite",
    "PAGE_SLOTS",
    "DEFAULT_MIX",
    "MODES",
    "plan_operations",
    "arrival_schedule",
    "run_loadgen",
    "format_report",
    "report_keys",
    "latency_keys",
]
