"""The declarative scenario surface: one frozen object names a world.

A :class:`ScenarioConfig` captures everything that decides *which* synthetic
world a dataset describes — population size, city and query catalogs,
demographic mix, bias intensities, noise sources, and the seed — so CLI,
in-process registry, and HTTP dataset registration all build from one value
and produce byte-identical ground truth.  Sühr et al.'s interplay study
(PAPERS.md) is the motivation: conclusions about interventions flip with
population size, mix, and bias intensity, so those knobs must be first-class
and reproducible, not ad-hoc flags.

Overrides arrive as loosely typed key/value pairs (CLI ``--override k=v``
strings, JSON numbers over HTTP) and are coerced to the field's declared
type by :meth:`ScenarioConfig.with_overrides`; the frozen dataclass
re-validates on every replacement.  Validation problems raise
:class:`~repro.service.errors.Unprocessable` so the HTTP layer answers 422
and the CLI prints the same message.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..marketplace.catalog import ALL_JOBS, CATEGORIES, CITIES
from ..marketplace.site import AVAILABILITY_QUOTA
from ..marketplace.workers import TOTAL_WORKERS
from ..service.errors import Unprocessable

__all__ = ["ScenarioConfig", "SITES"]

SITES = ("taskrabbit", "google")

_LEVELS = ("category", "job")
_DESIGNS = ("paper", "full")

#: Fields that name the scenario itself and therefore cannot be overridden —
#: an override that changed ``site`` would silently build a different world
#: under the preset's name.
_PROTECTED_FIELDS = frozenset({"name", "site", "description"})

_KNOWN_PROFILES = frozenset(AVAILABILITY_QUOTA)


def _as_int(name: str, value) -> int:
    if isinstance(value, bool):
        raise Unprocessable(f"scenario field {name!r} must be an integer")
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        try:
            return int(value, 10)
        except ValueError:
            pass
    raise Unprocessable(f"scenario field {name!r} must be an integer, got {value!r}")


def _as_float(name: str, value) -> float:
    if isinstance(value, bool):
        raise Unprocessable(f"scenario field {name!r} must be a number")
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            pass
    raise Unprocessable(f"scenario field {name!r} must be a number, got {value!r}")


def _as_str(name: str, value) -> str:
    if not isinstance(value, str) or not value:
        raise Unprocessable(
            f"scenario field {name!r} must be a non-empty string, got {value!r}"
        )
    return value


def _as_tuple(name: str, value) -> tuple[str, ...]:
    """City/query lists: a ``;``-separated string (city names contain commas)
    or a JSON array of strings."""
    if isinstance(value, str):
        parts = [part.strip() for part in value.split(";")]
        return tuple(part for part in parts if part)
    if isinstance(value, (list, tuple)) and all(isinstance(v, str) for v in value):
        return tuple(value)
    raise Unprocessable(
        f"scenario field {name!r} must be a ';'-separated string or an array "
        f"of strings, got {value!r}"
    )


def _as_mix(name: str, value) -> tuple[tuple[str, str, float], ...]:
    """Demographic mix: ``Gender:Ethnicity:weight`` triples, ``;``-separated,
    or an array of ``[gender, ethnicity, weight]`` rows."""
    rows: list[tuple[str, str, float]] = []
    if isinstance(value, str):
        for part in value.split(";"):
            part = part.strip()
            if not part:
                continue
            pieces = part.split(":")
            if len(pieces) != 3:
                raise Unprocessable(
                    f"scenario field {name!r} entries must look like "
                    f"'Gender:Ethnicity:weight', got {part!r}"
                )
            rows.append((pieces[0], pieces[1], _as_float(name, pieces[2])))
        return tuple(rows)
    if isinstance(value, (list, tuple)):
        for row in value:
            if not isinstance(row, (list, tuple)) or len(row) != 3:
                raise Unprocessable(
                    f"scenario field {name!r} rows must be "
                    f"[gender, ethnicity, weight] triples, got {row!r}"
                )
            rows.append((str(row[0]), str(row[1]), _as_float(name, row[2])))
        return tuple(rows)
    raise Unprocessable(
        f"scenario field {name!r} must be 'Gender:Ethnicity:weight[;...]' or "
        f"an array of triples, got {value!r}"
    )


_COERCERS = {
    "seed": _as_int,
    "workers": _as_int,
    "cities": _as_tuple,
    "queries": _as_tuple,
    "level": _as_str,
    "demographic_mix": _as_mix,
    "bias_scale": _as_float,
    "label_error_rate": _as_float,
    "design": _as_str,
    "personalization_scale": _as_float,
}


@dataclass(frozen=True)
class ScenarioConfig:
    """One declarative synthetic world.

    Parameters
    ----------
    name / site / description:
        Identity: the registry key, which simulator family builds it
        (``"taskrabbit"`` or ``"google"``), and one line for listings.
        Protected from overrides.
    seed:
        Root seed; identical ``(preset, seed)`` pairs materialize
        byte-identical datasets on every build surface.
    workers:
        Marketplace population size; ``0`` means the paper's 3,311.  Any
        other value (or a custom ``demographic_mix``) switches generation to
        the scaled virtual-population path, which builds in bounded memory.
    cities / queries:
        Crawl scope restrictions; empty tuples mean the full catalogs.
    level:
        Marketplace crawl granularity: ``"category"`` (448 queries) or
        ``"job"`` (all 5,361).
    demographic_mix:
        ``(gender, ethnicity, weight)`` triples reshaping both the
        population and the per-query availability page; empty means the
        paper's composition.
    bias_scale:
        Multiplier on the calibrated demographic penalty (``0.0`` =
        bias-free world, ``> 1`` = adversarial).
    label_error_rate:
        AMT labeling noise: per-contributor error rate of the simulated
        majority vote over worker demographics.
    design / personalization_scale:
        Google knobs: the study layout (``"paper"`` = Table 7's sparse 60
        studies, ``"full"`` = every query at every location) and the
        personalization-noise multiplier.
    """

    name: str
    site: str
    description: str = ""
    seed: int = 7
    workers: int = 0
    cities: tuple[str, ...] = ()
    queries: tuple[str, ...] = ()
    level: str = "category"
    demographic_mix: tuple[tuple[str, str, float], ...] = ()
    bias_scale: float = 1.0
    label_error_rate: float = 0.0
    design: str = "paper"
    personalization_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise Unprocessable(
                f"scenario site must be one of {SITES}, got {self.site!r}"
            )
        if self.level not in _LEVELS:
            raise Unprocessable(
                f"scenario level must be one of {_LEVELS}, got {self.level!r}"
            )
        if self.design not in _DESIGNS:
            raise Unprocessable(
                f"scenario design must be one of {_DESIGNS}, got {self.design!r}"
            )
        if self.workers < 0:
            raise Unprocessable(f"scenario workers must be >= 0, got {self.workers}")
        if self.bias_scale < 0:
            raise Unprocessable(
                f"scenario bias_scale must be >= 0, got {self.bias_scale}"
            )
        if not 0.0 <= self.label_error_rate < 1.0:
            raise Unprocessable(
                "scenario label_error_rate must be in [0, 1), got "
                f"{self.label_error_rate}"
            )
        if self.personalization_scale < 0:
            raise Unprocessable(
                "scenario personalization_scale must be >= 0, got "
                f"{self.personalization_scale}"
            )
        if self.site == "taskrabbit":
            unknown_cities = [c for c in self.cities if c not in CITIES]
            if unknown_cities:
                raise Unprocessable(
                    f"scenario cities not in the catalog: {unknown_cities!r}"
                )
            catalog = CATEGORIES if self.level == "category" else ALL_JOBS
            unknown_queries = [q for q in self.queries if q not in catalog]
            if unknown_queries:
                raise Unprocessable(
                    f"scenario queries not in the {self.level} catalog: "
                    f"{unknown_queries!r}"
                )
        for gender, ethnicity, weight in self.demographic_mix:
            if (gender, ethnicity) not in _KNOWN_PROFILES:
                raise Unprocessable(
                    f"scenario demographic_mix profile ({gender!r}, "
                    f"{ethnicity!r}) is not one of the labeled profiles "
                    f"{sorted(_KNOWN_PROFILES)}"
                )
            if weight <= 0:
                raise Unprocessable(
                    "scenario demographic_mix weights must be positive, got "
                    f"{weight}"
                )

    # ------------------------------------------------------------------
    # Derived facts
    # ------------------------------------------------------------------

    @property
    def population(self) -> int:
        """Effective marketplace population size (0 for Google scenarios)."""
        if self.site != "taskrabbit":
            return 0
        return self.workers or TOTAL_WORKERS

    @property
    def is_scaled(self) -> bool:
        """Whether generation must use the bounded-memory scaled path.

        The paper-exact path (the memoized 3,311-worker site) is kept for
        standard populations so those presets stay bit-compatible with the
        pre-scenario builders; any non-standard population size or custom
        demographic mix switches to the virtual-population generator.
        """
        if self.site != "taskrabbit":
            return False
        return bool(self.demographic_mix) or self.workers not in (0, TOTAL_WORKERS)

    # ------------------------------------------------------------------
    # Overrides
    # ------------------------------------------------------------------

    def with_overrides(self, overrides) -> "ScenarioConfig":
        """A copy with ``overrides`` applied (typed coercion + revalidation).

        Accepts CLI-style string values and JSON-typed ones alike; unknown
        or protected keys are 422s so a typo can never silently build the
        default world.
        """
        if not overrides:
            return self
        if not isinstance(overrides, dict):
            try:
                overrides = dict(overrides)
            except (TypeError, ValueError):
                raise Unprocessable(
                    "scenario overrides must be a mapping of field -> value"
                ) from None
        changes = {}
        for key, raw in overrides.items():
            if key in _PROTECTED_FIELDS:
                raise Unprocessable(
                    f"scenario field {key!r} is part of the scenario's "
                    "identity and cannot be overridden"
                )
            coerce = _COERCERS.get(key)
            if coerce is None:
                raise Unprocessable(
                    f"unknown scenario override {key!r}; overridable fields: "
                    f"{sorted(_COERCERS)}"
                )
            changes[key] = coerce(key, raw)
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------

    def to_document(self) -> dict:
        """The full config echo for ``GET /v1/scenarios`` and dataset specs."""
        return {
            "name": self.name,
            "site": self.site,
            "description": self.description,
            "seed": self.seed,
            "population": self.population,
            "cities": list(self.cities),
            "queries": list(self.queries),
            "level": self.level,
            "demographic_mix": [
                {"gender": gender, "ethnicity": ethnicity, "weight": weight}
                for gender, ethnicity, weight in self.demographic_mix
            ],
            "bias_scale": self.bias_scale,
            "label_error_rate": self.label_error_rate,
            "design": self.design,
            "personalization_scale": self.personalization_scale,
            "scaled": self.is_scaled,
        }
