"""The named-scenario registry.

Five presets cover the paper's two studies plus the regimes the evaluation
plan needs: a million-worker stress world for the "millions of users" north
star, an adversarial high-bias world, and a bias-free null world for
calibration checks (a fairness measure that flags the null world is broken).
Presets are plain :class:`~repro.scenarios.config.ScenarioConfig` values;
``get_scenario(name).with_overrides({...})`` is the one resolution path the
CLI, the in-process registry, and ``POST /v1/datasets`` all share.
"""

from __future__ import annotations

from ..service.errors import NotFound
from ..service.registry import SMALL_CITIES
from .config import ScenarioConfig

__all__ = ["PRESETS", "scenario_names", "get_scenario", "describe_scenarios"]

PRESETS: dict[str, ScenarioConfig] = {
    config.name: config
    for config in (
        ScenarioConfig(
            name="paper_taskrabbit",
            site="taskrabbit",
            description=(
                "The paper's TaskRabbit crawl: 3,311 workers across 56 "
                "cities, category-level queries, calibrated bias."
            ),
        ),
        ScenarioConfig(
            name="paper_google",
            site="google",
            design="paper",
            description=(
                "The paper's Google user study: Table 7's 60-study design "
                "with calibrated personalization noise."
            ),
        ),
        ScenarioConfig(
            name="mega_marketplace",
            site="taskrabbit",
            workers=1_000_000,
            description=(
                "A 10^6-worker marketplace with the paper's demographic "
                "mix; builds lazily in bounded memory (only sampled "
                "workers materialize)."
            ),
        ),
        ScenarioConfig(
            name="adversarial_bias",
            site="taskrabbit",
            bias_scale=3.0,
            cities=SMALL_CITIES,
            description=(
                "A worst-case regime: triple the calibrated demographic "
                "penalty over the six-city scope, for stress-testing "
                "measures and interventions."
            ),
        ),
        ScenarioConfig(
            name="null_no_bias",
            site="taskrabbit",
            bias_scale=0.0,
            cities=SMALL_CITIES,
            description=(
                "The bias-free null world over the six-city scope; any "
                "measure that flags unfairness here is miscalibrated."
            ),
        ),
    )
}


def scenario_names() -> tuple[str, ...]:
    """Registered preset names, sorted."""
    return tuple(sorted(PRESETS))


def get_scenario(name: str) -> ScenarioConfig:
    """Resolve a preset by name; unknown names are 404s."""
    try:
        return PRESETS[name]
    except KeyError:
        raise NotFound(
            f"unknown scenario {name!r}; known scenarios: {sorted(PRESETS)}"
        ) from None


def describe_scenarios() -> list[dict]:
    """Full config echoes for every preset, for ``GET /v1/scenarios``."""
    return [PRESETS[name].to_document() for name in scenario_names()]
