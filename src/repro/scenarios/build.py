"""One build path for every surface: scenario -> dataset / site / spec.

``build_scenario`` is the single funnel the CLI (``repro generate
--scenario``), the in-process :class:`DatasetRegistry`, and ``POST
/v1/datasets`` all call, which is what makes the byte-identity acceptance
criterion hold: identical ``(preset, overrides, seed)`` resolves to the
same frozen config, and every generation knob downstream is derived from
that config alone.

``scenario_spec`` wraps the funnel in a :class:`DatasetSpec` whose
``scenario``/``overrides`` fields are plain JSON-safe strings, so a sharded
front can broadcast a runtime registration to its workers over the frame
protocol and each worker rebuilds the identical spec locally.
"""

from __future__ import annotations

import json

from ..experiments.datasets import build_google_dataset, build_taskrabbit_dataset
from ..marketplace.crawl import run_crawl
from ..marketplace.site import TaskRabbitSite
from ..service.errors import Unprocessable
from ..service.registry import DatasetSpec
from .config import ScenarioConfig
from .presets import get_scenario
from .scaled import ScaledMarketplaceSite

__all__ = [
    "build_scenario",
    "build_scenario_site",
    "scenario_spec",
    "encode_overrides",
    "decode_overrides",
]


def build_scenario(config: ScenarioConfig):
    """Materialize the scenario's ground-truth dataset, deterministically.

    Standard marketplace populations delegate to the memoized
    paper-exact builders; scaled populations crawl a
    :class:`ScaledMarketplaceSite` in bounded memory; Google scenarios run
    the user study.
    """
    if config.site == "google":
        return build_google_dataset(
            seed=config.seed,
            design=config.design,
            personalization_scale=config.personalization_scale,
        )
    if config.is_scaled:
        site = ScaledMarketplaceSite(config)
        report = run_crawl(
            site,
            level=config.level,
            jobs=list(config.queries) if config.queries else None,
            cities=list(site.cities),
            label_error_rate=config.label_error_rate,
        )
        return report.dataset
    return build_taskrabbit_dataset(
        seed=config.seed,
        level=config.level,
        jobs=config.queries or None,
        cities=config.cities or None,
        bias_scale=config.bias_scale,
        label_error_rate=config.label_error_rate,
    )


def build_scenario_site(config: ScenarioConfig):
    """The live marketplace behind a scenario (for ``repro simulate``).

    Only marketplace scenarios have a searchable site; the Google stream
    protocol replays the study dataset instead.
    """
    if config.site != "taskrabbit":
        raise Unprocessable(
            f"scenario {config.name!r} is a {config.site} scenario and has "
            "no marketplace site"
        )
    if config.is_scaled:
        return ScaledMarketplaceSite(config)
    return TaskRabbitSite(seed=config.seed, bias_scale=config.bias_scale)


def encode_overrides(overrides) -> tuple[tuple[str, str], ...]:
    """Canonical, hashable, JSON-safe override encoding for specs."""
    if not overrides:
        return ()
    return tuple(
        sorted(
            (str(key), json.dumps(value, sort_keys=True))
            for key, value in dict(overrides).items()
        )
    )


def decode_overrides(encoded) -> dict:
    """Invert :func:`encode_overrides` back into an override mapping."""
    return {key: json.loads(value) for key, value in encoded or ()}


def scenario_spec(
    name: str,
    scenario: str,
    overrides=None,
    description: str | None = None,
) -> DatasetSpec:
    """A lazily building :class:`DatasetSpec` for a named scenario.

    Raises :class:`NotFound` for unknown scenario names and
    :class:`Unprocessable` for bad overrides, so HTTP registration answers
    404/422 and the CLI prints the same message.
    """
    config = get_scenario(scenario).with_overrides(overrides)
    return DatasetSpec(
        name=name,
        site=config.site,
        loader=lambda: build_scenario(config),
        description=description or config.description,
        scenario=scenario,
        overrides=encode_overrides(overrides),
    )
