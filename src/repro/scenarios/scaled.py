"""Bounded-memory marketplace generation for million-worker scenarios.

A :class:`ScaledMarketplaceSite` mirrors the :class:`TaskRabbitSite` API —
``search``, ``all_workers``, ``seed``, ``cities`` — over a *virtual*
population: worker counts per (city, profile) cell are fixed up front, but a
worker only materializes (features drawn, profile built) when an
availability sample actually picks their index.  Because ranked pages are
capped at :data:`~repro.marketplace.site.RESULT_CAP` and the availability
quota sums to 52 slots per query, a full category-level crawl over 56
cities touches at most ``448 queries × 52 slots ≈ 23k`` workers of a
10^6-strong roster — memory stays proportional to the crawl, not the
population.

Determinism mirrors the standard site: availability draws are keyed
``derive(seed, "availability", city, job, gender, ethnicity)`` over the
cell's index range, worker features are keyed by the worker's stable
identity ``derive(seed, "scaled-worker", city, gender, ethnicity, index)``,
and scoring reuses the calibrated :class:`ScoringModel`, whose draws are
worker-id-keyed and therefore independent of materialization order.
``run_crawl`` works verbatim on this site: it performs every search before
asking for ``all_workers()``, so all observed workers are memoized by then.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from ..calibration import PROFILE_PENALTY, profile_key
from ..core.rankings import RankedList
from ..data.schema import WorkerProfile
from ..exceptions import DataError
from ..marketplace.catalog import CITIES, category_of
from ..marketplace.scoring import ScoringModel
from ..marketplace.site import AVAILABILITY_QUOTA, RESULT_CAP
from ..marketplace.workers import _worker_features
from ..stats.rng import derive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .config import ScenarioConfig

__all__ = ["ScaledMarketplaceSite", "PAGE_SLOTS"]

#: Ranked-page availability slots per query (the standard site's 52).
PAGE_SLOTS = sum(AVAILABILITY_QUOTA.values())

_PROFILE_SLUG = {
    ("Male", "White"): "mw",
    ("Male", "Black"): "mb",
    ("Male", "Asian"): "ma",
    ("Female", "White"): "fw",
    ("Female", "Black"): "fb",
    ("Female", "Asian"): "fa",
    ("Unknown", "Unknown"): "uu",
}


def _largest_remainder(weights: dict, total: int) -> dict:
    """Apportion ``total`` integer units across keys proportionally.

    Deterministic: fractional-part ties break on the key's position in the
    (insertion-ordered) ``weights`` mapping, so every build surface splits
    populations identically.
    """
    mass = sum(weights.values())
    if mass <= 0:
        raise DataError("weights must have positive mass")
    exact = {key: total * weight / mass for key, weight in weights.items()}
    counts = {key: int(math.floor(value)) for key, value in exact.items()}
    leftovers = total - sum(counts.values())
    by_fraction = sorted(
        weights,
        key=lambda key: exact[key] - counts[key],
        reverse=True,
    )
    for key in by_fraction[:leftovers]:
        counts[key] += 1
    return counts


class ScaledMarketplaceSite:
    """A lazily materialized marketplace of arbitrary size and mix."""

    def __init__(self, config: "ScenarioConfig") -> None:
        if config.site != "taskrabbit":
            raise DataError("ScaledMarketplaceSite only models marketplace scenarios")
        self.seed = config.seed
        self._cities: tuple[str, ...] = config.cities or CITIES
        self.scoring = ScoringModel(config.seed, bias_scale=config.bias_scale)
        if config.demographic_mix:
            mix = {
                (gender, ethnicity): weight
                for gender, ethnicity, weight in config.demographic_mix
            }
        else:
            mix = {profile: float(quota) for profile, quota in AVAILABILITY_QUOTA.items()}
        #: Per-query availability slots per profile; with the default mix this
        #: reproduces AVAILABILITY_QUOTA exactly (integer weights apportion to
        #: themselves).
        self._quota = _largest_remainder(mix, PAGE_SLOTS)
        per_city = _largest_remainder(
            {city: 1.0 for city in self._cities}, config.population
        )
        #: (city, profile) -> virtual worker count; workers materialize by
        #: index into that range.
        self._cell_counts: dict[tuple[str, str, str], int] = {}
        for city in self._cities:
            profile_counts = _largest_remainder(mix, per_city[city])
            for (gender, ethnicity), count in profile_counts.items():
                self._cell_counts[(city, gender, ethnicity)] = count
        self._materialized: dict[tuple[str, str, str, int], WorkerProfile] = {}
        self._by_id: dict[str, WorkerProfile] = {}

    @property
    def cities(self) -> tuple[str, ...]:
        """The scenario's city catalog."""
        return self._cities

    @property
    def cell_counts(self) -> dict[tuple[str, str, str], int]:
        """Virtual worker counts per (city, gender, ethnicity) cell."""
        return dict(self._cell_counts)

    def materialized_ids(self) -> list[str]:
        """Ids of the workers built so far (the memory bound's witness)."""
        return sorted(self._by_id)

    def all_workers(self) -> list[WorkerProfile]:
        """Every worker materialized so far, in worker-id order.

        Valid for :func:`~repro.marketplace.crawl.run_crawl`, which calls
        this only after all searches: every observed id is memoized by then.
        """
        return [self._by_id[worker_id] for worker_id in sorted(self._by_id)]

    def _worker(self, city: str, gender: str, ethnicity: str, index: int) -> WorkerProfile:
        key = (city, gender, ethnicity, index)
        worker = self._materialized.get(key)
        if worker is not None:
            return worker
        city_slug = city.replace(" ", "").replace(",", "")
        slug = _PROFILE_SLUG[(gender, ethnicity)]
        rng = derive(self.seed, "scaled-worker", city, gender, ethnicity, index)
        penalty = PROFILE_PENALTY.get(profile_key(gender, ethnicity), 0.0)
        worker = WorkerProfile(
            worker_id=f"w-{city_slug}-{slug}-{index:07d}",
            attributes={"gender": gender, "ethnicity": ethnicity, "city": city},
            features=_worker_features(rng, penalty),
        )
        self._materialized[key] = worker
        self._by_id[worker.worker_id] = worker
        return worker

    def _available_workers(self, job: str, city: str) -> list[WorkerProfile]:
        """Sample the availability page over index space, then materialize.

        The standard site samples quota indices from each profile's city
        pool; here the pool is the virtual index range ``[0, count)``, so no
        unpicked worker is ever built.
        """
        if city not in self._cities:
            raise DataError(f"unknown city {city!r}")
        chosen: list[WorkerProfile] = []
        for (gender, ethnicity), quota in self._quota.items():
            count = self._cell_counts.get((city, gender, ethnicity), 0)
            if count <= 0 or quota <= 0:
                continue
            if count <= quota:
                picks = range(count)
            else:
                rng = derive(self.seed, "availability", city, job, gender, ethnicity)
                picks = sorted(
                    int(i) for i in rng.choice(count, size=quota, replace=False)
                )
            chosen.extend(self._worker(city, gender, ethnicity, index) for index in picks)
        if not chosen:
            raise DataError(f"no workers available for {job!r} in {city!r}")
        return chosen

    def search(
        self, job: str, city: str, limit: int = RESULT_CAP, with_scores: bool = False
    ) -> RankedList:
        """Rank the availability sample for ``job``; same contract as the
        standard site (deterministic ties on worker id, optional min-max
        normalized scores)."""
        category_of(job)  # validates the job name
        pool = self._available_workers(job, city)
        scored = sorted(
            ((self.scoring.raw_score(worker, job, city), worker) for worker in pool),
            key=lambda pair: (-pair[0], pair[1].worker_id),
        )
        top = scored[:limit]
        items = [worker.worker_id for _, worker in top]
        scores = None
        if with_scores:
            raw_values = [raw for raw, _ in top]
            low, high = min(raw_values), max(raw_values)
            span = (high - low) or 1.0
            scores = {worker.worker_id: (raw - low) / span for raw, worker in top}
        return RankedList(items, scores)
