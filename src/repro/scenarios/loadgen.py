"""Open- and closed-loop traffic generation against a running F-Box server.

The harness replays a realistic operation mix — quantify / compare / batch
/ whatif / observations at configurable ratios — from N worker threads and
reports p50/p95/p99 latency, throughput, and an error budget split into
*hard* failures (non-retryable 4xx/5xx or connection death after retries)
and *shed* requests (429/503 that survived the client's retry budget; the
service doing load shedding as designed).

Two loop disciplines, both seeded:

* **closed** — each of N threads issues its next request as soon as the
  previous one answers; measures the server's saturated service rate.
* **open** — arrivals follow a seeded Poisson process at ``rate`` req/s,
  dispatched to a bounded thread pool; latency is measured from the
  *scheduled* arrival, so queueing delay under overload is visible
  (avoiding closed-loop coordinated omission).

Request *schedules* are pure functions of the seed
(:func:`plan_operations`, :func:`arrival_schedule`) so runs are replayable;
thread interleaving under load is the only nondeterminism, and it only
affects timings, never which requests are sent.  Ingest traffic sends
deterministic per-request ``batch_id`` values and no ``sequence``, so
concurrent observation batches never trip the idempotency ledger's 409.
"""

from __future__ import annotations

import threading
import time
from random import Random

from ..client import ClientError, FBoxClient, RetryPolicy
from ..service.errors import Unprocessable
from ..service.ingest import encode_observation
from .build import build_scenario
from .config import ScenarioConfig

__all__ = [
    "DEFAULT_MIX",
    "MODES",
    "plan_operations",
    "arrival_schedule",
    "run_loadgen",
    "format_report",
]

MODES = ("closed", "open")

#: Default operation mix (weights, not percentages): read-heavy analytics
#: with a writer minority, the shape a live fairness dashboard produces.
DEFAULT_MIX: dict[str, float] = {
    "quantify": 45,
    "compare": 20,
    "batch": 15,
    "whatif": 10,
    "observations": 10,
}

#: Statuses the client retries; reaching the caller anyway means the retry
#: budget ran out under deliberate shedding — an availability datum, not a
#: correctness failure.
_SHED_STATUSES = (429, 503)

_REPORT_KEYS = frozenset(
    {
        "kind",
        "mode",
        "dataset",
        "scenario",
        "seed",
        "workers",
        "rate",
        "requests",
        "warmup",
        "measured",
        "duration_s",
        "throughput_rps",
        "latency_ms",
        "errors",
        "mix",
        "hard_failure_samples",
    }
)

_LATENCY_KEYS = frozenset({"p50", "p95", "p99", "mean", "max"})


def plan_operations(mix, count: int, seed: int) -> tuple[str, ...]:
    """The deterministic operation sequence for one run.

    A pure function of ``(mix, count, seed)``: the i-th request of a run is
    always the same operation, whichever thread ends up sending it.
    """
    mix = dict(mix or DEFAULT_MIX)
    operations = sorted(op for op, weight in mix.items() if weight > 0)
    if not operations:
        raise Unprocessable("loadgen mix must give positive weight to some operation")
    unknown = sorted(set(mix) - set(DEFAULT_MIX))
    if unknown:
        raise Unprocessable(
            f"unknown loadgen operations {unknown!r}; known: {sorted(DEFAULT_MIX)}"
        )
    weights = [float(mix[op]) for op in operations]
    rng = Random(seed)
    return tuple(rng.choices(operations, weights=weights, k=count))


def arrival_schedule(rate: float, count: int, seed: int) -> tuple[float, ...]:
    """Cumulative arrival offsets (seconds) of a seeded Poisson process."""
    if rate <= 0:
        raise Unprocessable(f"loadgen rate must be positive, got {rate}")
    rng = Random(seed)
    offsets = []
    clock = 0.0
    for _ in range(count):
        clock += rng.expovariate(rate)
        offsets.append(clock)
    return tuple(offsets)


class _Workload:
    """Payload factory over one scenario's materialized ground truth.

    Request parameters (cells, dimensions, k) are drawn from the dataset
    the target server is serving, so every generated request addresses
    defined cube cells and validation failures genuinely indicate bugs.
    """

    def __init__(self, dataset_name: str, config: ScenarioConfig, dataset=None):
        self.name = dataset_name
        self.site = config.site
        dataset = dataset if dataset is not None else build_scenario(config)
        observations = list(dataset.observations())
        if not observations:
            raise Unprocessable(f"scenario {config.name!r} produced no observations")
        self.pairs = [(o.query, o.location) for o in observations]
        self.locations = sorted({location for _, location in self.pairs})
        self.queries = sorted({query for query, _ in self.pairs})
        self.encoded = [encode_observation(o) for o in observations]
        self.groups = ("gender=Female", "gender=Male", "ethnicity=White")

    def payload(self, op: str, rng: Random) -> tuple[str, dict]:
        """(path, payload) for one request; draws come from ``rng``."""
        if op == "whatif" and self.site != "taskrabbit":
            op = "quantify"  # interventions re-rank marketplace cells only
        if op == "quantify":
            return "/quantify", {
                "dataset": self.name,
                "dimension": rng.choice(("group", "query", "location")),
                "k": rng.randint(1, 5),
            }
        if op == "compare":
            if len(self.locations) < 2:
                return self.payload("quantify", rng)
            r1, r2 = rng.sample(self.locations, 2)
            return "/compare", {
                "dataset": self.name,
                "dimension": "location",
                "r1": r1,
                "r2": r2,
                "breakdown": "query",
            }
        if op == "batch":
            return "/batch", {
                "requests": [
                    {
                        "op": "quantify",
                        "dataset": self.name,
                        "dimension": dimension,
                        "k": rng.randint(1, 5),
                    }
                    for dimension in ("group", "query", "location")
                ]
            }
        if op == "whatif":
            query, location = rng.choice(self.pairs)
            return "/whatif", {
                "dataset": self.name,
                "group": rng.choice(self.groups),
                "query": query,
                "location": location,
                "intervention": "fair",
            }
        if op == "observations":
            base = rng.choice(self.encoded)
            return "/observations", {
                "dataset": self.name,
                "observations": [self._perturbed(base, rng)],
            }
        raise Unprocessable(f"unknown loadgen operation {op!r}")

    def _perturbed(self, encoded: dict, rng: Random) -> dict:
        """A fresh observation: the base ranking with seeded adjacent swaps."""
        item = dict(encoded)
        if "ranking" in item:
            item["ranking"] = _swap(list(item["ranking"]), rng)
            item.pop("scores", None)  # swapped ranks invalidate displayed scores
        else:
            item["results_by_user"] = {
                user: _swap(list(ranking), rng)
                for user, ranking in item["results_by_user"].items()
            }
        return item


def _swap(items: list, rng: Random, swaps: int = 2) -> list:
    for _ in range(swaps):
        if len(items) < 2:
            break
        index = rng.randrange(len(items) - 1)
        items[index], items[index + 1] = items[index + 1], items[index]
    return items


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def run_loadgen(
    base_url: str,
    dataset: str,
    config: ScenarioConfig,
    *,
    mode: str = "closed",
    requests: int = 200,
    workers: int = 4,
    rate: float = 50.0,
    warmup: int = 0,
    seed: int = 0,
    mix=None,
    timeout: float = 30.0,
    prebuilt=None,
) -> dict:
    """Run one load-generation pass and return the report document.

    ``warmup`` requests at the head of the schedule are sent but excluded
    from latency/throughput statistics (cold caches and first-touch dataset
    builds would otherwise dominate the tail).  ``prebuilt`` reuses an
    already materialized dataset for payload vocabulary.
    """
    if mode not in MODES:
        raise Unprocessable(f"loadgen mode must be one of {MODES}, got {mode!r}")
    if requests <= 0:
        raise Unprocessable(f"loadgen requests must be positive, got {requests}")
    if workers <= 0:
        raise Unprocessable(f"loadgen workers must be positive, got {workers}")
    if not 0 <= warmup < requests:
        raise Unprocessable(
            f"loadgen warmup must be in [0, requests), got {warmup}"
        )
    workload = _Workload(dataset, config, dataset=prebuilt)
    operations = plan_operations(mix, requests, seed)
    offsets = arrival_schedule(rate, requests, seed) if mode == "open" else None

    # Per-request slots, filled by whichever thread sends request i.
    records: list[tuple[str, float, str | None, str | None]] = [None] * requests  # type: ignore[list-item]
    next_index = [0]
    index_lock = threading.Lock()
    start_gate = threading.Event()
    t0 = [0.0]

    def send(client: FBoxClient, rng: Random, index: int, scheduled: float | None):
        op = operations[index]
        path, payload = workload.payload(op, rng)
        if path == "/observations":
            payload = dict(payload, batch_id=f"lg-{seed}-{index:06d}")
        began = time.perf_counter()
        reference = began if scheduled is None else t0[0] + scheduled
        outcome = None
        detail = None
        try:
            client.post(
                client._api(path), payload, idempotent=(path == "/observations")
            )
        except ClientError as error:
            if error.status in _SHED_STATUSES:
                outcome = "shed"
            else:
                outcome = "hard"
                detail = f"{op} -> {error.status}: {error}"
        latency = time.perf_counter() - reference
        records[index] = (op, latency, outcome, detail)

    def closed_worker(worker_index: int):
        client = FBoxClient(
            base_url, timeout=timeout, retry=RetryPolicy(seed=seed * 1_000 + worker_index)
        )
        rng = Random((seed + 1) * 7_919 + worker_index)
        start_gate.wait()
        with client:
            while True:
                with index_lock:
                    index = next_index[0]
                    if index >= requests:
                        return
                    next_index[0] = index + 1
                send(client, rng, index, None)

    def open_worker(worker_index: int, queue: list):
        client = FBoxClient(
            base_url, timeout=timeout, retry=RetryPolicy(seed=seed * 1_000 + worker_index)
        )
        rng = Random((seed + 1) * 7_919 + worker_index)
        start_gate.wait()
        with client:
            while True:
                with index_lock:
                    if not queue:
                        return
                    index, scheduled = queue.pop(0)
                clock = time.perf_counter() - t0[0]
                if clock < scheduled:
                    time.sleep(scheduled - clock)
                send(client, rng, index, scheduled)

    if mode == "closed":
        threads = [
            threading.Thread(target=closed_worker, args=(i,), daemon=True)
            for i in range(workers)
        ]
    else:
        queue = [(index, offsets[index]) for index in range(requests)]
        threads = [
            threading.Thread(target=open_worker, args=(i, queue), daemon=True)
            for i in range(workers)
        ]
    for thread in threads:
        thread.start()
    t0[0] = time.perf_counter()
    start_gate.set()
    for thread in threads:
        thread.join()
    total_elapsed = time.perf_counter() - t0[0]

    measured = [record for record in records[warmup:] if record is not None]
    latencies = sorted(latency for _, latency, _, _ in measured)
    hard = sum(1 for _, _, outcome, _ in measured if outcome == "hard")
    shed = sum(1 for _, _, outcome, _ in measured if outcome == "shed")
    # Warmup requests still count toward error totals: a hard failure during
    # warmup is a real failure, just not a latency datum.
    head = [record for record in records[:warmup] if record is not None]
    hard += sum(1 for _, _, outcome, _ in head if outcome == "hard")
    shed += sum(1 for _, _, outcome, _ in head if outcome == "shed")
    samples = [
        record[3]
        for record in records
        if record is not None and record[2] == "hard" and record[3]
    ][:5]
    per_op: dict[str, dict] = {}
    for op, latency, outcome, _ in measured:
        entry = per_op.setdefault(
            op, {"requests": 0, "hard": 0, "shed": 0, "_latencies": []}
        )
        entry["requests"] += 1
        if outcome == "hard":
            entry["hard"] += 1
        elif outcome == "shed":
            entry["shed"] += 1
        entry["_latencies"].append(latency)
    mix_report = {}
    for op in sorted(per_op):
        entry = per_op[op]
        values = sorted(entry.pop("_latencies"))
        entry["p50_ms"] = round(_percentile(values, 0.50) * 1_000, 3)
        mix_report[op] = entry
    # Duration for throughput excludes the warmup head in closed mode by
    # approximating with total wall time; at the sizes involved the warmup
    # head is a negligible slice and the number stays comparable across runs.
    throughput = len(measured) / total_elapsed if total_elapsed > 0 else 0.0
    return {
        "kind": "loadgen",
        "mode": mode,
        "dataset": dataset,
        "scenario": config.name,
        "seed": seed,
        "workers": workers,
        "rate": rate if mode == "open" else None,
        "requests": requests,
        "warmup": warmup,
        "measured": len(measured),
        "duration_s": round(total_elapsed, 3),
        "throughput_rps": round(throughput, 2),
        "latency_ms": {
            "p50": round(_percentile(latencies, 0.50) * 1_000, 3),
            "p95": round(_percentile(latencies, 0.95) * 1_000, 3),
            "p99": round(_percentile(latencies, 0.99) * 1_000, 3),
            "mean": round(
                (sum(latencies) / len(latencies) * 1_000) if latencies else 0.0, 3
            ),
            "max": round((latencies[-1] * 1_000) if latencies else 0.0, 3),
        },
        "errors": {"hard": hard, "shed": shed},
        "mix": mix_report,
        "hard_failure_samples": samples,
    }


def report_keys() -> frozenset[str]:
    """The stable top-level report schema (tests pin this)."""
    return _REPORT_KEYS


def latency_keys() -> frozenset[str]:
    """The stable latency sub-document schema."""
    return _LATENCY_KEYS


def format_report(report: dict) -> str:
    """Human-readable rendering for the CLI and the committed benchmark."""
    lines = [
        f"loadgen {report['mode']}-loop  scenario={report['scenario']}  "
        f"dataset={report['dataset']}  seed={report['seed']}",
        f"  requests={report['requests']} (warmup {report['warmup']}), "
        f"workers={report['workers']}"
        + (f", rate={report['rate']}/s" if report["rate"] is not None else ""),
        f"  duration={report['duration_s']}s  "
        f"throughput={report['throughput_rps']} req/s",
        "  latency p50={p50}ms p95={p95}ms p99={p99}ms mean={mean}ms "
        "max={max}ms".format(**report["latency_ms"]),
        f"  errors: hard={report['errors']['hard']} "
        f"shed={report['errors']['shed']}",
    ]
    for op, entry in report["mix"].items():
        lines.append(
            f"    {op:<13} requests={entry['requests']:<5} "
            f"hard={entry['hard']} shed={entry['shed']} "
            f"p50={entry['p50_ms']}ms"
        )
    for sample in report["hard_failure_samples"]:
        lines.append(f"    ! {sample}")
    return "\n".join(lines)
