"""Exposure unfairness (§3.3.2), after Singh & Joachims / Biega et al.

Higher-ranked workers receive more attention, so each worker gets exposure
``1 / ln(1 + rank)``.  A group's exposure share and relevance share are both
normalized over the group *plus all its comparable groups*; a fairly treated
group's exposure share should be proportional to its relevance share.  The
unfairness of group ``g`` is the L1 deviation::

    d<g,q,l> = | exp_share(g) − rel_share(g) |

which lies in ``[0, 1]``.  The paper's Figure 5 walks through the arithmetic:
Black Females have exposure mass 0.94 against 4.0 for their comparable
groups, and relevance mass 0.5 against 2.9, giving ``|0.19 − 0.15| = 0.04``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ...exceptions import MeasureError
from ..rankings import RankedList

__all__ = ["ExposureMeasure", "group_exposure_mass", "group_relevance_mass", "exposure_deviation"]


def group_exposure_mass(ranking: RankedList, members: Sequence[str]) -> float:
    """Sum of ``1/ln(1+rank)`` over the group members present in ``ranking``."""
    return sum(ranking.exposure(item) for item in members)


def group_relevance_mass(ranking: RankedList, members: Sequence[str]) -> float:
    """Sum of relevance (true score or rank proxy) over the group members."""
    return sum(ranking.relevance(item) for item in members)


def exposure_deviation(
    ranking: RankedList,
    group_members: Sequence[str],
    comparable_members: Mapping[str, Sequence[str]],
    denominator: str = "comparables",
) -> float:
    """``| exp_share(g) − rel_share(g) |`` for one group in one ranking.

    Parameters
    ----------
    ranking:
        The worker ranking for one ``(query, location)`` pair.
    group_members:
        Workers in the group under assessment (must appear in ``ranking``).
    comparable_members:
        Mapping from comparable-group name to its member workers.  Workers
        belonging to several comparable groups are counted once per group,
        matching the paper's per-group sums.
    denominator:
        ``"comparables"`` normalizes shares over ``g ∪ comparable groups``,
        exactly as §3.3.2's formulas and the Figure 5 worked example do.
        ``"ranking"`` normalizes over *every* ranked worker instead.  The
        two differ once rankings contain workers outside ``g`` and its
        comparables (e.g. taskers whose demographics could not be labeled);
        the paper's Table 8 reports *unequal* exposure for the mutually
        complementary groups Male and Female, which is only possible under
        ranking-wide normalization, so the experiment drivers use this mode
        (see DESIGN.md).
    """
    if not group_members:
        raise MeasureError("the assessed group has no members in this ranking")
    if denominator not in ("comparables", "ranking"):
        raise MeasureError(
            f"denominator must be 'comparables' or 'ranking', got {denominator!r}"
        )
    exp_g = group_exposure_mass(ranking, group_members)
    rel_g = group_relevance_mass(ranking, group_members)
    if denominator == "ranking":
        everyone = list(ranking)
        exp_total = group_exposure_mass(ranking, everyone)
        rel_total = group_relevance_mass(ranking, everyone)
    else:
        exp_total = exp_g
        rel_total = rel_g
        for members in comparable_members.values():
            exp_total += group_exposure_mass(ranking, members)
            rel_total += group_relevance_mass(ranking, members)
    if exp_total == 0.0:
        raise MeasureError("total exposure mass is zero; ranking must be non-empty")
    exposure_share = exp_g / exp_total
    relevance_share = rel_g / rel_total if rel_total > 0.0 else 0.0
    return abs(exposure_share - relevance_share)


@dataclass(frozen=True)
class ExposureMeasure:
    """Callable form of :func:`exposure_deviation` for the measure registry."""

    denominator: str = "comparables"
    name: str = "exposure"

    def __post_init__(self) -> None:
        if self.denominator not in ("comparables", "ranking"):
            raise MeasureError(
                f"denominator must be 'comparables' or 'ranking', "
                f"got {self.denominator!r}"
            )

    def __call__(
        self,
        ranking: RankedList,
        group_members: Sequence[str],
        comparable_members: Mapping[str, Sequence[str]],
    ) -> float:
        return exposure_deviation(
            ranking, group_members, comparable_members, denominator=self.denominator
        )

    group_value = __call__
    """The group-ranking protocol; exposure already has its exact shape."""


from .base import GROUP_RANKING, MeasureOption, register_measure  # noqa: E402

register_measure(
    "exposure",
    ExposureMeasure,
    family=GROUP_RANKING,
    description=(
        "L1 deviation between the group's exposure share and its relevance "
        "share (§3.3.2, after Singh & Joachims / Biega et al.)"
    ),
    options=(
        MeasureOption(
            "denominator",
            "string",
            "comparables",
            "share normalization: over the group plus its comparables "
            "(§3.3.2's formulas) or over the whole ranking",
            choices=("comparables", "ranking"),
        ),
    ),
)
