"""Jaccard comparison of ranked-result sets.

The Jaccard index ``|A ∩ B| / |A ∪ B|`` measures how much two users' result
*sets* overlap, ignoring order.  As an unfairness DIST the library defaults
to the Jaccard **distance** ``1 − index`` so that, like Kendall Tau, larger
values mean more divergent results (the paper's reading of its Google
results: "search results between White Females were the most different").

The paper's Figure 3 walks through the arithmetic on the raw *index*
(``(0.8 + 0.5) / 2 = 0.65``); ``mode="index"`` reproduces that literal
computation for the worked examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ...exceptions import MeasureError
from ..rankings import RankedList
from .base import register_measure

__all__ = ["JaccardMeasure", "jaccard_index", "jaccard_distance"]


def jaccard_index(left: Iterable[str], right: Iterable[str]) -> float:
    """``|A ∩ B| / |A ∪ B|`` of two item collections."""
    left_set = frozenset(left)
    right_set = frozenset(right)
    if not left_set and not right_set:
        raise MeasureError("Jaccard index of two empty sets is undefined")
    union = left_set | right_set
    return len(left_set & right_set) / len(union)


def jaccard_distance(left: Iterable[str], right: Iterable[str]) -> float:
    """``1 − jaccard_index``: a metric on finite sets."""
    return 1.0 - jaccard_index(left, right)


@dataclass(frozen=True)
class JaccardMeasure:
    """Jaccard comparison of two ranked lists' item sets.

    Parameters
    ----------
    mode:
        ``"distance"`` (default) returns ``1 − index`` so higher = more
        unfair; ``"index"`` returns the raw overlap, reproducing the paper's
        Figure 3 arithmetic.
    """

    mode: str = "distance"
    name: str = "jaccard"

    def __post_init__(self) -> None:
        if self.mode not in ("distance", "index"):
            raise MeasureError(f"mode must be 'distance' or 'index', got {self.mode!r}")

    def __call__(self, left: RankedList, right: RankedList) -> float:
        if self.mode == "index":
            return jaccard_index(left.item_set(), right.item_set())
        return jaccard_distance(left.item_set(), right.item_set())


from .base import MeasureOption, RANKED_LIST  # noqa: E402  (import-time)

register_measure(
    "jaccard",
    JaccardMeasure,
    family=RANKED_LIST,
    description=(
        "Jaccard comparison of two users' result sets, order-ignoring "
        "(§3.2; 'distance' mode is 1 − index)"
    ),
    options=(
        MeasureOption(
            "mode",
            "string",
            "distance",
            "'distance' (higher = more unfair) or the paper's Figure 3 raw "
            "'index'",
            choices=("distance", "index"),
        ),
    ),
)
