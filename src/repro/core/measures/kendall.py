"""Kendall Tau distance between (possibly top-k) ranked lists.

The paper follows Hannak et al. [12] in comparing personalized search-result
lists with Kendall Tau.  Because two users' top-k lists need not contain the
same items, the classic tau (defined on permutations of one universe) does
not apply directly; we implement Fagin, Kumar & Sivakumar's ``K^(p)`` metric
for top-k lists, normalized to ``[0, 1]``.

For an item pair ``{i, j}`` drawn from the union of the two lists:

* **both in both lists** — penalty 1 if the two lists order them oppositely;
* **both in one list, one of them in the other** — the missing item is known
  to rank below everything present, so the order is inferable: penalty 1 on
  disagreement, 0 otherwise;
* **one item only in the left list, the other only in the right** — the lists
  necessarily disagree: penalty 1;
* **both in one list, neither in the other** — nothing is known: penalty
  ``p`` (default 0.5, the neutral choice).

The total penalty is divided by the number of scored pairs, giving 0 for
identical lists and 1 for disjoint ones when ``p = 1`` (with the neutral
``p = 0.5`` disjoint lists score slightly below 1, since same-list pairs
contribute only the neutral penalty).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...exceptions import MeasureError
from ..rankings import RankedList
from .base import register_measure

__all__ = ["KendallTauMeasure", "kendall_tau_distance"]


@dataclass(frozen=True)
class KendallTauMeasure:
    """Normalized Kendall ``K^(p)`` top-k distance; see module docstring.

    Parameters
    ----------
    penalty:
        The ``p`` parameter for pairs whose relative order is unknowable
        (both items confined to one list).  Must lie in ``[0, 1]``.
    """

    penalty: float = 0.5
    name: str = "kendall"

    def __post_init__(self) -> None:
        if not 0.0 <= self.penalty <= 1.0:
            raise MeasureError(f"penalty must lie in [0, 1], got {self.penalty}")

    def __call__(self, left: RankedList, right: RankedList) -> float:
        return kendall_tau_distance(left, right, penalty=self.penalty)


def kendall_tau_distance(
    left: RankedList, right: RankedList, penalty: float = 0.5
) -> float:
    """Compute the normalized ``K^(p)`` distance between two ranked lists."""
    if len(left) == 0 or len(right) == 0:
        raise MeasureError("cannot compare empty ranked lists with Kendall Tau")
    left_pos = {item: index for index, item in enumerate(left.items)}
    right_pos = {item: index for index, item in enumerate(right.items)}
    universe = sorted(set(left_pos) | set(right_pos))

    total = 0.0
    pairs = 0
    for a_index, item_a in enumerate(universe):
        for item_b in universe[a_index + 1 :]:
            in_left = item_a in left_pos and item_b in left_pos
            in_right = item_a in right_pos and item_b in right_pos
            if in_left and in_right:
                pairs += 1
                left_order = left_pos[item_a] < left_pos[item_b]
                right_order = right_pos[item_a] < right_pos[item_b]
                if left_order != right_order:
                    total += 1.0
            elif in_left or in_right:
                pairs += 1
                present_pos, other_pos = (
                    (left_pos, right_pos) if in_left else (right_pos, left_pos)
                )
                a_elsewhere = item_a in other_pos
                b_elsewhere = item_b in other_pos
                if a_elsewhere or b_elsewhere:
                    # The absent item ranks below every present one; the order
                    # in the complete list is inferable.
                    ahead = item_a if present_pos[item_a] < present_pos[item_b] else item_b
                    inferable_ahead = item_a if a_elsewhere else item_b
                    if ahead != inferable_ahead:
                        total += 1.0
                else:
                    total += penalty
            else:
                # item_a only in one list, item_b only in the other: they
                # provably appear in opposite orders in the full rankings.
                pairs += 1
                total += 1.0
    if pairs == 0:
        # Both lists are the same singleton.
        return 0.0
    return total / pairs


register_measure("kendall", KendallTauMeasure)
