"""Kendall Tau distance between (possibly top-k) ranked lists.

The paper follows Hannak et al. [12] in comparing personalized search-result
lists with Kendall Tau.  Because two users' top-k lists need not contain the
same items, the classic tau (defined on permutations of one universe) does
not apply directly; we implement Fagin, Kumar & Sivakumar's ``K^(p)`` metric
for top-k lists, normalized to ``[0, 1]``.

For an item pair ``{i, j}`` drawn from the union of the two lists:

* **both in both lists** — penalty 1 if the two lists order them oppositely;
* **both in one list, one of them in the other** — the missing item is known
  to rank below everything present, so the order is inferable: penalty 1 on
  disagreement, 0 otherwise;
* **one item only in the left list, the other only in the right** — the lists
  necessarily disagree: penalty 1;
* **both in one list, neither in the other** — nothing is known: penalty
  ``p`` (default 0.5, the neutral choice).

The total penalty is divided by the number of scored pairs, giving 0 for
identical lists and 1 for disjoint ones when ``p = 1`` (with the neutral
``p = 0.5`` disjoint lists score slightly below 1, since same-list pairs
contribute only the neutral penalty).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...exceptions import MeasureError
from ..rankings import RankedList
from .base import register_measure

__all__ = [
    "KendallTauMeasure",
    "kendall_tau_distance",
    "kendall_tau_distance_reference",
]


@dataclass(frozen=True)
class KendallTauMeasure:
    """Normalized Kendall ``K^(p)`` top-k distance; see module docstring.

    Parameters
    ----------
    penalty:
        The ``p`` parameter for pairs whose relative order is unknowable
        (both items confined to one list).  Must lie in ``[0, 1]``.
    """

    penalty: float = 0.5
    name: str = "kendall"

    def __post_init__(self) -> None:
        if not 0.0 <= self.penalty <= 1.0:
            raise MeasureError(f"penalty must lie in [0, 1], got {self.penalty}")

    def __call__(self, left: RankedList, right: RankedList) -> float:
        return kendall_tau_distance(left, right, penalty=self.penalty)


def kendall_tau_distance(
    left: RankedList, right: RankedList, penalty: float = 0.5
) -> float:
    """Compute the normalized ``K^(p)`` distance between two ranked lists.

    Vectorized over the pair matrix: every case of the reference
    implementation reduces to counting pairs, so the total penalty is
    ``disagreements * 1 + unknowable_pairs * penalty`` — no per-pair python
    loop.  :func:`kendall_tau_distance_reference` keeps the case-by-case
    loop as the executable specification.
    """
    if len(left) == 0 or len(right) == 0:
        raise MeasureError("cannot compare empty ranked lists with Kendall Tau")
    left_pos = {item: index for index, item in enumerate(left.items)}
    right_pos = {item: index for index, item in enumerate(right.items)}
    universe = sorted(set(left_pos) | set(right_pos))
    n = len(universe)
    pairs = n * (n - 1) // 2
    if pairs == 0:
        # Both lists are the same singleton.
        return 0.0

    lp = np.array([left_pos.get(item, -1) for item in universe])
    rp = np.array([right_pos.get(item, -1) for item in universe])
    in_left = lp >= 0
    in_right = rp >= 0

    upper = np.triu(np.ones((n, n), dtype=bool), k=1)  # item_a index < item_b
    both_left = in_left[:, None] & in_left[None, :]
    both_right = in_right[:, None] & in_right[None, :]
    left_ahead = lp[:, None] < lp[None, :]  # a before b in the left list
    right_ahead = rp[:, None] < rp[None, :]

    # Case 1 — both items in both lists: penalty 1 on opposite orders.
    disagree = both_left & both_right & (left_ahead != right_ahead)

    # Case 2 — both items in exactly one list.  If one of them also appears
    # in the other list, the absent item is known to rank below it there, so
    # the order is inferable: penalty 1 unless the shared item is ahead in
    # the present list.  If neither appears elsewhere, penalty ``p``.
    only_left = both_left & ~both_right
    only_right = both_right & ~both_left
    disagree |= only_left & (
        (in_right[:, None] & ~left_ahead) | (in_right[None, :] & left_ahead)
    )
    disagree |= only_right & (
        (in_left[:, None] & ~right_ahead) | (in_left[None, :] & right_ahead)
    )
    unknown = (only_left & ~in_right[:, None] & ~in_right[None, :]) | (
        only_right & ~in_left[:, None] & ~in_left[None, :]
    )

    # Case 3 — the items are split across the lists: provably opposite orders.
    left_only = in_left & ~in_right
    right_only = in_right & ~in_left
    disagree |= (left_only[:, None] & right_only[None, :]) | (
        right_only[:, None] & left_only[None, :]
    )

    ones = int(np.count_nonzero(disagree & upper))
    unknowns = int(np.count_nonzero(unknown & upper))
    total = float(ones) + float(unknowns) * penalty
    return total / pairs


def kendall_tau_distance_reference(
    left: RankedList, right: RankedList, penalty: float = 0.5
) -> float:
    """The case-by-case pair loop the vectorized kernel is checked against."""
    if len(left) == 0 or len(right) == 0:
        raise MeasureError("cannot compare empty ranked lists with Kendall Tau")
    left_pos = {item: index for index, item in enumerate(left.items)}
    right_pos = {item: index for index, item in enumerate(right.items)}
    universe = sorted(set(left_pos) | set(right_pos))

    total = 0.0
    pairs = 0
    for a_index, item_a in enumerate(universe):
        for item_b in universe[a_index + 1 :]:
            in_left = item_a in left_pos and item_b in left_pos
            in_right = item_a in right_pos and item_b in right_pos
            if in_left and in_right:
                pairs += 1
                left_order = left_pos[item_a] < left_pos[item_b]
                right_order = right_pos[item_a] < right_pos[item_b]
                if left_order != right_order:
                    total += 1.0
            elif in_left or in_right:
                pairs += 1
                present_pos, other_pos = (
                    (left_pos, right_pos) if in_left else (right_pos, left_pos)
                )
                a_elsewhere = item_a in other_pos
                b_elsewhere = item_b in other_pos
                if a_elsewhere or b_elsewhere:
                    # The absent item ranks below every present one; the order
                    # in the complete list is inferable.
                    ahead = item_a if present_pos[item_a] < present_pos[item_b] else item_b
                    inferable_ahead = item_a if a_elsewhere else item_b
                    if ahead != inferable_ahead:
                        total += 1.0
                else:
                    total += penalty
            else:
                # item_a only in one list, item_b only in the other: they
                # provably appear in opposite orders in the full rankings.
                pairs += 1
                total += 1.0
    if pairs == 0:
        # Both lists are the same singleton.
        return 0.0
    return total / pairs


from .base import MeasureOption, RANKED_LIST  # noqa: E402  (import-time)

register_measure(
    "kendall",
    KendallTauMeasure,
    family=RANKED_LIST,
    description=(
        "normalized Kendall K^(p) top-k distance between two users' result "
        "lists (§3.2, after Fagin, Kumar & Sivakumar)"
    ),
    options=(
        MeasureOption(
            "penalty",
            "number",
            0.5,
            "neutral penalty for pairs whose relative order is unknowable, "
            "in [0, 1]",
        ),
    ),
    default_for=("google",),
)
