"""Earth Mover's Distance between unit-interval score histograms (§3.3.1).

For one-dimensional distributions on a shared equal-width bin layout the EMD
has a closed form: the L1 distance between the two cumulative distribution
functions, scaled by the bin width.  With both distributions normalized to
probability mass 1 and supported on ``[0, 1]``, the distance itself lies in
``[0, 1]`` — 0 for identical distributions, 1 when all mass sits at opposite
ends of the interval.  This matches the magnitudes the paper reports
(e.g. Figure 4's per-pair EMDs of 0.70 / 0.50 / 0.30).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from ...exceptions import MeasureError
from ...stats.histograms import DEFAULT_BINS, UnitHistogram
from ..rankings import RankedList

__all__ = ["EmdMeasure", "emd", "emd_from_values", "emd_from_values_reference"]


def emd(left: UnitHistogram, right: UnitHistogram) -> float:
    """EMD between two histograms with identical bin layouts.

    Both histograms are normalized to PMFs first, so only the *shapes* of the
    two score distributions matter, not the group sizes — a 5-worker group
    and a 500-worker group with the same score profile are at distance 0.
    """
    if left.bins != right.bins:
        raise MeasureError(
            f"cannot compare histograms with different bin counts "
            f"({left.bins} vs {right.bins})"
        )
    left_pmf = left.pmf()
    right_pmf = right.pmf()
    bin_width = 1.0 / left.bins
    cdf_gap = np.cumsum(left_pmf - right_pmf)
    return float(np.abs(cdf_gap).sum() * bin_width)


def _counts(values: Iterable[float], bins: int) -> np.ndarray:
    """Bin one score collection (same binning, validation, and error
    messages as :meth:`UnitHistogram.from_values`, no histogram object)."""
    data = np.asarray(list(values), dtype=float)
    if data.size and (np.any(data < 0.0) or np.any(data > 1.0)):
        bad = data[(data < 0.0) | (data > 1.0)][0]
        raise MeasureError(f"histogram values must lie in [0, 1]; got {bad!r}")
    if bins <= 0:
        raise MeasureError(f"bin count must be positive, got {bins}")
    counts, _ = np.histogram(data, bins=bins, range=(0.0, 1.0))
    return counts.astype(float)


def _normalize(counts: np.ndarray) -> np.ndarray:
    total = float(counts.sum())
    if total == 0.0:
        raise MeasureError("cannot normalize an empty histogram")
    return counts / total


def emd_from_values(
    left_values: Iterable[float],
    right_values: Iterable[float],
    bins: int = DEFAULT_BINS,
) -> float:
    """Histogram two score collections, then EMD — without materializing the
    two :class:`UnitHistogram` instances the reference path builds."""
    left = _counts(left_values, bins)
    right = _counts(right_values, bins)
    cdf_gap = np.cumsum(_normalize(left) - _normalize(right))
    return float(np.abs(cdf_gap).sum() * (1.0 / bins))


def emd_from_values_reference(
    left_values: Iterable[float],
    right_values: Iterable[float],
    bins: int = DEFAULT_BINS,
) -> float:
    """The histogram-object path the fast :func:`emd_from_values` is
    checked against (identical binning and float arithmetic)."""
    return emd(
        UnitHistogram.from_values(left_values, bins=bins),
        UnitHistogram.from_values(right_values, bins=bins),
    )


@dataclass(frozen=True)
class EmdMeasure:
    """EMD between the relevance-score histograms of two worker groups.

    Callable on two iterables of scores in ``[0, 1]`` (one per group);
    the bin count is fixed at construction so every comparison within an
    experiment shares one layout.
    """

    bins: int = DEFAULT_BINS
    name: str = "emd"

    def __post_init__(self) -> None:
        if self.bins <= 0:
            raise MeasureError(f"bin count must be positive, got {self.bins}")

    def __call__(
        self, left_scores: Iterable[float], right_scores: Iterable[float]
    ) -> float:
        return emd_from_values(left_scores, right_scores, bins=self.bins)

    def group_value(
        self,
        ranking: RankedList,
        group_members: Sequence[str],
        comparable_members: Mapping[str, Sequence[str]],
    ) -> float:
        """§3.3.1: average EMD between the group's relevance histogram and
        each populated comparable group's (the group-ranking protocol)."""
        if not comparable_members:
            raise MeasureError("EMD needs at least one populated comparable group")
        own = UnitHistogram.from_values(
            [ranking.relevance(item) for item in group_members], bins=self.bins
        )
        distances = [
            emd(
                own,
                UnitHistogram.from_values(
                    [ranking.relevance(item) for item in members], bins=self.bins
                ),
            )
            for members in comparable_members.values()
        ]
        return statistics.fmean(distances)


from .base import GROUP_RANKING, MeasureOption, register_measure  # noqa: E402

register_measure(
    "emd",
    EmdMeasure,
    family=GROUP_RANKING,
    description=(
        "average Earth Mover's Distance between the group's relevance-score "
        "histogram and each comparable group's (§3.3.1)"
    ),
    options=(
        MeasureOption(
            "bins", "integer", DEFAULT_BINS, "histogram bin count (positive)"
        ),
    ),
    default_for=("taskrabbit",),
)
