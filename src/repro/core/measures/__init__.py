"""Unfairness distance measures: Kendall Tau, Jaccard, EMD, and Exposure."""

from .base import RankedListMeasure, available_measures, get_measure, register_measure
from .emd import EmdMeasure, emd, emd_from_values
from .exposure import (
    ExposureMeasure,
    exposure_deviation,
    group_exposure_mass,
    group_relevance_mass,
)
from .jaccard import JaccardMeasure, jaccard_distance, jaccard_index
from .kendall import KendallTauMeasure, kendall_tau_distance

__all__ = [
    "RankedListMeasure",
    "available_measures",
    "get_measure",
    "register_measure",
    "EmdMeasure",
    "emd",
    "emd_from_values",
    "ExposureMeasure",
    "exposure_deviation",
    "group_exposure_mass",
    "group_relevance_mass",
    "JaccardMeasure",
    "jaccard_distance",
    "jaccard_index",
    "KendallTauMeasure",
    "kendall_tau_distance",
]
