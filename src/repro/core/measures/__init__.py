"""Unfairness distance measures: Kendall Tau, Jaccard, EMD, Exposure, FA*IR."""

from .base import (
    GROUP_RANKING,
    RANKED_LIST,
    GroupRankingMeasure,
    MeasureInfo,
    MeasureOption,
    RankedListMeasure,
    available_measures,
    default_measure_for_site,
    family_for_site,
    get_measure,
    measure_info,
    measures_for_family,
    register_measure,
    unregister_measure,
)
from .emd import EmdMeasure, emd, emd_from_values
from .exposure import (
    ExposureMeasure,
    exposure_deviation,
    group_exposure_mass,
    group_relevance_mass,
)
from .fair import FairMeasure, adjusted_alpha, mtable, prefix_failures
from .jaccard import JaccardMeasure, jaccard_distance, jaccard_index
from .kendall import KendallTauMeasure, kendall_tau_distance

__all__ = [
    "GROUP_RANKING",
    "RANKED_LIST",
    "GroupRankingMeasure",
    "MeasureInfo",
    "MeasureOption",
    "RankedListMeasure",
    "available_measures",
    "default_measure_for_site",
    "family_for_site",
    "get_measure",
    "measure_info",
    "measures_for_family",
    "register_measure",
    "unregister_measure",
    "EmdMeasure",
    "emd",
    "emd_from_values",
    "ExposureMeasure",
    "exposure_deviation",
    "group_exposure_mass",
    "group_relevance_mass",
    "FairMeasure",
    "adjusted_alpha",
    "mtable",
    "prefix_failures",
    "JaccardMeasure",
    "jaccard_distance",
    "jaccard_index",
    "KendallTauMeasure",
    "kendall_tau_distance",
]
