"""FA*IR ranked group fairness (Zehlike et al., CIKM 2017).

A ranking of candidates, some of whom belong to a *protected* group, is
**ranked-group-fair** at significance ``alpha`` if every prefix of length
``t`` contains at least ``m(t)`` protected candidates, where ``m(t)`` is the
inverse binomial CDF

    m(t) = min{ m : F(m; t, p) > alpha }

under the null hypothesis that each position is protected independently
with probability ``p``.  Testing every prefix multiplies the chance that a
genuinely fair ranking fails somewhere, so FA*IR replaces ``alpha`` with a
*corrected* ``alpha_c``: the largest significance whose mtable keeps the
family-wise failure probability of a fair ranking at or below ``alpha``
(found by binary search over an exact dynamic program).

:class:`FairMeasure` turns the test into a group-ranking unfairness value in
``[0, 1]``: the fraction of prefixes at which the ranking *fails* the test
for the assessed group.  ``0.0`` means the ranking passes at every prefix —
exactly the condition :func:`repro.core.interventions.fair_rerank`
re-establishes — and larger values mean the group is starved of prefix
representation at more depths.

Everything here is exact and deterministic: binomial PMFs evolve by the
``Bin(t, p) -> Bin(t+1, p)`` convolution, the DP prunes states below
``m(t)``, and results are cached per ``(n, p, alpha)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Mapping, Sequence

import numpy as np

from ...exceptions import MeasureError
from ..rankings import RankedList
from .base import GROUP_RANKING, MeasureOption, register_measure

__all__ = [
    "FairMeasure",
    "adjusted_alpha",
    "mtable",
    "prefix_failures",
]

DEFAULT_ALPHA = 0.1
"""The paper's significance level; FA*IR's own experiments use it too."""

_MAX_ALPHA = 0.5
"""Above one-half the binomial median argument breaks down; reject early."""


def _validate(n: int, p: float, alpha: float) -> None:
    if n <= 0:
        raise MeasureError(f"ranking length must be positive, got {n}")
    if not 0.0 < p < 1.0:
        raise MeasureError(f"protected probability p must lie in (0, 1), got {p}")
    if not 0.0 < alpha < _MAX_ALPHA:
        raise MeasureError(
            f"significance alpha must lie in (0, {_MAX_ALPHA}), got {alpha}"
        )


@lru_cache(maxsize=512)
def mtable(n: int, p: float, alpha: float) -> tuple[int, ...]:
    """``m(1..n)``: the minimum protected count required at every prefix.

    ``m(t)`` is the smallest ``m`` with ``F(m; t, p) > alpha``.  The
    binomial PMF of each prefix length evolves from the previous one by a
    single convolution step, so the whole table costs ``O(n^2)``.
    """
    _validate(n, p, alpha)
    pmf = np.array([1.0])  # Bin(0, p)
    table: list[int] = []
    for _ in range(n):
        grown = np.zeros(pmf.size + 1)
        grown[: pmf.size] += pmf * (1.0 - p)
        grown[1:] += pmf * p
        pmf = grown
        # First index whose CDF strictly exceeds alpha.
        table.append(int(np.searchsorted(np.cumsum(pmf), alpha, side="right")))
    return tuple(table)


def _failure_probability(table: tuple[int, ...], p: float) -> float:
    """Probability that a fair ranking fails the mtable at *some* prefix.

    Exact DP over the protected count: evolve the binomial state vector one
    position at a time and zero out every state below ``m(t)`` — mass that
    leaves the vector is exactly the mass of rankings failing first at
    ``t``.  What survives to the end is the pass probability.
    """
    pmf = np.array([1.0])
    for required in table:
        grown = np.zeros(pmf.size + 1)
        grown[: pmf.size] += pmf * (1.0 - p)
        grown[1:] += pmf * p
        grown[:required] = 0.0
        pmf = grown
    return 1.0 - float(pmf.sum())


@lru_cache(maxsize=512)
def adjusted_alpha(n: int, p: float, alpha: float) -> float:
    """The multiple-tests corrected significance ``alpha_c``.

    The largest ``a <= alpha`` whose mtable keeps a fair ranking's
    family-wise failure probability at or below ``alpha``; found by binary
    search (failure probability is monotone in ``a``).
    """
    _validate(n, p, alpha)
    if _failure_probability(mtable(n, p, alpha), p) <= alpha:
        return alpha
    low, high = 0.0, alpha
    for _ in range(32):
        mid = (low + high) / 2.0
        if mid <= 0.0:
            break
        if _failure_probability(mtable(n, p, mid), p) <= alpha:
            low = mid
        else:
            high = mid
    return low


def prefix_failures(
    ranking: RankedList,
    protected: frozenset[str] | set[str],
    p: float,
    alpha: float,
    correct: bool = True,
) -> int:
    """How many prefixes of ``ranking`` fail the FA*IR test.

    ``0`` means ranked-group-fair at every depth.  With ``correct`` the
    mtable is built at the family-wise adjusted significance, matching the
    FA*IR paper's test (and what :func:`~repro.core.interventions.
    fair_rerank` guarantees).
    """
    n = len(ranking)
    effective = adjusted_alpha(n, p, alpha) if correct else alpha
    if effective <= 0.0:
        return 0
    table = mtable(n, p, effective)
    failures = 0
    count = 0
    for index, item in enumerate(ranking):
        if item in protected:
            count += 1
        if count < table[index]:
            failures += 1
    return failures


@dataclass(frozen=True)
class FairMeasure:
    """FA*IR's test as a group-ranking unfairness value in ``[0, 1]``.

    The assessed group is the protected one; everyone else in the ranking
    (comparables and unlabeled workers alike) is unprotected, which is also
    exactly how the re-ranking interventions see the list — so a ranking
    re-ranked by ``fair_rerank`` scores ``0.0`` here.

    Parameters
    ----------
    alpha:
        Significance level of the per-prefix binomial test.
    p:
        Null-hypothesis protected probability; defaults to the group's
        actual share of the ranking (testing the *distribution* of the
        group through the prefixes, not its overall size).
    correct:
        Apply the multiple-tests alpha correction (FA*IR's default).
    """

    alpha: float = DEFAULT_ALPHA
    p: float | None = None
    correct: bool = True
    name: str = "fair"

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < _MAX_ALPHA:
            raise MeasureError(
                f"significance alpha must lie in (0, {_MAX_ALPHA}), "
                f"got {self.alpha}"
            )
        if self.p is not None and not 0.0 < self.p < 1.0:
            raise MeasureError(
                f"protected probability p must lie in (0, 1), got {self.p}"
            )

    def group_value(
        self,
        ranking: RankedList,
        group_members: Sequence[str],
        comparable_members: Mapping[str, Sequence[str]],
    ) -> float:
        """Fraction of prefixes at which the ranking fails the FA*IR test."""
        if not group_members:
            raise MeasureError("the assessed group has no members in this ranking")
        n = len(ranking)
        if n == 0:
            raise MeasureError("cannot test an empty ranking for group fairness")
        protected = frozenset(group_members)
        p = self.p if self.p is not None else len(protected) / n
        if not 0.0 < p < 1.0:
            # The group is everyone (or absent): no prefix can under- or
            # over-represent it, so the test trivially passes.
            return 0.0
        return prefix_failures(
            ranking, protected, p, self.alpha, correct=self.correct
        ) / n


register_measure(
    "fair",
    FairMeasure,
    family=GROUP_RANKING,
    description=(
        "FA*IR ranked group fairness (Zehlike et al.): fraction of ranking "
        "prefixes where the group's count falls below the alpha-corrected "
        "binomial mtable"
    ),
    options=(
        MeasureOption(
            "alpha", "number", DEFAULT_ALPHA,
            "significance level of the per-prefix binomial test, in (0, 0.5)",
        ),
        MeasureOption(
            "p", "number", None,
            "null-hypothesis protected probability; defaults to the group's "
            "share of the ranking",
        ),
        MeasureOption(
            "correct", "boolean", True,
            "apply the family-wise multiple-tests alpha correction",
        ),
    ),
)
