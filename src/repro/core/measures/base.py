"""Measure protocols and the measure registry.

Two families of measures exist, mirroring the paper's two site types:

* **Ranked-list measures** (search engines, §3.2) compare two users' result
  lists and return a distance in ``[0, 1]``; higher means more different,
  hence more unfair.  Implementations: Kendall Tau and Jaccard.
* **Group-ranking measures** (marketplaces, §3.3) score a *group* against its
  comparable groups inside one ranking of workers.  Implementations: EMD on
  relevance histograms and Exposure deviation.

The registry maps the paper's measure names to constructors so experiment
configuration can name measures as plain strings (``"emd"``, ``"exposure"``,
``"kendall"``, ``"jaccard"``).
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from ...exceptions import MeasureError
from ..rankings import RankedList

__all__ = ["RankedListMeasure", "register_measure", "get_measure", "available_measures"]


@runtime_checkable
class RankedListMeasure(Protocol):
    """A distance between two ranked lists, in ``[0, 1]``."""

    name: str

    def __call__(self, left: RankedList, right: RankedList) -> float: ...


_REGISTRY: dict[str, Callable[..., object]] = {}


def register_measure(name: str, factory: Callable[..., object]) -> None:
    """Register a measure constructor under ``name`` (case-insensitive)."""
    key = name.lower()
    if key in _REGISTRY:
        raise MeasureError(f"measure {name!r} is already registered")
    _REGISTRY[key] = factory


def get_measure(name: str, **options: object) -> object:
    """Instantiate a registered measure by name.

    Raises :class:`MeasureError` with the list of known names on a miss.
    """
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        raise MeasureError(
            f"unknown measure {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(**options)


def available_measures() -> list[str]:
    """Names of all registered measures."""
    return sorted(_REGISTRY)
