"""Measure protocols, measure metadata, and the measure registry.

Two families of measures exist, mirroring the paper's two site types:

* **Ranked-list measures** (``RANKED_LIST``; search engines, §3.2) compare
  two users' result lists and return a distance in ``[0, 1]``; higher means
  more different, hence more unfair.  Implementations: Kendall Tau and
  Jaccard.
* **Group-ranking measures** (``GROUP_RANKING``; marketplaces, §3.3) score a
  *group* against its comparable groups inside one ranking of workers.
  Implementations: EMD on relevance histograms, Exposure deviation, and the
  FA*IR ranked-group-fairness test.

The registry maps the paper's measure names to constructors **plus
metadata** — family, option schema, and which site type defaults to the
measure — so everything downstream (the unfairness engines, the service's
validation tables, ``GET /v1/schema``, the CLI help) is generated from one
place.  Registering a new measure here makes it immediately addressable by
name everywhere; no other layer hard-codes measure names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Protocol, Sequence, runtime_checkable

from ...exceptions import MeasureError
from ..rankings import RankedList

__all__ = [
    "GROUP_RANKING",
    "RANKED_LIST",
    "GroupRankingMeasure",
    "MeasureInfo",
    "MeasureOption",
    "RankedListMeasure",
    "available_measures",
    "default_measure_for_site",
    "family_for_site",
    "get_measure",
    "measure_info",
    "measures_for_family",
    "register_measure",
    "unregister_measure",
]

RANKED_LIST = "ranked_list"
"""Family of measures comparing two ranked lists (search engines, §3.2)."""

GROUP_RANKING = "group_ranking"
"""Family of measures scoring one group inside one ranking (§3.3)."""

FAMILIES = (RANKED_LIST, GROUP_RANKING)


@runtime_checkable
class RankedListMeasure(Protocol):
    """A distance between two ranked lists, in ``[0, 1]``."""

    name: str

    def __call__(self, left: RankedList, right: RankedList) -> float: ...


@runtime_checkable
class GroupRankingMeasure(Protocol):
    """A score for one group against its comparables in one ranking.

    ``group_members`` are the assessed group's items present in the
    ranking; ``comparable_members`` maps each populated comparable group's
    name to its items.  Higher values mean more unfair.
    """

    name: str

    def group_value(
        self,
        ranking: RankedList,
        group_members: Sequence[str],
        comparable_members: Mapping[str, Sequence[str]],
    ) -> float: ...


@dataclass(frozen=True)
class MeasureOption:
    """One constructor option a measure accepts, for schema generation."""

    name: str
    type: str
    default: object = None
    description: str = ""
    choices: tuple[str, ...] | None = None

    def describe(self) -> dict:
        entry: dict = {
            "name": self.name,
            "type": self.type,
            "description": self.description,
        }
        if self.default is not None:
            entry["default"] = self.default
        if self.choices is not None:
            entry["choices"] = list(self.choices)
        return entry


@dataclass(frozen=True)
class MeasureInfo:
    """Everything the registry knows about one measure."""

    name: str
    factory: Callable[..., object] = field(compare=False)
    family: str | None = None
    description: str = ""
    options: tuple[MeasureOption, ...] = ()
    default_for: tuple[str, ...] = ()
    """Site types (``"taskrabbit"`` / ``"google"``) whose datasets default
    to this measure when a request names none."""

    def option_names(self) -> frozenset[str]:
        return frozenset(option.name for option in self.options)

    def filter_options(self, candidates: Mapping[str, object]) -> dict:
        """Keep only the candidate kwargs this measure declares.

        The unfairness engines collect every option their signature offers
        (``bins``, ``denominator``, ``penalty``, …) and let the declared
        schema decide what reaches the constructor, so one engine serves
        any measure of its family without knowing the option sets.
        """
        names = self.option_names()
        return {
            key: value
            for key, value in candidates.items()
            if key in names and value is not None
        }

    def describe(self) -> dict:
        """The ``GET /v1/schema`` entry for this measure."""
        return {
            "name": self.name,
            "family": self.family,
            "description": self.description,
            "options": [option.describe() for option in self.options],
            "default_for": list(self.default_for),
        }


_REGISTRY: dict[str, MeasureInfo] = {}


def register_measure(
    name: str,
    factory: Callable[..., object],
    family: str | None = None,
    description: str = "",
    options: Sequence[MeasureOption] = (),
    default_for: Sequence[str] = (),
) -> None:
    """Register a measure constructor under ``name`` (case-insensitive).

    ``family`` declares which engine can run the measure; a measure
    registered without one is addressable by :func:`get_measure` but no
    engine will accept it (the family check is how a ranked-list measure is
    kept out of a marketplace request with a clear 422).
    """
    key = name.lower()
    if key in _REGISTRY:
        raise MeasureError(f"measure {name!r} is already registered")
    if family is not None and family not in FAMILIES:
        raise MeasureError(f"family must be one of {FAMILIES}, got {family!r}")
    _REGISTRY[key] = MeasureInfo(
        name=key,
        factory=factory,
        family=family,
        description=description,
        options=tuple(options),
        default_for=tuple(default_for),
    )


def unregister_measure(name: str) -> None:
    """Remove a registered measure (test cleanup for dynamic registration)."""
    _REGISTRY.pop(name.lower(), None)


def measure_info(name: str) -> MeasureInfo:
    """The metadata record for ``name``; :class:`MeasureError` on a miss."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise MeasureError(
            f"unknown measure {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def get_measure(name: str, **options: object) -> object:
    """Instantiate a registered measure by name.

    Raises :class:`MeasureError` with the list of known names on a miss.
    """
    return measure_info(name).factory(**options)


def available_measures() -> list[str]:
    """Names of all registered measures."""
    return sorted(_REGISTRY)


def measures_for_family(family: str) -> list[str]:
    """Names of the registered measures in one family, sorted."""
    return sorted(key for key, info in _REGISTRY.items() if info.family == family)


def default_measure_for_site(site: str) -> str:
    """The measure a site type defaults to, from registry metadata.

    Exactly one registered measure should claim each site type via
    ``default_for``; with several, the alphabetically first wins (so the
    answer is at least deterministic), and with none the site type is
    unservable — a loud error beats a silent guess.
    """
    for name in available_measures():
        if site in _REGISTRY[name].default_for:
            return name
    raise MeasureError(
        f"no registered measure declares itself the default for site "
        f"{site!r}; register one with default_for=({site!r},)"
    )


def family_for_site(site: str) -> str | None:
    """The measure family a site type's datasets run (via its default)."""
    return measure_info(default_measure_for_site(site)).family
