"""Shared-sweep planning for batched fairness queries.

Audit workloads rarely ask one question: they sweep grids — every dimension
× order × k over the same cube — and answering each grid point with its own
threshold-algorithm run repeats the identical sorted/random access pattern
over and over.  This module is the core of the batch planner behind
``POST /batch``: requests that agree on everything but ``k`` (the
*homogeneous* case) are answered by **one** Fagin sweep at ``k_max`` whose
heap walk is then sliced per request.

Slicing is exact, not approximate: :func:`~repro.core.fagin.top_k` orders
its result best-first with a deterministic tie-break, so the top-``k`` for
any ``k ≤ k_max`` is literally the first ``k`` entries of the ``k_max``
run.  Every sliced :class:`~repro.core.fagin.TopKResult` shares the sweep's
frozen :class:`~repro.core.indices.AccessStats`, which is how callers can
account the sweep's cost exactly once.

:func:`group_key` is the grouping contract shared with the service layer:
two sub-requests may share a sweep iff they agree on it.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence

from ..exceptions import AlgorithmError
from .cube import UnfairnessCube
from .fagin import TopKResult, top_k
from .indices import IndexFamily

__all__ = ["group_key", "slice_top_k", "multi_top_k", "plan_groups"]


def group_key(
    dataset: str, measure: str, dimension: str, order: str
) -> tuple[str, str, str, str]:
    """The sharing contract: requests with equal keys ride one index sweep."""
    return (dataset, measure, dimension, order)


def slice_top_k(result: TopKResult, k: int) -> TopKResult:
    """The exact top-``k`` carved out of a ``k_max`` sweep result.

    The slice keeps the sweep's ``rounds``, ``early_stopped``, and (shared)
    ``stats`` so each derived result documents the cost of the sweep that
    produced it — callers accounting totals must count that sweep once, not
    once per slice.
    """
    if k <= 0:
        raise AlgorithmError(f"k must be positive, got {k}")
    return TopKResult(
        entries=result.entries[:k],
        order=result.order,
        rounds=result.rounds,
        stats=result.stats,
        early_stopped=result.early_stopped,
    )


def multi_top_k(
    cube: UnfairnessCube,
    dimension: str,
    ks: Iterable[int],
    order: str = "most",
    family: IndexFamily | None = None,
) -> dict[int, TopKResult]:
    """Answer every ``k`` in ``ks`` from a single threshold-algorithm sweep.

    Runs :func:`~repro.core.fagin.top_k` once at ``max(ks)`` and slices,
    so an audit grid of n distinct ``k`` values costs one sweep's accesses
    instead of n.  Returns ``{k: result}`` for each distinct requested ``k``.
    """
    wanted = sorted(set(ks))
    if not wanted:
        raise AlgorithmError("multi_top_k needs at least one k")
    for k in wanted:
        if k <= 0:
            raise AlgorithmError(f"k must be positive, got {k}")
    full = top_k(cube, dimension, wanted[-1], order=order, family=family)
    results = {wanted[-1]: full}
    for k in wanted[:-1]:
        results[k] = slice_top_k(full, k)
    return results


def plan_groups(
    items: Sequence[tuple[Hashable, object]]
) -> Mapping[Hashable, list[object]]:
    """Group planner inputs by their sharing key, preserving arrival order.

    ``items`` are ``(key, payload)`` pairs — typically ``(group_key(...),
    parsed_request)`` — and the result maps each distinct key to its
    payloads.  Kept dependency-free so the service layer and offline CLI
    share one grouping behavior.
    """
    groups: dict[Hashable, list[object]] = {}
    for key, payload in items:
        groups.setdefault(key, []).append(payload)
    return groups
