"""Ranked-list abstractions shared by both kinds of sites.

Search engines produce one :class:`RankedList` of *result identifiers* per
user (``E_q^l(u)`` in the paper).  Marketplaces produce one ranked list of
*workers* per ``(query, location)`` pair, optionally with the true scores
``f_q^l(w)``.  Everything downstream — Kendall Tau, Jaccard, EMD histograms,
exposure — consumes these lists.

Rank positions are 1-based, matching the paper:

* relevance proxy   ``rel_q^l(w) = 1 − rank(w,q,l) / N``       (§3.3.1)
* exposure          ``exp_q^l(w) = 1 / ln(1 + rank(w,q,l))``   (§3.3.2)

With ``rank = 1`` exposure is ``1/ln 2 ≈ 1.44``; the paper's Figure 5 numbers
(0.94 and 4.0) confirm the natural logarithm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from ..exceptions import MeasureError

__all__ = ["RankedList", "relevance_from_rank", "exposure_from_rank"]


def relevance_from_rank(rank: int, n: int) -> float:
    """``1 − rank/N``: rank-derived relevance used when true scores are absent."""
    if rank < 1:
        raise MeasureError(f"ranks are 1-based; got {rank}")
    if n < rank:
        raise MeasureError(f"rank {rank} exceeds result-set size {n}")
    return 1.0 - rank / n


def exposure_from_rank(rank: int) -> float:
    """``1 / ln(1 + rank)``: position-bias exposure of a ranked item."""
    if rank < 1:
        raise MeasureError(f"ranks are 1-based; got {rank}")
    return 1.0 / math.log(1.0 + rank)


@dataclass(frozen=True)
class RankedList:
    """An ordered list of item identifiers, optionally scored.

    Parameters
    ----------
    items:
        Item identifiers from best (rank 1) to worst.  Duplicates are
        rejected — an item cannot occupy two ranks.
    scores:
        Optional mapping from item to its true score ``f_q^l`` in ``[0, 1]``.
        When absent, :meth:`relevance` falls back to the rank proxy.
    """

    items: tuple[str, ...]
    scores: Mapping[str, float] | None = None

    def __init__(
        self, items: Sequence[str], scores: Mapping[str, float] | None = None
    ) -> None:
        items = tuple(items)
        if len(set(items)) != len(items):
            raise MeasureError("a ranked list cannot contain duplicate items")
        if scores is not None:
            scores = dict(scores)
            missing = [item for item in items if item not in scores]
            if missing:
                raise MeasureError(f"scores missing for ranked items: {missing[:3]}")
            for item, score in scores.items():
                if not 0.0 <= score <= 1.0:
                    raise MeasureError(
                        f"scores must lie in [0, 1]; item {item!r} has {score!r}"
                    )
        object.__setattr__(self, "items", items)
        object.__setattr__(self, "scores", scores)
        # 1-based rank of every item, built once: rank()/exposure()/relevance()
        # are the innermost calls of the exposure kernel, and rebuilding this
        # dict per call made group mass sums quadratic in the ranking length.
        object.__setattr__(
            self, "_pos", {item: index + 1 for index, item in enumerate(items)}
        )

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[str]:
        return iter(self.items)

    def __contains__(self, item: object) -> bool:
        return item in self._positions()

    def _positions(self) -> dict[str, int]:
        return self._pos

    def rank(self, item: str) -> int:
        """1-based rank of ``item``; raises :class:`MeasureError` if absent."""
        try:
            return self._pos[item]
        except KeyError:
            raise MeasureError(f"item {item!r} is not in this ranked list") from None

    def relevance(self, item: str) -> float:
        """True score if available, else the ``1 − rank/N`` proxy."""
        if self.scores is not None:
            return self.scores[item]
        return relevance_from_rank(self.rank(item), len(self))

    def exposure(self, item: str) -> float:
        """Position-bias exposure ``1 / ln(1 + rank)`` of ``item``."""
        return exposure_from_rank(self.rank(item))

    def top(self, k: int) -> "RankedList":
        """The prefix of the first ``k`` items (scores restricted accordingly)."""
        if k < 0:
            raise MeasureError(f"k must be non-negative, got {k}")
        prefix = self.items[:k]
        scores = None
        if self.scores is not None:
            scores = {item: self.scores[item] for item in prefix}
        return RankedList(prefix, scores)

    def item_set(self) -> frozenset[str]:
        """The unordered set of items, for Jaccard-style comparisons."""
        return frozenset(self.items)
