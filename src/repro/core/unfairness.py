"""Unfairness engines: computing ``d<g,q,l>`` on both site types (§3.2–3.4).

An *engine* turns raw observations into the scalar unfairness of a group for
one ``(query, location)`` pair:

* :class:`SearchEngineUnfairness` implements Equation 1 — the average, over
  the comparable groups ``g'`` of ``g``, of the average pairwise ranked-list
  distance (Kendall Tau or Jaccard) between users of ``g`` and users of
  ``g'``.
* :class:`MarketplaceUnfairness` implements §3.3 — any *group-ranking*
  measure scoring ``g`` against its populated comparable groups inside one
  worker ranking (EMD §3.3.1, exposure deviation §3.3.2, FA*IR, …).

Both engines resolve their measure through the registry in
:mod:`repro.core.measures.base`: the registered family decides which engine
accepts the measure, and the registered option schema decides which of the
engine's constructor knobs (``bins``, ``penalty``, …) reach the measure's
factory.  Registering a new measure of the right family makes it servable
here — and therefore by the query service — with no engine edits.

Both expose the same ``unfairness(group, query, location)`` interface plus
the §3.4 aggregations over sets of queries/locations/groups, so the cube,
index, and algorithm layers are agnostic to the site type.
"""

from __future__ import annotations

import statistics
from typing import Iterable, Protocol, Sequence

from ..data.schema import MarketplaceDataset, SearchDataset
from ..exceptions import DataError, MeasureError
from ..stats.histograms import DEFAULT_BINS
from .attributes import AttributeSchema
from .groups import Group, comparable_groups
from .measures.base import (
    GROUP_RANKING,
    RANKED_LIST,
    measure_info,
    measures_for_family,
)

__all__ = [
    "UnfairnessEngine",
    "SearchEngineUnfairness",
    "MarketplaceUnfairness",
    "aggregate_unfairness",
]


class UnfairnessEngine(Protocol):
    """The interface every site-specific engine satisfies."""

    schema: AttributeSchema

    def unfairness(self, group: Group, query: str, location: str) -> float:
        """``d<g,q,l>`` — unfairness of ``group`` for one query/location."""
        ...

    def defined_for(self, group: Group, query: str, location: str) -> bool:
        """True when ``d<g,q,l>`` is computable from the observations."""
        ...


def _build_measure(
    measure: str, family: str, site_kind: str, candidates: dict
) -> object:
    """Instantiate ``measure`` via the registry, enforcing its family.

    ``candidates`` holds every option the engine's signature offers; the
    measure's declared option schema filters them, so e.g. ``bins`` never
    reaches the exposure constructor and unknown measures list the right
    family's alternatives in the error.
    """
    info = measure_info(measure)
    if info.family != family:
        raise MeasureError(
            f"{site_kind} engines need a {family} measure; {measure!r} is "
            f"{info.family or 'family-less'} (available: "
            f"{measures_for_family(family)})"
        )
    return info.factory(**info.filter_options(candidates))


class SearchEngineUnfairness:
    """Equation 1 on a :class:`~repro.data.schema.SearchDataset`.

    Parameters
    ----------
    dataset:
        Observed per-user result lists.
    schema:
        The protected-attribute schema defining comparable groups.
    measure:
        Any registered ranked-list measure (``"kendall"`` by default) — the
        DIST between two users' ranked lists.
    penalty:
        Kendall ``K^(p)`` neutral-pair penalty (offered to every measure;
        only those declaring the option receive it).
    jaccard_mode:
        ``"distance"`` or ``"index"`` (reaches measures declaring ``mode``).
    measure_options:
        Further options forwarded to the measure's constructor when its
        registered option schema declares them.
    """

    def __init__(
        self,
        dataset: SearchDataset,
        schema: AttributeSchema,
        measure: str = "kendall",
        penalty: float = 0.5,
        jaccard_mode: str = "distance",
        **measure_options,
    ) -> None:
        self.dataset = dataset
        self.schema = schema
        self.measure_name = measure.lower()
        self.measure = _build_measure(
            self.measure_name,
            RANKED_LIST,
            "search-engine",
            {"penalty": penalty, "mode": jaccard_mode, **measure_options},
        )
        self._dist = self.measure

    def _group_distance(
        self, left_users: Sequence[str], right_users: Sequence[str], observation
    ) -> float:
        """avg over (u, u') of DIST(E(u), E(u')) for users of two groups."""
        distances = [
            self._dist(
                observation.results_by_user[left], observation.results_by_user[right]
            )
            for left in left_users
            for right in right_users
        ]
        return statistics.fmean(distances)

    def unfairness(self, group: Group, query: str, location: str) -> float:
        """``d<g,q,l>`` per Equation 1.

        Comparable groups with no recruited users are skipped; if the group
        itself has no users, or no comparable group has any, the value is
        undefined and :class:`DataError` is raised.
        """
        observation = self.dataset.observation(query, location)
        members = self.dataset.members_in_observation(group, observation)
        if not members:
            raise DataError(
                f"group {group} has no users for ({query!r}, {location!r})"
            )
        per_group: list[float] = []
        for other in comparable_groups(group, self.schema):
            other_members = self.dataset.members_in_observation(other, observation)
            if not other_members:
                continue
            per_group.append(self._group_distance(members, other_members, observation))
        if not per_group:
            raise DataError(
                f"group {group} has no populated comparable groups for "
                f"({query!r}, {location!r})"
            )
        return statistics.fmean(per_group)

    def defined_for(self, group: Group, query: str, location: str) -> bool:
        """True when the group and at least one comparable group have users."""
        if not self.dataset.has_observation(query, location):
            return False
        observation = self.dataset.observation(query, location)
        if not self.dataset.members_in_observation(group, observation):
            return False
        return any(
            self.dataset.members_in_observation(other, observation)
            for other in comparable_groups(group, self.schema)
        )


class MarketplaceUnfairness:
    """§3.3 measures on a :class:`~repro.data.schema.MarketplaceDataset`.

    Parameters
    ----------
    dataset:
        Observed worker rankings with worker demographics.
    schema:
        The protected-attribute schema defining comparable groups.
    measure:
        Any registered group-ranking measure: ``"emd"`` (default; average
        EMD between relevance histograms of ``g`` and each comparable
        group), ``"exposure"`` (L1 deviation between exposure share and
        relevance share), ``"fair"`` (FA*IR prefix-failure rate), or
        anything registered since.
    bins:
        Histogram bin count (reaches measures declaring ``bins``).
    exposure_denominator:
        ``"comparables"`` (default) follows §3.3.2's formulas literally
        (the Figure 5 worked example); ``"ranking"`` normalizes shares over
        the whole ranking instead, which is the only reading under which
        the paper's Table 8 can report *unequal* exposure for Male and
        Female.  Reaches measures declaring ``denominator``.
    measure_options:
        Further options forwarded to the measure's constructor when its
        registered option schema declares them.
    """

    def __init__(
        self,
        dataset: MarketplaceDataset,
        schema: AttributeSchema,
        measure: str = "emd",
        bins: int = DEFAULT_BINS,
        exposure_denominator: str = "comparables",
        **measure_options,
    ) -> None:
        self.dataset = dataset
        self.schema = schema
        self.measure_name = measure.lower()
        self.measure = _build_measure(
            self.measure_name,
            GROUP_RANKING,
            "marketplace",
            {
                "bins": bins,
                "denominator": exposure_denominator,
                **measure_options,
            },
        )
        self.bins = bins
        self.exposure_denominator = exposure_denominator

    def ranked_members(
        self, group: Group, query: str, location: str
    ) -> tuple[object, list[str], dict[str, list[str]]]:
        """The ``(ranking, group members, populated comparables)`` triple
        for one cell — the inputs every group-ranking measure (and the
        what-if interventions) consumes.  Raises :class:`DataError` when
        the cell is undefined."""
        observation = self.dataset.observation(query, location)
        ranking = observation.ranking
        members = self.dataset.members_in_ranking(group, ranking)
        if not members:
            raise DataError(
                f"group {group} has no workers ranked for ({query!r}, {location!r})"
            )
        others = {
            other: self.dataset.members_in_ranking(other, ranking)
            for other in comparable_groups(group, self.schema)
        }
        populated = {other.name: ids for other, ids in others.items() if ids}
        if not populated:
            raise DataError(
                f"group {group} has no populated comparable groups for "
                f"({query!r}, {location!r})"
            )
        return ranking, members, populated

    def unfairness(self, group: Group, query: str, location: str) -> float:
        """``d<g,q,l>`` via the configured group-ranking measure."""
        ranking, members, populated = self.ranked_members(group, query, location)
        return self.measure.group_value(ranking, members, populated)

    def defined_for(self, group: Group, query: str, location: str) -> bool:
        """True when the group and at least one comparable group are ranked."""
        if not self.dataset.has_observation(query, location):
            return False
        ranking = self.dataset.observation(query, location).ranking
        if not self.dataset.members_in_ranking(group, ranking):
            return False
        return any(
            self.dataset.members_in_ranking(other, ranking)
            for other in comparable_groups(group, self.schema)
        )


def aggregate_unfairness(
    engine: UnfairnessEngine,
    groups: Iterable[Group],
    queries: Iterable[str],
    locations: Iterable[str],
    skip_undefined: bool = True,
) -> float:
    """§3.4 generalized aggregation: ``avg_{g,q,l} d<g,q,l>``.

    Covers all the paper's notations — ``d<g,Q,L>`` (one group), ``d<G,Q,l>``
    (one location), ``d<G,q,L>`` (one query) — by passing singleton
    collections for the fixed dimensions.

    With ``skip_undefined`` (default), triples where the value is undefined
    (e.g. the group has no members in that ranking) are excluded from the
    average; otherwise they raise :class:`DataError`.
    """
    groups = list(groups)
    queries = list(queries)
    locations = list(locations)
    values: list[float] = []
    for group in groups:
        for query in queries:
            for location in locations:
                if skip_undefined and not engine.defined_for(group, query, location):
                    continue
                values.append(engine.unfairness(group, query, location))
    if not values:
        raise DataError("no defined unfairness values in the requested aggregate")
    return statistics.fmean(values)
