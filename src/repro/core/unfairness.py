"""Unfairness engines: computing ``d<g,q,l>`` on both site types (§3.2–3.4).

An *engine* turns raw observations into the scalar unfairness of a group for
one ``(query, location)`` pair:

* :class:`SearchEngineUnfairness` implements Equation 1 — the average, over
  the comparable groups ``g'`` of ``g``, of the average pairwise ranked-list
  distance (Kendall Tau or Jaccard) between users of ``g`` and users of
  ``g'``.
* :class:`MarketplaceUnfairness` implements §3.3 — either the average EMD
  between ``g``'s relevance-score histogram and each comparable group's
  (§3.3.1), or the exposure deviation ``|exp(g) − rel(g)|`` (§3.3.2).

Both expose the same ``unfairness(group, query, location)`` interface plus
the §3.4 aggregations over sets of queries/locations/groups, so the cube,
index, and algorithm layers are agnostic to the site type.
"""

from __future__ import annotations

import statistics
from typing import Iterable, Protocol, Sequence

from ..data.schema import MarketplaceDataset, SearchDataset
from ..exceptions import DataError, MeasureError
from ..stats.histograms import DEFAULT_BINS, UnitHistogram
from .attributes import AttributeSchema
from .groups import Group, comparable_groups
from .measures.emd import emd
from .measures.exposure import exposure_deviation
from .measures.jaccard import JaccardMeasure
from .measures.kendall import KendallTauMeasure

__all__ = [
    "UnfairnessEngine",
    "SearchEngineUnfairness",
    "MarketplaceUnfairness",
    "aggregate_unfairness",
]


class UnfairnessEngine(Protocol):
    """The interface every site-specific engine satisfies."""

    schema: AttributeSchema

    def unfairness(self, group: Group, query: str, location: str) -> float:
        """``d<g,q,l>`` — unfairness of ``group`` for one query/location."""
        ...

    def defined_for(self, group: Group, query: str, location: str) -> bool:
        """True when ``d<g,q,l>`` is computable from the observations."""
        ...


class SearchEngineUnfairness:
    """Equation 1 on a :class:`~repro.data.schema.SearchDataset`.

    Parameters
    ----------
    dataset:
        Observed per-user result lists.
    schema:
        The protected-attribute schema defining comparable groups.
    measure:
        ``"kendall"`` (default) or ``"jaccard"`` — the DIST between two
        users' ranked lists.
    penalty:
        Kendall ``K^(p)`` neutral-pair penalty (ignored for Jaccard).
    jaccard_mode:
        ``"distance"`` or ``"index"`` (ignored for Kendall).
    """

    def __init__(
        self,
        dataset: SearchDataset,
        schema: AttributeSchema,
        measure: str = "kendall",
        penalty: float = 0.5,
        jaccard_mode: str = "distance",
    ) -> None:
        self.dataset = dataset
        self.schema = schema
        self.measure_name = measure.lower()
        if self.measure_name == "kendall":
            self._dist = KendallTauMeasure(penalty=penalty)
        elif self.measure_name == "jaccard":
            self._dist = JaccardMeasure(mode=jaccard_mode)
        else:
            raise MeasureError(
                f"search-engine measures are 'kendall' or 'jaccard', got {measure!r}"
            )

    def _group_distance(
        self, left_users: Sequence[str], right_users: Sequence[str], observation
    ) -> float:
        """avg over (u, u') of DIST(E(u), E(u')) for users of two groups."""
        distances = [
            self._dist(
                observation.results_by_user[left], observation.results_by_user[right]
            )
            for left in left_users
            for right in right_users
        ]
        return statistics.fmean(distances)

    def unfairness(self, group: Group, query: str, location: str) -> float:
        """``d<g,q,l>`` per Equation 1.

        Comparable groups with no recruited users are skipped; if the group
        itself has no users, or no comparable group has any, the value is
        undefined and :class:`DataError` is raised.
        """
        observation = self.dataset.observation(query, location)
        members = self.dataset.members_in_observation(group, observation)
        if not members:
            raise DataError(
                f"group {group} has no users for ({query!r}, {location!r})"
            )
        per_group: list[float] = []
        for other in comparable_groups(group, self.schema):
            other_members = self.dataset.members_in_observation(other, observation)
            if not other_members:
                continue
            per_group.append(self._group_distance(members, other_members, observation))
        if not per_group:
            raise DataError(
                f"group {group} has no populated comparable groups for "
                f"({query!r}, {location!r})"
            )
        return statistics.fmean(per_group)

    def defined_for(self, group: Group, query: str, location: str) -> bool:
        """True when the group and at least one comparable group have users."""
        if not self.dataset.has_observation(query, location):
            return False
        observation = self.dataset.observation(query, location)
        if not self.dataset.members_in_observation(group, observation):
            return False
        return any(
            self.dataset.members_in_observation(other, observation)
            for other in comparable_groups(group, self.schema)
        )


class MarketplaceUnfairness:
    """§3.3 measures on a :class:`~repro.data.schema.MarketplaceDataset`.

    Parameters
    ----------
    dataset:
        Observed worker rankings with worker demographics.
    schema:
        The protected-attribute schema defining comparable groups.
    measure:
        ``"emd"`` (default) — average EMD between relevance histograms of
        ``g`` and each comparable group — or ``"exposure"`` — L1 deviation
        between exposure share and relevance share.
    bins:
        Histogram bin count for the EMD variant.
    exposure_denominator:
        ``"comparables"`` (default) follows §3.3.2's formulas literally
        (the Figure 5 worked example); ``"ranking"`` normalizes shares over
        the whole ranking instead, which is the only reading under which
        the paper's Table 8 can report *unequal* exposure for Male and
        Female.  See :func:`repro.core.measures.exposure_deviation`.
    """

    def __init__(
        self,
        dataset: MarketplaceDataset,
        schema: AttributeSchema,
        measure: str = "emd",
        bins: int = DEFAULT_BINS,
        exposure_denominator: str = "comparables",
    ) -> None:
        if measure.lower() not in ("emd", "exposure"):
            raise MeasureError(
                f"marketplace measures are 'emd' or 'exposure', got {measure!r}"
            )
        self.dataset = dataset
        self.schema = schema
        self.measure_name = measure.lower()
        self.bins = bins
        self.exposure_denominator = exposure_denominator

    def _relevance_scores(self, ranking, members: Sequence[str]) -> list[float]:
        return [ranking.relevance(worker_id) for worker_id in members]

    def unfairness(self, group: Group, query: str, location: str) -> float:
        """``d<g,q,l>`` via EMD (§3.3.1) or Exposure (§3.3.2)."""
        observation = self.dataset.observation(query, location)
        ranking = observation.ranking
        members = self.dataset.members_in_ranking(group, ranking)
        if not members:
            raise DataError(
                f"group {group} has no workers ranked for ({query!r}, {location!r})"
            )
        others = {
            other: self.dataset.members_in_ranking(other, ranking)
            for other in comparable_groups(group, self.schema)
        }
        populated = {other: ids for other, ids in others.items() if ids}
        if not populated:
            raise DataError(
                f"group {group} has no populated comparable groups for "
                f"({query!r}, {location!r})"
            )
        if self.measure_name == "exposure":
            return exposure_deviation(
                ranking,
                members,
                {other.name: ids for other, ids in populated.items()},
                denominator=self.exposure_denominator,
            )
        own_histogram = UnitHistogram.from_values(
            self._relevance_scores(ranking, members), bins=self.bins
        )
        distances = [
            emd(
                own_histogram,
                UnitHistogram.from_values(
                    self._relevance_scores(ranking, ids), bins=self.bins
                ),
            )
            for ids in populated.values()
        ]
        return statistics.fmean(distances)

    def defined_for(self, group: Group, query: str, location: str) -> bool:
        """True when the group and at least one comparable group are ranked."""
        if not self.dataset.has_observation(query, location):
            return False
        ranking = self.dataset.observation(query, location).ranking
        if not self.dataset.members_in_ranking(group, ranking):
            return False
        return any(
            self.dataset.members_in_ranking(other, ranking)
            for other in comparable_groups(group, self.schema)
        )


def aggregate_unfairness(
    engine: UnfairnessEngine,
    groups: Iterable[Group],
    queries: Iterable[str],
    locations: Iterable[str],
    skip_undefined: bool = True,
) -> float:
    """§3.4 generalized aggregation: ``avg_{g,q,l} d<g,q,l>``.

    Covers all the paper's notations — ``d<g,Q,L>`` (one group), ``d<G,Q,l>``
    (one location), ``d<G,q,L>`` (one query) — by passing singleton
    collections for the fixed dimensions.

    With ``skip_undefined`` (default), triples where the value is undefined
    (e.g. the group has no members in that ranking) are excluded from the
    average; otherwise they raise :class:`DataError`.
    """
    groups = list(groups)
    queries = list(queries)
    locations = list(locations)
    values: list[float] = []
    for group in groups:
        for query in queries:
            for location in locations:
                if skip_undefined and not engine.defined_for(group, query, location):
                    continue
                values.append(engine.unfairness(group, query, location))
    if not values:
        raise DataError("no defined unfairness values in the requested aggregate")
    return statistics.fmean(values)
