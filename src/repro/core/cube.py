"""The unfairness cube: materialized ``d<g,q,l>`` for all triples.

The paper's indices and algorithms (§4) operate over pre-computed unfairness
values "for combinations of groups, queries and locations".
:class:`UnfairnessCube` is that materialization: a dense
``|G| × |Q| × |L|`` array plus the dimension labels, with slicing and the
§3.4 aggregations.  The three inverted-index families
(:mod:`repro.core.indices`) and both the Fagin-style and naive algorithms
are built from a cube.

Cells can be *missing* (NaN) when an observation does not define a value —
e.g. a group with no ranked workers for some pair.  Aggregations skip missing
cells; an aggregate with no defined cells raises :class:`CubeError`.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from ..exceptions import CubeError
from .groups import Group
from .unfairness import UnfairnessEngine

__all__ = ["UnfairnessCube"]

GROUP, QUERY, LOCATION = "group", "query", "location"
_AXES = {GROUP: 0, QUERY: 1, LOCATION: 2}


class UnfairnessCube:
    """Dense store of ``d<g,q,l>`` over fixed group/query/location domains."""

    def __init__(
        self,
        groups: Sequence[Group],
        queries: Sequence[str],
        locations: Sequence[str],
        values: np.ndarray,
    ) -> None:
        self.groups = list(groups)
        self.queries = list(queries)
        self.locations = list(locations)
        values = np.asarray(values, dtype=float)
        expected = (len(self.groups), len(self.queries), len(self.locations))
        if values.shape != expected:
            raise CubeError(f"cube values shape {values.shape} != domains {expected}")
        if not self.groups or not self.queries or not self.locations:
            raise CubeError("cube dimensions must all be non-empty")
        self.values = values
        self._group_index = {group: i for i, group in enumerate(self.groups)}
        self._query_index = {query: i for i, query in enumerate(self.queries)}
        self._location_index = {location: i for i, location in enumerate(self.locations)}
        if len(self._group_index) != len(self.groups):
            raise CubeError("duplicate groups in cube domain")
        if len(self._query_index) != len(self.queries):
            raise CubeError("duplicate queries in cube domain")
        if len(self._location_index) != len(self.locations):
            raise CubeError("duplicate locations in cube domain")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def compute(
        cls,
        engine: UnfairnessEngine,
        groups: Iterable[Group],
        queries: Iterable[str],
        locations: Iterable[str],
    ) -> "UnfairnessCube":
        """Evaluate ``engine`` on every triple; undefined cells become NaN."""
        groups = list(groups)
        queries = list(queries)
        locations = list(locations)
        values = np.full((len(groups), len(queries), len(locations)), np.nan)
        for gi, group in enumerate(groups):
            for qi, query in enumerate(queries):
                for li, location in enumerate(locations):
                    if engine.defined_for(group, query, location):
                        values[gi, qi, li] = engine.unfairness(group, query, location)
        return cls(groups, queries, locations, values)

    @classmethod
    def compute_delta(
        cls,
        old: "UnfairnessCube",
        engine: UnfairnessEngine,
        queries: Sequence[str],
        locations: Sequence[str],
        dirty: Iterable[tuple[str, str]],
    ) -> "UnfairnessCube":
        """Rebuild only the dirty ``(query, location)`` columns of ``old``.

        ``queries``/``locations`` are the *new* full domains; the old domains
        must be prefixes of them (first-seen order only ever appends).  Every
        surviving cell is copied verbatim, so the result is bit-identical to
        a cold :meth:`compute` over the final dataset state as long as
        ``dirty`` covers every pair whose observation changed.
        """
        queries = list(queries)
        locations = list(locations)
        if old.queries != queries[: len(old.queries)]:
            raise CubeError("delta domains must extend the old queries in order")
        if old.locations != locations[: len(old.locations)]:
            raise CubeError("delta domains must extend the old locations in order")
        values = np.full((len(old.groups), len(queries), len(locations)), np.nan)
        values[:, : len(old.queries), : len(old.locations)] = old.values
        query_index = {query: i for i, query in enumerate(queries)}
        location_index = {location: i for i, location in enumerate(locations)}
        for query, location in dirty:
            qi = query_index[query]
            li = location_index[location]
            for gi, group in enumerate(old.groups):
                if engine.defined_for(group, query, location):
                    values[gi, qi, li] = engine.unfairness(group, query, location)
                else:
                    values[gi, qi, li] = np.nan
        return cls(old.groups, queries, locations, values)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def _gi(self, group: Group) -> int:
        try:
            return self._group_index[group]
        except KeyError:
            raise CubeError(f"group {group} is not in this cube") from None

    def _qi(self, query: str) -> int:
        try:
            return self._query_index[query]
        except KeyError:
            raise CubeError(f"query {query!r} is not in this cube") from None

    def _li(self, location: str) -> int:
        try:
            return self._location_index[location]
        except KeyError:
            raise CubeError(f"location {location!r} is not in this cube") from None

    def value(self, group: Group, query: str, location: str) -> float:
        """``d<g,q,l>``; raises :class:`CubeError` on a missing (NaN) cell."""
        cell = float(self.values[self._gi(group), self._qi(query), self._li(location)])
        if math.isnan(cell):
            raise CubeError(
                f"d<{group},{query},{location}> is undefined in this cube"
            )
        return cell

    def is_defined(self, group: Group, query: str, location: str) -> bool:
        """True when the cell holds a computed value."""
        cell = self.values[self._gi(group), self._qi(query), self._li(location)]
        return not math.isnan(float(cell))

    @property
    def missing_cells(self) -> int:
        """Number of undefined (NaN) cells."""
        return int(np.isnan(self.values).sum())

    # ------------------------------------------------------------------
    # Aggregation (§3.4)
    # ------------------------------------------------------------------

    def domain(self, dimension: str) -> list:
        """The label list of one dimension (``"group" | "query" | "location"``)."""
        if dimension == GROUP:
            return list(self.groups)
        if dimension == QUERY:
            return list(self.queries)
        if dimension == LOCATION:
            return list(self.locations)
        raise CubeError(f"unknown dimension {dimension!r}; use group/query/location")

    def aggregate(
        self,
        groups: Iterable[Group] | None = None,
        queries: Iterable[str] | None = None,
        locations: Iterable[str] | None = None,
    ) -> float:
        """``avg d<g,q,l>`` over the selected sub-cube (defaults: everything).

        Missing cells are skipped; an all-missing selection raises
        :class:`CubeError`.
        """
        gi = (
            [self._gi(g) for g in groups]
            if groups is not None
            else range(len(self.groups))
        )
        qi = (
            [self._qi(q) for q in queries]
            if queries is not None
            else range(len(self.queries))
        )
        li = (
            [self._li(l) for l in locations]
            if locations is not None
            else range(len(self.locations))
        )
        block = self.values[np.ix_(list(gi), list(qi), list(li))]
        defined = block[~np.isnan(block)]
        if defined.size == 0:
            raise CubeError("aggregate over an entirely undefined sub-cube")
        return float(defined.mean())

    def aggregate_for(self, dimension: str, member) -> float:
        """Average over the two non-``dimension`` axes for one member.

        ``aggregate_for("group", g)`` is the paper's ``d<g,Q,L>``;
        ``aggregate_for("query", q)`` is ``d<G,q,L>``; and
        ``aggregate_for("location", l)`` is ``d<G,Q,l>``.
        """
        if dimension == GROUP:
            return self.aggregate(groups=[member])
        if dimension == QUERY:
            return self.aggregate(queries=[member])
        if dimension == LOCATION:
            return self.aggregate(locations=[member])
        raise CubeError(f"unknown dimension {dimension!r}; use group/query/location")

    def fill_missing(self, value: float) -> "UnfairnessCube":
        """Return a copy with every NaN cell replaced by ``value``."""
        filled = np.where(np.isnan(self.values), value, self.values)
        return UnfairnessCube(self.groups, self.queries, self.locations, filled)

    def __repr__(self) -> str:
        shape = f"{len(self.groups)}×{len(self.queries)}×{len(self.locations)}"
        return f"UnfairnessCube({shape}, missing={self.missing_cells})"
