"""Explanations for unfairness values.

The paper chooses the comparable-groups formulation partly because it "can
be more easily leveraged for explanations" (§3.1).  This module delivers on
that: given a group's unfairness for a (query, location), it decomposes the
value into per-comparable-group contributions, identifies the dominant
contrast (e.g. *Asian Females score high against White Females in
particular*), and locates the cube cells that drive an aggregate.

Two levels:

* :func:`explain_cell` — one ``d<g,q,l>``: the per-comparable-group
  distances that average into it, with membership counts.
* :func:`explain_aggregate` — one dimension member's aggregate: the
  (query, location) cells contributing most, so "Handyman is the most
  unfair job" can be followed by "…mostly in Birmingham and Oklahoma City".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import DataError
from .cube import GROUP, LOCATION, QUERY, UnfairnessCube
from .groups import Group, comparable_groups
from .unfairness import MarketplaceUnfairness, SearchEngineUnfairness

__all__ = [
    "Contribution",
    "CellExplanation",
    "CellContribution",
    "explain_cell",
    "explain_aggregate",
]


@dataclass(frozen=True)
class Contribution:
    """One comparable group's share of a cell's unfairness."""

    comparable: Group
    distance: float
    group_size: int
    comparable_size: int


@dataclass(frozen=True)
class CellExplanation:
    """The decomposition of one ``d<g,q,l>`` value."""

    group: Group
    query: str
    location: str
    value: float
    contributions: tuple[Contribution, ...]

    @property
    def dominant(self) -> Contribution:
        """The comparable group contributing the largest distance."""
        return max(self.contributions, key=lambda c: c.distance)

    def narrative(self) -> str:
        """A one-line human-readable explanation."""
        top = self.dominant
        return (
            f"{self.group} vs comparable groups for {self.query!r} at "
            f"{self.location!r}: unfairness {self.value:.3f}, driven most by "
            f"the contrast with {top.comparable} (distance {top.distance:.3f}, "
            f"{top.group_size} vs {top.comparable_size} members)"
        )


def _pairwise_distance(engine, group, other, query, location) -> float | None:
    """DIST(g, g') for one cell, or None when the pair is unpopulated."""
    if isinstance(engine, SearchEngineUnfairness):
        observation = engine.dataset.observation(query, location)
        members = engine.dataset.members_in_observation(group, observation)
        others = engine.dataset.members_in_observation(other, observation)
        if not members or not others:
            return None
        return engine._group_distance(members, others, observation)
    if isinstance(engine, MarketplaceUnfairness):
        observation = engine.dataset.observation(query, location)
        ranking = observation.ranking
        members = engine.dataset.members_in_ranking(group, ranking)
        others = engine.dataset.members_in_ranking(other, ranking)
        if not members or not others:
            return None
        # The group-ranking protocol against this single comparable: for
        # pairwise measures (EMD) that *is* the pairwise distance; for
        # holistic ones (exposure, FA*IR) it is the deviation attributable
        # to this comparable alone.
        return engine.measure.group_value(ranking, members, {other.name: others})
    raise DataError(f"cannot explain cells for engine type {type(engine).__name__}")


def _member_counts(engine, group, query, location) -> int:
    if isinstance(engine, SearchEngineUnfairness):
        observation = engine.dataset.observation(query, location)
        return len(engine.dataset.members_in_observation(group, observation))
    observation = engine.dataset.observation(query, location)
    return len(engine.dataset.members_in_ranking(group, observation.ranking))


def explain_cell(engine, group: Group, query: str, location: str) -> CellExplanation:
    """Decompose ``d<g,q,l>`` into per-comparable-group contributions."""
    value = engine.unfairness(group, query, location)
    group_size = _member_counts(engine, group, query, location)
    contributions = []
    for other in comparable_groups(group, engine.schema):
        distance = _pairwise_distance(engine, group, other, query, location)
        if distance is None:
            continue
        contributions.append(
            Contribution(
                comparable=other,
                distance=distance,
                group_size=group_size,
                comparable_size=_member_counts(engine, other, query, location),
            )
        )
    if not contributions:
        raise DataError(
            f"no populated comparable groups to explain {group} at "
            f"({query!r}, {location!r})"
        )
    return CellExplanation(
        group=group,
        query=query,
        location=location,
        value=value,
        contributions=tuple(contributions),
    )


@dataclass(frozen=True)
class CellContribution:
    """One cube cell's contribution to a dimension member's aggregate."""

    group: Group
    query: str
    location: str
    value: float


def explain_aggregate(
    cube: UnfairnessCube, dimension: str, member, top: int = 5
) -> list[CellContribution]:
    """The ``top`` cells that drive one member's aggregate unfairness.

    E.g. ``explain_aggregate(cube, "query", "Handyman")`` returns the
    (group, location) cells where Handyman's unfairness concentrates.
    """
    if top <= 0:
        raise DataError(f"top must be positive, got {top}")
    cells: list[CellContribution] = []
    for gi, group in enumerate(cube.groups):
        for qi, query in enumerate(cube.queries):
            for li, location in enumerate(cube.locations):
                selector = {GROUP: group, QUERY: query, LOCATION: location}[dimension]
                if selector != member:
                    continue
                if not cube.is_defined(group, query, location):
                    continue
                cells.append(
                    CellContribution(
                        group=group,
                        query=query,
                        location=location,
                        value=float(cube.values[gi, qi, li]),
                    )
                )
    if not cells:
        raise DataError(f"{member!r} has no defined cells in dimension {dimension!r}")
    cells.sort(key=lambda cell: -cell.value)
    return cells[:top]
