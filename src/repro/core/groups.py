"""Groups, labels, variants and comparable groups (paper §3.1).

A *group* ``g`` is identified by its label — a conjunction of predicates
``attribute = value`` over a protected-attribute schema.  ``A(g)`` denotes the
set of attributes the label constrains.  For an attribute ``a ∈ A(g)``,
``variants(g, a)`` are all groups whose label differs from ``g``'s *only* in
the value of ``a``.  The *comparable groups* of ``g`` are the union of its
variants over every constrained attribute; unfairness of ``g`` is always
measured against this set.

Example (the paper's running one): with schema gender × ethnicity, the group
``Black Females`` — label ``(gender=Female) ∧ (ethnicity=Black)`` — has
comparable groups ``Black Males``, ``Asian Females`` and ``White Females``.
Single-attribute groups such as ``Asian`` (label ``ethnicity=Asian``) are
compared against ``Black`` and ``White``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from ..exceptions import SchemaError
from .attributes import AttributeSchema

__all__ = ["Group", "variants", "comparable_groups", "enumerate_groups", "group_lattice"]


@dataclass(frozen=True)
class Group:
    """A demographic group defined by a conjunction of attribute predicates.

    Parameters
    ----------
    predicates:
        Mapping from attribute name to the value the group fixes, e.g.
        ``{"gender": "Female", "ethnicity": "Black"}``.  At least one
        predicate is required; an attribute may appear only once (enforced by
        the mapping type itself).

    Instances are immutable, hashable, and order-insensitive: labels are
    canonicalized by attribute name.
    """

    predicates: tuple[tuple[str, str], ...]

    def __init__(self, predicates: Mapping[str, str] | Iterable[tuple[str, str]]) -> None:
        items = dict(predicates)
        if not items:
            raise SchemaError("a group label needs at least one predicate")
        canonical = tuple(sorted(items.items()))
        object.__setattr__(self, "predicates", canonical)

    @property
    def attributes(self) -> tuple[str, ...]:
        """``A(g)``: the attributes constrained by this group's label."""
        return tuple(attribute for attribute, _ in self.predicates)

    def value_of(self, attribute: str) -> str:
        """Return the value this group fixes for ``attribute``."""
        for name, value in self.predicates:
            if name == attribute:
                return value
        raise SchemaError(f"group {self} does not constrain attribute {attribute!r}")

    def constrains(self, attribute: str) -> bool:
        """True when ``attribute ∈ A(g)``."""
        return any(name == attribute for name, _ in self.predicates)

    def with_value(self, attribute: str, value: str) -> "Group":
        """Return the group whose label replaces ``attribute``'s value."""
        if not self.constrains(attribute):
            raise SchemaError(f"group {self} does not constrain attribute {attribute!r}")
        items = dict(self.predicates)
        items[attribute] = value
        return Group(items)

    def matches(self, profile: Mapping[str, str]) -> bool:
        """True when an individual's attribute ``profile`` satisfies the label.

        A profile may carry more attributes than the label constrains; only
        the constrained ones are checked.  A profile *missing* a constrained
        attribute does not match.
        """
        return all(profile.get(name) == value for name, value in self.predicates)

    def validate(self, schema: AttributeSchema) -> None:
        """Check every predicate against ``schema``; raise SchemaError if invalid."""
        for attribute, value in self.predicates:
            schema.validate(attribute, value)

    @property
    def label(self) -> str:
        """Human-readable conjunction, e.g. ``(ethnicity=Black) ∧ (gender=Female)``."""
        return " ∧ ".join(f"({name}={value})" for name, value in self.predicates)

    @property
    def name(self) -> str:
        """Compact display name, e.g. ``Black Female`` or ``Asian``.

        For the paper's schema this reproduces the table row names: full
        profiles render as ``"<Ethnicity> <Gender>"`` and single-attribute
        groups render as the bare value.
        """
        values = dict(self.predicates)
        if set(values) == {"gender", "ethnicity"}:
            return f"{values['ethnicity']} {values['gender']}"
        return " ".join(value for _, value in self.predicates)

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Group({self.label})"


def variants(group: Group, attribute: str, schema: AttributeSchema) -> list[Group]:
    """``variants(g, a)``: groups differing from ``g`` only on attribute ``a``.

    The returned list preserves the schema's value-domain order and never
    contains ``g`` itself.
    """
    group.validate(schema)
    if not group.constrains(attribute):
        raise SchemaError(f"group {group} does not constrain attribute {attribute!r}")
    current = group.value_of(attribute)
    return [
        group.with_value(attribute, value)
        for value in schema.values_of(attribute)
        if value != current
    ]


def comparable_groups(group: Group, schema: AttributeSchema) -> list[Group]:
    """``∪_{a ∈ A(g)} variants(g, a)``: every group ``g`` is compared against.

    The list is duplicate-free and ordered attribute-by-attribute in label
    order, matching the paper's examples (for ``Black Female``:
    ``Asian Female``, ``White Female``, ``Black Male``).
    """
    seen: set[Group] = set()
    ordered: list[Group] = []
    for attribute in group.attributes:
        for variant in variants(group, attribute, schema):
            if variant not in seen:
                seen.add(variant)
                ordered.append(variant)
    return ordered


def enumerate_groups(
    schema: AttributeSchema, attributes: Iterable[str] | None = None
) -> list[Group]:
    """Enumerate all groups whose labels constrain exactly ``attributes``.

    With ``attributes=None``, constrains *all* schema attributes (the finest
    lattice level — the paper's six demographic profiles).
    """
    chosen = tuple(attributes) if attributes is not None else schema.attributes
    return [Group(assignment) for assignment in schema.iter_assignments(chosen)]


def group_lattice(schema: AttributeSchema) -> list[Group]:
    """Enumerate every group over every non-empty attribute subset.

    For the case-study schema this yields the 11 groups of Table 8: the six
    full profiles plus ``Male``, ``Female``, ``Asian``, ``Black``, ``White``.
    Subsets are generated in order of decreasing size so the finest groups
    come first, matching how the paper presents results.
    """

    def subsets(names: tuple[str, ...]) -> Iterator[tuple[str, ...]]:
        n = len(names)
        # Iterate masks grouped by popcount, largest first.
        by_size: dict[int, list[tuple[str, ...]]] = {}
        for mask in range(1, 1 << n):
            subset = tuple(names[i] for i in range(n) if mask & (1 << i))
            by_size.setdefault(len(subset), []).append(subset)
        for size in sorted(by_size, reverse=True):
            yield from by_size[size]

    groups: list[Group] = []
    for subset in subsets(schema.attributes):
        groups.extend(enumerate_groups(schema, subset))
    return groups
