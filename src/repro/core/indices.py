"""The three inverted-index families of Table 5.

Each family pre-sorts unfairness values along one dimension so the Fagin-
style algorithms can consume them with *sorted access* (walk entries in
decreasing unfairness) and *random access* (probe one key's value directly):

* **group-based**    ``I(q,l)`` — groups sorted by ``d<g,q,l>``;
* **query-based**    ``I(g,l)`` — queries sorted by ``d<g,q,l>``;
* **location-based** ``I(g,q)`` — locations sorted by ``d<g,q,l>``.

An :class:`IndexFamily` bundles every posting list of one kind, built from an
:class:`~repro.core.cube.UnfairnessCube`.  Missing (NaN) cube cells are
simply absent from the posting lists, and both access modes report a miss via
:class:`IndexError_` so algorithms can treat sparse data uniformly.
Access counters support the cost accounting used by the benchmarks.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Hashable, Sequence

from ..exceptions import IndexError_
from .cube import GROUP, LOCATION, QUERY, UnfairnessCube
from .groups import Group

__all__ = [
    "InvertedIndex",
    "IndexFamily",
    "build_family",
    "refresh_family",
    "AccessStats",
]


@dataclass(eq=False)
class AccessStats:
    """Counts of sorted and random accesses performed through an index family.

    Counters are incremented under a lock so families can be shared across
    threads (the query service runs the Fagin algorithms concurrently);
    :meth:`snapshot` takes a consistent copy for delta reporting and
    :meth:`reset` rezeroes in place.
    """

    sorted_accesses: int = 0
    random_accesses: int = 0
    sorted_misses: int = 0
    random_misses: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_sorted(self, count: int = 1) -> None:
        """Count ``count`` sorted accesses (thread-safe)."""
        with self._lock:
            self.sorted_accesses += count

    def record_random(self, count: int = 1) -> None:
        """Count ``count`` random accesses (thread-safe)."""
        with self._lock:
            self.random_accesses += count

    def record_sorted_miss(self, count: int = 1) -> None:
        """Count ``count`` failed sorted probes (not part of the cost model)."""
        with self._lock:
            self.sorted_misses += count

    def record_random_miss(self, count: int = 1) -> None:
        """Count ``count`` failed random probes (not part of the cost model)."""
        with self._lock:
            self.random_misses += count

    def reset(self) -> None:
        """Zero every counter in place."""
        with self._lock:
            self.sorted_accesses = 0
            self.random_accesses = 0
            self.sorted_misses = 0
            self.random_misses = 0

    def snapshot(self) -> "AccessStats":
        """A consistent point-in-time copy, detached from the live counters."""
        with self._lock:
            return AccessStats(
                sorted_accesses=self.sorted_accesses,
                random_accesses=self.random_accesses,
                sorted_misses=self.sorted_misses,
                random_misses=self.random_misses,
            )

    def merged_with(self, other: "AccessStats") -> "AccessStats":
        """Combine two counters (used when an algorithm runs in phases)."""
        mine, theirs = self.snapshot(), other.snapshot()
        return AccessStats(
            sorted_accesses=mine.sorted_accesses + theirs.sorted_accesses,
            random_accesses=mine.random_accesses + theirs.random_accesses,
            sorted_misses=mine.sorted_misses + theirs.sorted_misses,
            random_misses=mine.random_misses + theirs.random_misses,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AccessStats):
            return NotImplemented
        return (
            self.sorted_accesses == other.sorted_accesses
            and self.random_accesses == other.random_accesses
        )


@dataclass(frozen=True)
class InvertedIndex:
    """One posting list: keys of a single dimension sorted by unfairness.

    ``descending=True`` (the paper's layout) puts the most unfair first;
    bottom-k algorithms build ascending families instead.  A key→value dict
    is derived from the entries at construction time so :meth:`random_access`
    is O(1), matching the access-cost model the Fagin algorithms assume.
    """

    entries: tuple[tuple[Hashable, float], ...]
    descending: bool = True
    _values: dict = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_values", dict(self.entries))

    @classmethod
    def from_pairs(
        cls, pairs: Sequence[tuple[Hashable, float]], descending: bool = True
    ) -> "InvertedIndex":
        """Sort ``(key, value)`` pairs into a posting list; NaNs are dropped."""
        clean = [(key, float(value)) for key, value in pairs if not math.isnan(value)]
        clean.sort(key=lambda pair: pair[1], reverse=descending)
        return cls(entries=tuple(clean), descending=descending)

    def sorted_access(self, position: int) -> tuple[Hashable, float]:
        """The ``position``-th (0-based) entry in sort order."""
        if not 0 <= position < len(self.entries):
            raise IndexError_(
                f"sorted access at {position} out of range (size {len(self.entries)})"
            )
        return self.entries[position]

    def random_access(self, key: Hashable) -> float:
        """The unfairness value stored for ``key`` (O(1) dict probe)."""
        try:
            return self._values[key]
        except KeyError:
            raise IndexError_(f"key {key!r} is not in this posting list") from None

    def __contains__(self, key: Hashable) -> bool:
        return key in self._values

    def __len__(self) -> int:
        return len(self.entries)


class IndexFamily:
    """All posting lists of one kind, keyed by the fixed dimension pair.

    For the group-based family the pair key is ``(query, location)``, for the
    query-based family ``(group, location)``, for the location-based family
    ``(group, query)``.
    """

    def __init__(
        self,
        dimension: str,
        lists: dict[tuple, InvertedIndex],
    ) -> None:
        self.dimension = dimension
        self._lists = lists
        self.stats = AccessStats()
        # Algorithms that reset-then-accumulate ``stats`` (the Fagin top-k)
        # hold this while running so concurrent runs on a shared family
        # cannot garble each other's access accounting.
        self.query_lock = threading.Lock()

    @property
    def pair_keys(self) -> list[tuple]:
        """All fixed-pair keys, in construction order."""
        return list(self._lists)

    def posting_list(self, pair: tuple) -> InvertedIndex:
        """The posting list for one fixed pair (no access counted)."""
        try:
            return self._lists[pair]
        except KeyError:
            raise IndexError_(f"no posting list for pair {pair!r}") from None

    def sorted_access(self, pair: tuple, position: int) -> tuple[Hashable, float]:
        """Counted sorted access into the ``pair`` posting list.

        Only *successful* accesses count toward the paper's cost model —
        probing a missing pair or an out-of-range position records a miss
        instead of inflating ``sorted_accesses``.
        """
        try:
            entry = self.posting_list(pair).sorted_access(position)
        except IndexError_:
            self.stats.record_sorted_miss()
            raise
        self.stats.record_sorted()
        return entry

    def random_access(self, pair: tuple, key: Hashable) -> float:
        """Counted O(1) random access: value of ``key`` in the ``pair`` list.

        As with :meth:`sorted_access`, only successful probes count; misses
        are tallied separately in ``stats.random_misses``.
        """
        try:
            value = self.posting_list(pair).random_access(key)
        except IndexError_:
            self.stats.record_random_miss()
            raise IndexError_(f"key {key!r} has no value for pair {pair!r}") from None
        self.stats.record_random()
        return value

    def has_value(self, pair: tuple, key: Hashable) -> bool:
        """True when ``key`` holds a value in the ``pair`` posting list."""
        index = self._lists.get(pair)
        return index is not None and key in index

    def reset_stats(self) -> None:
        """Detach a fresh zeroed counter (benchmarks call this between runs).

        The previous :class:`AccessStats` object is *replaced*, not mutated,
        so results already holding a reference (e.g. a ``TopKResult``) keep
        their frozen counts.
        """
        self.stats = AccessStats()

    def stats_snapshot(self) -> AccessStats:
        """A consistent copy of the current access counters."""
        return self.stats.snapshot()


def build_family(
    cube: UnfairnessCube, dimension: str, descending: bool = True
) -> IndexFamily:
    """Build the ``dimension``-based index family from a cube.

    ``dimension`` names what the posting lists *contain* — ``"group"`` for
    the group-based ``I(q,l)`` family, ``"query"`` for ``I(g,l)``,
    ``"location"`` for ``I(g,q)``.
    """
    lists: dict[tuple, InvertedIndex] = {}

    def add(pair: tuple, pairs: list[tuple[Hashable, float]]) -> None:
        lists[pair] = InvertedIndex.from_pairs(pairs, descending=descending)

    if dimension == GROUP:
        for qi, query in enumerate(cube.queries):
            for li, location in enumerate(cube.locations):
                add(
                    (query, location),
                    [
                        (group, cube.values[gi, qi, li])
                        for gi, group in enumerate(cube.groups)
                    ],
                )
    elif dimension == QUERY:
        for gi, group in enumerate(cube.groups):
            for li, location in enumerate(cube.locations):
                add(
                    (group, location),
                    [
                        (query, cube.values[gi, qi, li])
                        for qi, query in enumerate(cube.queries)
                    ],
                )
    elif dimension == LOCATION:
        for gi, group in enumerate(cube.groups):
            for qi, query in enumerate(cube.queries):
                add(
                    (group, query),
                    [
                        (location, cube.values[gi, qi, li])
                        for li, location in enumerate(cube.locations)
                    ],
                )
    else:
        raise IndexError_(f"unknown dimension {dimension!r}; use group/query/location")
    return IndexFamily(dimension, lists)


def refresh_family(
    cube: UnfairnessCube,
    dimension: str,
    descending: bool,
    previous: IndexFamily,
    dirty_pairs: Sequence[tuple[str, str]],
    changed=None,
) -> tuple[IndexFamily, int]:
    """Rebuild only the stale posting lists, reusing every clean
    :class:`InvertedIndex` from ``previous``.

    ``changed`` — when provided — is a boolean array shaped like
    ``cube.values`` marking exactly the cells whose value differs from the
    pre-delta cube (NaN-aware); a posting list is then stale only if one of
    *its own* cells changed.  Without it the predicate falls back to the
    coarse dirty-``(query, location)`` one: any dirty location (resp. query)
    marks that column's list stale for *every* group, which over-rebuilds
    lists whose cells the delta never touched.

    The new family's ``_lists`` dict is reconstructed in the exact loop order
    of :func:`build_family` over the (possibly grown) cube domains, so its
    ``pair_keys`` — and every rebuilt list, thanks to the stable sort in
    :meth:`InvertedIndex.from_pairs` — are identical to a cold build of the
    same cube.  Returns the fresh family and the number of lists rebuilt.
    """
    if previous.dimension != dimension:
        raise IndexError_(
            f"cannot refresh a {previous.dimension!r} family as {dimension!r}"
        )
    dirty = set(dirty_pairs)
    dirty_queries = {query for query, _ in dirty}
    dirty_locations = {location for _, location in dirty}
    if changed is not None:
        # One stale flag per posting list: any() over the axis the list spans.
        stale_group = changed.any(axis=0)  # (query, location) -> I(q,l) stale
        stale_query = changed.any(axis=1)  # (group, location) -> I(g,l) stale
        stale_location = changed.any(axis=2)  # (group, query) -> I(g,q) stale
    old = previous._lists
    lists: dict[tuple, InvertedIndex] = {}
    rebuilt = 0

    def take(pair: tuple, stale: bool, pairs: list[tuple[Hashable, float]]) -> None:
        nonlocal rebuilt
        existing = old.get(pair)
        if existing is not None and not stale:
            lists[pair] = existing
        else:
            lists[pair] = InvertedIndex.from_pairs(pairs, descending=descending)
            rebuilt += 1

    if dimension == GROUP:
        for qi, query in enumerate(cube.queries):
            for li, location in enumerate(cube.locations):
                take(
                    (query, location),
                    bool(stale_group[qi, li])
                    if changed is not None
                    else (query, location) in dirty,
                    [
                        (group, cube.values[gi, qi, li])
                        for gi, group in enumerate(cube.groups)
                    ],
                )
    elif dimension == QUERY:
        for gi, group in enumerate(cube.groups):
            for li, location in enumerate(cube.locations):
                take(
                    (group, location),
                    bool(stale_query[gi, li])
                    if changed is not None
                    else location in dirty_locations,
                    [
                        (query, cube.values[gi, qi, li])
                        for qi, query in enumerate(cube.queries)
                    ],
                )
    elif dimension == LOCATION:
        for gi, group in enumerate(cube.groups):
            for qi, query in enumerate(cube.queries):
                take(
                    (group, query),
                    bool(stale_location[gi, qi])
                    if changed is not None
                    else query in dirty_queries,
                    [
                        (location, cube.values[gi, qi, li])
                        for li, location in enumerate(cube.locations)
                    ],
                )
    else:
        raise IndexError_(f"unknown dimension {dimension!r}; use group/query/location")
    return IndexFamily(dimension, lists), rebuilt
