"""Columnar shared-memory storage for the cube and index families.

The dict-backed :class:`~repro.core.indices.IndexFamily` stores every posting
list as a tuple of ``(key, value)`` pairs plus a key→value dict — convenient,
but each probe is a hash lookup and every worker process carries its own copy.
This module flattens that state into four arrays per ``(dataset, measure)``:

* one contiguous ``float64`` **value block** — the cube itself;
* per materialized family, an ``int32`` **permutation array** (member row
  indices, posting-list order, NaN cells dropped) and an ``int32`` **offset
  array** delimiting each posting list inside the permutation;

and exposes them in two forms.  :class:`ColumnarStore` is the in-memory image
(buildable from any :class:`~repro.core.cube.UnfairnessCube`, serializable to
one flat byte blob); :class:`SegmentSpace` maps those blobs into POSIX shared
memory so a restarted worker *attaches* to the live state in O(1) instead of
recomputing it, and the sharded front can answer reads against a worker's
published state without holding its own copy.

Segment protocol
----------------
Per ``(dataset, measure)`` there is one fixed-name *head* segment (a tiny
length-prefixed JSON record naming the current generation and its payload
segment) and one *payload* segment per published generation.  A publish
writes the complete new payload first, then rewrites the head, then unlinks
the superseded payload — readers that lose the race see a parse failure or a
vanished payload and report :class:`SegmentMiss`, which callers treat as
"fall back to the slow path", never as an error.  Already-mapped views keep
working after an unlink (POSIX semantics), so in-flight queries are safe.

Equivalence contract
--------------------
Everything observable matches the dict core bit-for-bit: posting-list order
comes from a *stable* argsort exactly mirroring the stable python sort in
:meth:`InvertedIndex.from_pairs`, and :meth:`ColumnarFamily.run_sweep`
replays the threshold algorithm of :func:`repro.core.fagin.top_k` —
``math.fsum``-exact aggregates and thresholds, the same round structure,
tie-breaks, early-stop test, and access-cost accounting — without the
per-entry python loop.
"""

from __future__ import annotations

import heapq
import json
import math
import re
import threading
from hashlib import blake2s
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import Hashable, Sequence

import numpy as np

from ..exceptions import AlgorithmError, IndexError_
from .cube import GROUP, LOCATION, QUERY, UnfairnessCube
from .fagin import TopKResult
from .fbox import FBox
from .groups import Group
from .indices import AccessStats, InvertedIndex

__all__ = [
    "SegmentMiss",
    "SegmentSpace",
    "ColumnarStore",
    "ColumnarFamily",
    "ColumnarFBox",
    "sorted_columns",
    "member_matrix",
]

_SHM_DIR = Path("/dev/shm")
_HEAD_SIZE = 1024


class SegmentMiss(Exception):
    """Internal signal: no attachable segment (absent, torn, or superseded).

    Never surfaces to API clients — callers catch it and fall back to
    computing locally or routing to the owning worker.
    """


class _Segment(shared_memory.SharedMemory):
    """A segment whose finalizer tolerates still-exported numpy views.

    Attached payloads keep zero-copy views alive for the life of their
    store; at collection time the base finalizer's ``close()`` raises
    ``BufferError`` on the exported buffer.  The mapping is reclaimed with
    the process either way, so the finalizer swallows it.
    """

    def __del__(self) -> None:  # pragma: no cover - GC-timing dependent
        try:
            super().__del__()
        except BufferError:
            pass


_TRACKER_LOCK = threading.Lock()


class _untracked:
    """No-op the ``resource_tracker`` around one shared-memory operation.

    Python 3.11 registers every segment with the tracker on *both* create
    and attach, so a short-lived attaching process would unlink segments it
    does not own when it exits.  Worse, forked workers share the front
    process's tracker daemon, whose cache is a set: N processes touching
    one segment collapse to a single entry, and every unregister after the
    first makes the daemon print a KeyError traceback.  Lifecycle here is
    explicit (publish/clear), so segments never reach the tracker at all.
    """

    def __enter__(self) -> None:
        _TRACKER_LOCK.acquire()
        self._register = resource_tracker.register
        self._unregister = resource_tracker.unregister
        resource_tracker.register = lambda *args, **kwargs: None
        resource_tracker.unregister = lambda *args, **kwargs: None

    def __exit__(self, *exc_info) -> None:
        resource_tracker.register = self._register
        resource_tracker.unregister = self._unregister
        _TRACKER_LOCK.release()


def _open_shm(name: str, create: bool = False, size: int = 0) -> _Segment:
    """Open a shared-memory segment without resource-tracker interference."""
    with _untracked():
        return _Segment(name=name, create=create, size=size)


def _slug(text: str) -> str:
    """A deterministic, filesystem-safe token for one dataset/measure name."""
    clean = re.sub(r"[^A-Za-z0-9]", "", text)[:10]
    return clean + blake2s(text.encode("utf-8"), digest_size=4).hexdigest()


def _unlink(name: str) -> None:
    try:
        segment = _open_shm(name)
    except FileNotFoundError:
        return
    with _untracked():  # unlink() would unregister a never-registered name
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - lost a racing unlink
            pass
    segment.close()


class SegmentSpace:
    """One namespace of head/payload segments shared by a server's processes.

    The namespace token isolates concurrent servers on one machine; the
    front and every worker of one server share the token, so a worker's
    publishes are visible to the front's attaches.  :meth:`clear` sweeps by
    name prefix, which also collects segments created by since-dead workers.
    """

    def __init__(self, namespace: str) -> None:
        if not re.fullmatch(r"[A-Za-z0-9]+", namespace or ""):
            raise AlgorithmError(
                f"segment namespace must be alphanumeric, got {namespace!r}"
            )
        self.namespace = namespace
        # Fallback bookkeeping for platforms without a scannable /dev/shm.
        self._created: set[str] = set()
        self._lock = threading.Lock()

    # -- naming --------------------------------------------------------

    def _base(self, dataset: str, measure: str) -> str:
        return f"fbx{self.namespace}-{_slug(dataset)}-{_slug(measure)}"

    def head_name(self, dataset: str, measure: str) -> str:
        return self._base(dataset, measure) + "-head"

    def payload_name(self, dataset: str, measure: str, generation: int) -> str:
        return self._base(dataset, measure) + f"-g{generation}"

    # -- head record ---------------------------------------------------

    @staticmethod
    def _read_head(head: shared_memory.SharedMemory) -> tuple[int, str] | None:
        raw = bytes(head.buf[:4])
        length = int.from_bytes(raw, "little")
        if length == 0 or length > _HEAD_SIZE - 4:
            return None
        try:
            record = json.loads(bytes(head.buf[4 : 4 + length]).decode("utf-8"))
            return int(record["generation"]), str(record["payload"])
        except Exception:
            return None  # torn concurrent rewrite; caller treats as a miss

    @staticmethod
    def _write_head(
        head: shared_memory.SharedMemory, generation: int, payload: str
    ) -> None:
        body = json.dumps(
            {"generation": generation, "payload": payload},
            separators=(",", ":"),
        ).encode("utf-8")
        record = len(body).to_bytes(4, "little") + body
        head.buf[: len(record)] = record

    # -- publish / attach ----------------------------------------------

    def head_generation(self, dataset: str, measure: str) -> int:
        """The currently published generation (0 when nothing is live)."""
        try:
            head = _open_shm(self.head_name(dataset, measure))
        except (FileNotFoundError, OSError):
            return 0
        try:
            parsed = self._read_head(head)
        finally:
            head.close()
        return parsed[0] if parsed else 0

    def publish(self, dataset: str, measure: str, encode) -> int:
        """Publish the next generation; ``encode(generation)`` builds the blob.

        Returns the generation published.  The superseded payload is
        unlinked after the head points at the new one; attached readers keep
        their mappings.
        """
        head_name = self.head_name(dataset, measure)
        try:
            head = _open_shm(head_name)
        except FileNotFoundError:
            head = _open_shm(head_name, create=True, size=_HEAD_SIZE)
        with self._lock:
            self._created.add(head_name)
        try:
            previous = self._read_head(head)
            generation = (previous[0] if previous else 0) + 1
            blob = encode(generation)
            payload_name = self.payload_name(dataset, measure, generation)
            _unlink(payload_name)  # leftover from a crashed publish
            payload = _open_shm(payload_name, create=True, size=len(blob))
            with self._lock:
                self._created.add(payload_name)
            payload.buf[: len(blob)] = blob
            payload.close()
            self._write_head(head, generation, payload_name)
        finally:
            head.close()
        if previous is not None and previous[1] != payload_name:
            _unlink(previous[1])
        return generation

    def attach(
        self, dataset: str, measure: str
    ) -> tuple[int, shared_memory.SharedMemory]:
        """Map the live payload; raises :class:`SegmentMiss` when impossible."""
        try:
            head = _open_shm(self.head_name(dataset, measure))
        except (FileNotFoundError, OSError):
            raise SegmentMiss(f"no segment for ({dataset!r}, {measure!r})") from None
        try:
            parsed = self._read_head(head)
        finally:
            head.close()
        if parsed is None:
            raise SegmentMiss(f"unreadable head for ({dataset!r}, {measure!r})")
        generation, payload_name = parsed
        try:
            payload = _open_shm(payload_name)
        except (FileNotFoundError, OSError):
            raise SegmentMiss(
                f"payload {payload_name!r} superseded mid-attach"
            ) from None
        return generation, payload

    def segment_count(self, dataset: str) -> int:
        """How many live segments (heads + payloads) back ``dataset``.

        A live shard-pool resize hands columnar state between workers by
        *not* touching the segments at all — the destination re-attaches
        the same shared memory — so a before/after count that stays equal
        is the cheap observable proof of the O(1) handoff.
        """
        return len(self._known(f"fbx{self.namespace}-{_slug(dataset)}-"))

    # -- cleanup -------------------------------------------------------

    def _known(self, prefix: str) -> set[str]:
        names: set[str] = set()
        if _SHM_DIR.is_dir():
            try:
                names.update(
                    entry.name
                    for entry in _SHM_DIR.iterdir()
                    if entry.name.startswith(prefix)
                )
            except OSError:  # pragma: no cover - scan raced a teardown
                pass
        with self._lock:
            names.update(name for name in self._created if name.startswith(prefix))
        return names

    def clear(
        self, dataset: str | None = None, keep_measures: Sequence[str] = ()
    ) -> int:
        """Unlink this namespace's segments; returns how many were removed.

        With ``dataset`` set, only that dataset's segments go; measures in
        ``keep_measures`` survive (their F-Boxes just republished and still
        reflect the live dataset state).
        """
        if dataset is None:
            prefix = f"fbx{self.namespace}-"
        else:
            prefix = f"fbx{self.namespace}-{_slug(dataset)}-"
        keep = {
            self._base(dataset, measure)
            for measure in keep_measures
            if dataset is not None
        }
        removed = 0
        for name in self._known(prefix):
            if any(name.startswith(base) for base in keep):
                continue
            _unlink(name)
            removed += 1
        with self._lock:
            self._created = {
                name for name in self._created if not name.startswith(prefix)
            } | (self._created & keep)
        return removed

    def close(self) -> int:
        """Unlink everything in the namespace (server shutdown)."""
        return self.clear()


# ----------------------------------------------------------------------
# Columnar layout
# ----------------------------------------------------------------------

_PAIR_AXES = {GROUP: (1, 2), QUERY: (0, 2), LOCATION: (0, 1)}


def member_matrix(values: np.ndarray, dimension: str) -> np.ndarray:
    """The cube as a dense ``(members, pairs)`` matrix for one dimension.

    Rows follow the dimension's domain order; columns follow the fixed-pair
    iteration order of :func:`repro.core.indices.build_family` (the first
    remaining axis is the major one), so column ``p`` *is* posting list ``p``.
    """
    axis = {GROUP: 0, QUERY: 1, LOCATION: 2}[dimension]
    moved = np.moveaxis(values, axis, 0)
    return np.ascontiguousarray(moved.reshape(moved.shape[0], -1))


def sorted_columns(
    matrix: np.ndarray, descending: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Per-column stable argsort with NaNs dropped: the posting-list arrays.

    Returns ``(offsets, perm)``: ``perm[offsets[p]:offsets[p + 1]]`` lists
    the member rows of posting list ``p`` in sort order.  A stable argsort
    on the (negated, for descending) values reproduces the stable python
    sort in :meth:`InvertedIndex.from_pairs` exactly: ties keep domain
    order, and NaNs — which sort last either way — are truncated per column.
    """
    members, _ = matrix.shape
    keys = -matrix if descending else matrix
    order = np.argsort(keys, axis=0, kind="stable")
    lengths = members - np.isnan(matrix).sum(axis=0)
    offsets = np.zeros(len(lengths) + 1, dtype=np.int32)
    np.cumsum(lengths, out=offsets[1:], dtype=np.int32)
    mask = np.arange(members)[None, :] < lengths[:, None]
    perm = order.T[mask].astype(np.int32)
    return offsets, perm


def _pair_count(shape: tuple[int, int, int], dimension: str) -> int:
    a, b = _PAIR_AXES[dimension]
    return shape[a] * shape[b]


def _align(offset: int) -> int:
    return -(-offset // 8) * 8


def _layout(
    shape: tuple[int, int, int], families: Sequence[tuple[str, bool, int]]
) -> tuple[int, list[tuple[int, int]], int]:
    """Deterministic block offsets (relative to the data region) and size."""
    cursor = 0

    def block(count: int, itemsize: int) -> int:
        nonlocal cursor
        cursor = _align(cursor)
        start = cursor
        cursor += count * itemsize
        return start

    values_offset = block(shape[0] * shape[1] * shape[2], 8)
    family_offsets = []
    for dimension, _descending, perm_size in families:
        offsets_offset = block(_pair_count(shape, dimension) + 1, 4)
        perm_offset = block(perm_size, 4)
        family_offsets.append((offsets_offset, perm_offset))
    return values_offset, family_offsets, _align(cursor)


class ColumnarStore:
    """The flat image of one cube plus its materialized family arrays.

    ``families`` maps ``(dimension, descending)`` to ``(offsets, perm)``
    int32 arrays.  The store either owns plain arrays (built locally) or
    holds read-only views into an attached shared-memory payload, which it
    keeps alive for as long as any view can be reachable.
    """

    def __init__(
        self,
        cube: UnfairnessCube,
        families: dict[tuple[str, bool], tuple[np.ndarray, np.ndarray]],
        generation: int = 0,
        segment: shared_memory.SharedMemory | None = None,
    ) -> None:
        self.cube = cube
        self.families = families
        self.generation = generation
        # An attached payload must never be closed while views exist; the
        # mapping is released with the store (unlink is independent of it).
        self._segment = segment

    @classmethod
    def from_cube(
        cls,
        cube: UnfairnessCube,
        family_keys: Sequence[tuple[str, bool]] = (),
    ) -> "ColumnarStore":
        """Build the columnar arrays for ``cube`` (vectorized argsorts)."""
        families = {}
        for dimension, descending in family_keys:
            matrix = member_matrix(cube.values, dimension)
            families[(dimension, descending)] = sorted_columns(matrix, descending)
        return cls(cube, families)

    def add_family(self, dimension: str, descending: bool) -> None:
        if (dimension, descending) in self.families:
            return
        matrix = member_matrix(self.cube.values, dimension)
        self.families[(dimension, descending)] = sorted_columns(matrix, descending)

    # -- serialization -------------------------------------------------

    def encode(self, generation: int) -> bytes:
        """One flat blob: length-prefixed JSON header, then aligned arrays."""
        shape = self.cube.values.shape
        metas = [
            (dimension, descending, int(perm.size))
            for (dimension, descending), (_, perm) in self.families.items()
        ]
        header = {
            "generation": generation,
            "shape": list(shape),
            "groups": [
                [list(predicate) for predicate in group.predicates]
                for group in self.cube.groups
            ],
            "queries": list(self.cube.queries),
            "locations": list(self.cube.locations),
            "families": [
                {"dimension": d, "descending": bool(desc), "perm_size": n}
                for d, desc, n in metas
            ],
        }
        head = json.dumps(header, separators=(",", ":")).encode("utf-8")
        data_start = _align(8 + len(head))
        values_offset, family_offsets, data_size = _layout(shape, metas)
        blob = bytearray(data_start + data_size)
        blob[0:8] = len(head).to_bytes(8, "little")
        blob[8 : 8 + len(head)] = head

        def put(offset: int, array: np.ndarray) -> None:
            start = data_start + offset
            raw = np.ascontiguousarray(array)
            blob[start : start + raw.nbytes] = raw.tobytes()

        put(values_offset, self.cube.values)
        for (offsets_offset, perm_offset), (offsets, perm) in zip(
            family_offsets, self.families.values()
        ):
            put(offsets_offset, offsets)
            put(perm_offset, perm)
        return bytes(blob)

    @classmethod
    def decode(cls, segment: shared_memory.SharedMemory) -> "ColumnarStore":
        """Zero-copy read-only views over an attached payload segment."""
        buf = segment.buf
        try:
            head_length = int.from_bytes(bytes(buf[0:8]), "little")
            header = json.loads(bytes(buf[8 : 8 + head_length]).decode("utf-8"))
            shape = tuple(header["shape"])
            metas = [
                (entry["dimension"], bool(entry["descending"]), int(entry["perm_size"]))
                for entry in header["families"]
            ]
            data_start = _align(8 + head_length)
            values_offset, family_offsets, _ = _layout(shape, metas)

            def view(offset: int, dtype, count: int) -> np.ndarray:
                array = np.frombuffer(
                    buf, dtype=dtype, count=count, offset=data_start + offset
                )
                array.flags.writeable = False
                return array

            values = view(
                values_offset, np.float64, shape[0] * shape[1] * shape[2]
            ).reshape(shape)
            groups = [
                Group([tuple(predicate) for predicate in predicates])
                for predicates in header["groups"]
            ]
            cube = UnfairnessCube(
                groups, header["queries"], header["locations"], values
            )
            families = {}
            for (dimension, descending, perm_size), (
                offsets_offset,
                perm_offset,
            ) in zip(metas, family_offsets):
                offsets = view(
                    offsets_offset, np.int32, _pair_count(shape, dimension) + 1
                )
                perm = view(perm_offset, np.int32, perm_size)
                families[(dimension, descending)] = (offsets, perm)
            return cls(
                cube,
                families,
                generation=int(header["generation"]),
                segment=segment,
            )
        except SegmentMiss:
            raise
        except Exception as error:
            raise SegmentMiss(f"undecodable payload segment: {error}") from error


# ----------------------------------------------------------------------
# Columnar index family
# ----------------------------------------------------------------------

_UNSEEN = 1 << 60


class ColumnarFamily:
    """An :class:`IndexFamily`-compatible family over flat columnar arrays.

    The probe interface (``sorted_access`` / ``random_access`` /
    ``has_value`` / ``posting_list``) matches the dict family including its
    error messages and success-only cost accounting.  :meth:`run_sweep`
    additionally replays the whole threshold algorithm over numpy views —
    :func:`repro.core.fagin.top_k` dispatches to it when present.
    """

    def __init__(
        self,
        cube: UnfairnessCube,
        dimension: str,
        descending: bool,
        offsets: np.ndarray,
        perm: np.ndarray,
    ) -> None:
        self.dimension = dimension
        self.descending = descending
        self.stats = AccessStats()
        self.query_lock = threading.Lock()
        self._cube = cube
        self._offsets = offsets
        self._perm = perm
        self._matrix = member_matrix(cube.values, dimension)
        self._members = cube.domain(dimension)
        self._member_rows = {member: row for row, member in enumerate(self._members)}
        self._pairs = self._pair_domain(cube, dimension)
        self._pair_cols = {pair: col for col, pair in enumerate(self._pairs)}
        self._lists: dict[tuple, InvertedIndex] = {}
        self._sweep_state: dict | None = None

    @staticmethod
    def _pair_domain(cube: UnfairnessCube, dimension: str) -> list[tuple]:
        if dimension == GROUP:
            return [(q, l) for q in cube.queries for l in cube.locations]
        if dimension == QUERY:
            return [(g, l) for g in cube.groups for l in cube.locations]
        if dimension == LOCATION:
            return [(g, q) for g in cube.groups for q in cube.queries]
        raise IndexError_(
            f"unknown dimension {dimension!r}; use group/query/location"
        )

    # -- IndexFamily interface -----------------------------------------

    @property
    def pair_keys(self) -> list[tuple]:
        """All fixed-pair keys, in canonical (build) order."""
        return list(self._pairs)

    def _column(self, pair: tuple) -> int:
        try:
            return self._pair_cols[pair]
        except KeyError:
            raise IndexError_(f"no posting list for pair {pair!r}") from None

    def posting_list(self, pair: tuple) -> InvertedIndex:
        """A materialized :class:`InvertedIndex` view of one column (cached)."""
        cached = self._lists.get(pair)
        if cached is None:
            col = self._column(pair)
            start, stop = int(self._offsets[col]), int(self._offsets[col + 1])
            rows = self._perm[start:stop]
            cached = InvertedIndex(
                entries=tuple(
                    (self._members[row], float(self._matrix[row, col]))
                    for row in rows
                ),
                descending=self.descending,
            )
            self._lists[pair] = cached
        return cached

    def sorted_access(self, pair: tuple, position: int) -> tuple[Hashable, float]:
        """Counted sorted access; misses are tallied, not charged."""
        try:
            col = self._column(pair)
            start, stop = int(self._offsets[col]), int(self._offsets[col + 1])
            if not 0 <= position < stop - start:
                raise IndexError_(
                    f"sorted access at {position} out of range (size {stop - start})"
                )
        except IndexError_:
            self.stats.record_sorted_miss()
            raise
        row = int(self._perm[start + position])
        self.stats.record_sorted()
        return self._members[row], float(self._matrix[row, col])

    def random_access(self, pair: tuple, key: Hashable) -> float:
        """Counted O(1) random access; misses are tallied, not charged."""
        try:
            col = self._column(pair)
            row = self._member_rows.get(key)
            if row is None:
                raise IndexError_(f"key {key!r} is not in this posting list")
            value = float(self._matrix[row, col])
            if math.isnan(value):
                raise IndexError_(f"key {key!r} is not in this posting list")
        except IndexError_:
            self.stats.record_random_miss()
            raise IndexError_(
                f"key {key!r} has no value for pair {pair!r}"
            ) from None
        self.stats.record_random()
        return value

    def has_value(self, pair: tuple, key: Hashable) -> bool:
        """True when ``key`` holds a value in the ``pair`` posting list."""
        col = self._pair_cols.get(pair)
        row = self._member_rows.get(key)
        if col is None or row is None:
            return False
        return not math.isnan(float(self._matrix[row, col]))

    def reset_stats(self) -> None:
        """Detach a fresh zeroed counter (frozen results keep the old one)."""
        self.stats = AccessStats()

    def stats_snapshot(self) -> AccessStats:
        """A consistent copy of the current access counters."""
        return self.stats.snapshot()

    # -- the vectorized threshold algorithm ----------------------------

    def _prepare_sweep(self) -> dict:
        """Precompute everything one sweep needs (cached across runs).

        ``aggregate[m]`` uses ``math.fsum`` — bit-identical to the
        ``statistics.fmean`` the dict TA computes per member, since fsum is
        exactly rounded and therefore order-independent.  ``first_seen[m]``
        is the 1-based round in which member ``m`` first surfaces under
        uniform round-robin sorted access: one past its best position over
        all posting lists.
        """
        state = self._sweep_state
        if state is not None:
            return state
        matrix = self._matrix
        offsets = self._offsets.astype(np.int64)
        perm = self._perm.astype(np.int64)
        lengths = np.diff(offsets)
        defined = ~np.isnan(matrix)
        counts = defined.sum(axis=1)
        aggregate: list[float | None] = []
        for row in range(matrix.shape[0]):
            values = matrix[row][defined[row]]
            if values.size:
                aggregate.append(math.fsum(values.tolist()) / values.size)
            else:
                aggregate.append(None)
        positions = np.arange(perm.size) - np.repeat(offsets[:-1], lengths)
        first_seen = np.full(matrix.shape[0], _UNSEEN, dtype=np.int64)
        np.minimum.at(first_seen, perm, positions)
        first_seen[first_seen < _UNSEEN] += 1
        nonempty = lengths > 0
        sorted_values = (
            matrix[perm, np.repeat(np.arange(lengths.size), lengths)]
            if perm.size
            else np.empty(0)
        )
        state = {
            "lengths": lengths,
            "counts": counts,
            "aggregate": aggregate,
            "first_seen": first_seen,
            "tiebreaks": [str(member) for member in self._members],
            "complete": not np.isnan(matrix).any(),
            "frontier_starts": offsets[:-1][nonempty],
            "frontier_lengths": lengths[nonempty],
            "sorted_values": sorted_values,
            "by_round": None,
        }
        by_round: dict[int, list[int]] = {}
        for row in range(matrix.shape[0]):
            seen = int(first_seen[row])
            if seen < _UNSEEN:
                by_round.setdefault(seen, []).append(row)
        state["by_round"] = by_round
        self._sweep_state = state
        return state

    def run_sweep(self, k: int, order: str) -> TopKResult:
        """The threshold algorithm over the columnar arrays.

        Replays :func:`repro.core.fagin.top_k` exactly — same rounds, same
        heap tie-breaks, same fsum-exact threshold and early-stop test, and
        the same cost model (``sorted_accesses`` = every successful
        round-robin probe up to the stopping round; ``random_accesses`` =
        one per defined cell of every member surfaced by then) — but the
        per-entry work is replaced by precomputed aggregates and frontier
        gathers over the value block.
        """
        descending = order == "most"
        if descending != self.descending:
            raise AlgorithmError(
                f"index family is sorted {'descending' if self.descending else 'ascending'}; "
                f"cannot sweep order {order!r}"
            )
        self.reset_stats()
        state = self._prepare_sweep()
        sign = 1.0 if descending else -1.0
        k = min(k, len(self._members))
        lengths = state["lengths"]
        aggregate = state["aggregate"]
        tiebreaks = state["tiebreaks"]
        sorted_values = state["sorted_values"]
        frontier_starts = state["frontier_starts"]
        frontier_lengths = state["frontier_lengths"]
        natural_rounds = int(lengths.max()) + 1 if lengths.size else 0
        heap: list[tuple[float, str, int]] = []
        rounds = 0
        early_stopped = False
        for current in range(1, natural_rounds + 1):
            rounds = current
            for row in state["by_round"].get(current, ()):
                entry = (sign * aggregate[row], tiebreaks[row], row)
                if len(heap) < k:
                    heapq.heappush(heap, entry)
                elif entry > heap[0]:
                    heapq.heapreplace(heap, entry)
            if state["complete"] and frontier_lengths.size and len(heap) == k:
                cursor = frontier_starts + np.minimum(current, frontier_lengths) - 1
                frontier = sorted_values[cursor]
                threshold = math.fsum(frontier.tolist()) / frontier.size
                if heap[0][0] >= sign * threshold:
                    early_stopped = True
                    break
        if rounds:
            self.stats.record_sorted(int(np.minimum(rounds, lengths).sum()))
            seen = state["first_seen"] <= rounds
            self.stats.record_random(int(state["counts"][seen].sum()))
        ordered = sorted(heap, reverse=True)
        entries = tuple(
            (self._members[row], aggregate[row]) for _, __, row in ordered
        )
        return TopKResult(
            entries=entries,
            order=order,
            rounds=rounds,
            stats=self.stats,
            early_stopped=early_stopped,
        )


# ----------------------------------------------------------------------
# Columnar F-Box
# ----------------------------------------------------------------------


class ColumnarFBox(FBox):
    """An :class:`FBox` whose materializations live in columnar storage.

    Unbound, it behaves like the dict F-Box with flat arrays underneath.
    Bound to a :class:`SegmentSpace` (via :meth:`bind_segment`), every
    build and delta is published as a new segment generation, and a cold
    instance *attaches* to a published segment — adopting the cube and
    every published family without recomputing anything — whenever the
    segment's domains match this box's (a stale segment is rebuilt over).
    """

    def __init__(
        self,
        engine,
        groups: Sequence[Group],
        queries: Sequence[str],
        locations: Sequence[str],
    ) -> None:
        super().__init__(engine, groups, queries, locations)
        self._store: ColumnarStore | None = None
        self._space: SegmentSpace | None = None
        self._dataset_name: str | None = None
        self._measure_name: str | None = None
        self.segment_attaches = 0

    def bind_segment(self, space: SegmentSpace, dataset: str, measure: str) -> None:
        """Tie this box to one ``(dataset, measure)`` segment in ``space``."""
        self._space = space
        self._dataset_name = dataset
        self._measure_name = measure

    # -- segment lifecycle ---------------------------------------------

    def _publish(self) -> None:
        if self._space is None or self._store is None:
            return
        generation = self._space.publish(
            self._dataset_name, self._measure_name, self._store.encode
        )
        self._store.generation = generation

    def _try_attach(self) -> ColumnarStore | None:
        if self._space is None:
            return None
        try:
            generation, segment = self._space.attach(
                self._dataset_name, self._measure_name
            )
            store = ColumnarStore.decode(segment)
        except SegmentMiss:
            return None
        store.generation = generation
        cube = store.cube
        if (
            cube.groups != self.groups
            or cube.queries != self.queries
            or cube.locations != self.locations
        ):
            # The segment reflects a dataset state this box does not; a
            # fresh build below republishes over it.
            return None
        return store

    # -- materialization overrides -------------------------------------

    @property
    def cube(self) -> UnfairnessCube:
        if self._cube is None:
            with self._build_lock:
                if self._cube is None:
                    store = self._try_attach()
                    if store is None:
                        computed = UnfairnessCube.compute(
                            self.engine, self.groups, self.queries, self.locations
                        )
                        store = ColumnarStore.from_cube(computed)
                        self._store = store
                        self._cube = store.cube
                        self.cube_builds += 1
                        self._publish()
                    else:
                        self._store = store
                        self._cube = store.cube
                        self.segment_attaches += 1
                        for (dimension, descending), (offsets, perm) in (
                            store.families.items()
                        ):
                            self._families[(dimension, descending)] = ColumnarFamily(
                                store.cube, dimension, descending, offsets, perm
                            )
        return self._cube

    def family(self, dimension: str, order: str = "most") -> ColumnarFamily:
        if order not in ("most", "least"):
            raise AlgorithmError(f"order must be 'most' or 'least', got {order!r}")
        descending = order == "most"
        key = (dimension, descending)
        if key not in self._families:
            cube = self.cube  # materialize outside the family check
            with self._build_lock:
                if key not in self._families:
                    if dimension not in (GROUP, QUERY, LOCATION):
                        raise IndexError_(
                            f"unknown dimension {dimension!r}; "
                            "use group/query/location"
                        )
                    self._store.add_family(dimension, descending)
                    offsets, perm = self._store.families[key]
                    self._families[key] = ColumnarFamily(
                        cube, dimension, descending, offsets, perm
                    )
                    self.family_builds += 1
                    self._publish()
        return self._families[key]

    def apply_observations(
        self,
        queries: Sequence[str],
        locations: Sequence[str],
        dirty_pairs: Sequence[tuple[str, str]],
    ) -> dict[str, int]:
        """Incremental delta over columnar state, published as a generation.

        Byte-identical to the dict core: the cube delta recomputes exactly
        the dirty columns, every permutation array comes from the same
        stable argsort a cold build would run, and ``lists_rebuilt`` counts
        posting lists whose own cells changed (plus lists for new pairs) —
        the same exact-staleness predicate as
        :func:`repro.core.indices.refresh_family`.  The columnar refresh
        re-derives the permutation arrays in one vectorized argsort per
        family, which costs about as much as splicing a single stale column.
        """
        queries = list(queries)
        locations = list(locations)
        with self._build_lock:
            self.queries = queries
            self.locations = locations
            if self._cube is None:
                return {"cells_recomputed": 0, "lists_rebuilt": 0}
            old = self._cube
            fresh = UnfairnessCube.compute_delta(
                old, self.engine, queries, locations, dirty_pairs
            )
            padded = np.full(fresh.values.shape, np.nan)
            g, q, l = old.values.shape
            padded[:g, :q, :l] = old.values
            changed = ~(
                (padded == fresh.values)
                | (np.isnan(padded) & np.isnan(fresh.values))
            )
            stale = {
                GROUP: changed.any(axis=0),
                QUERY: changed.any(axis=1),
                LOCATION: changed.any(axis=2),
            }
            old_extent = {
                GROUP: (len(old.queries), len(old.locations)),
                QUERY: (len(old.groups), len(old.locations)),
                LOCATION: (len(old.groups), len(old.queries)),
            }
            rebuilt_total = 0
            store = ColumnarStore.from_cube(fresh, list(self._families))
            families: dict[tuple[str, bool], ColumnarFamily] = {}
            for (dimension, descending) in list(self._families):
                offsets, perm = store.families[(dimension, descending)]
                families[(dimension, descending)] = ColumnarFamily(
                    fresh, dimension, descending, offsets, perm
                )
                flags = stale[dimension]
                rows, cols = old_extent[dimension]
                rebuilt_total += int(flags[:rows, :cols].sum())
                rebuilt_total += flags.size - rows * cols  # lists for new pairs
            self._cube = fresh
            self._store = store
            self._families = families
            cells = len(dirty_pairs) * len(self.groups)
            self.delta_applies += 1
            self.cells_recomputed += cells
            self.lists_rebuilt += rebuilt_total
            self._publish()
            return {"cells_recomputed": cells, "lists_rebuilt": rebuilt_total}


class AttachedFBox:
    """A read-only F-Box over someone else's published segment (the front).

    Supports exactly the engine-free surface the read endpoints use —
    ``quantify`` / ``quantify_many`` / ``compare`` / ``aggregate`` /
    ``signature`` — against zero-copy views of the owning worker's state.
    Anything requiring the dataset itself (``/explain``, ingest) stays on
    the worker.  Construct via :meth:`attach`; raises :class:`SegmentMiss`
    when no live, decodable segment exists.
    """

    def __init__(self, store: ColumnarStore) -> None:
        self._store = store
        self._families: dict[tuple[str, bool], ColumnarFamily] = {}
        self._build_lock = threading.RLock()
        for (dimension, descending), (offsets, perm) in store.families.items():
            self._families[(dimension, descending)] = ColumnarFamily(
                store.cube, dimension, descending, offsets, perm
            )

    @classmethod
    def attach(
        cls, space: SegmentSpace, dataset: str, measure: str
    ) -> "AttachedFBox":
        generation, segment = space.attach(dataset, measure)
        store = ColumnarStore.decode(segment)
        store.generation = generation
        return cls(store)

    @property
    def generation(self) -> int:
        return self._store.generation

    @property
    def cube(self) -> UnfairnessCube:
        return self._store.cube

    def family(self, dimension: str, order: str = "most") -> ColumnarFamily:
        if order not in ("most", "least"):
            raise AlgorithmError(f"order must be 'most' or 'least', got {order!r}")
        descending = order == "most"
        key = (dimension, descending)
        if key not in self._families:
            with self._build_lock:
                if key not in self._families:
                    if dimension not in (GROUP, QUERY, LOCATION):
                        raise IndexError_(
                            f"unknown dimension {dimension!r}; "
                            "use group/query/location"
                        )
                    matrix = member_matrix(self.cube.values, dimension)
                    offsets, perm = sorted_columns(matrix, descending)
                    self._families[key] = ColumnarFamily(
                        self.cube, dimension, descending, offsets, perm
                    )
        return self._families[key]

    def quantify(
        self, dimension: str, k: int, order: str = "most", algorithm: str = "fagin"
    ) -> TopKResult:
        from .fagin import naive_top_k, top_k

        if algorithm == "fagin":
            family = self.family(dimension, order)
            with family.query_lock:
                return top_k(self.cube, dimension, k, order=order, family=family)
        if algorithm == "naive":
            return naive_top_k(self.cube, dimension, k, order=order)
        raise AlgorithmError(
            f"algorithm must be 'fagin' or 'naive', got {algorithm!r}"
        )

    def quantify_many(self, dimension: str, ks, order: str = "most"):
        from .batch import multi_top_k

        family = self.family(dimension, order)
        with family.query_lock:
            return multi_top_k(self.cube, dimension, ks, order=order, family=family)

    def compare(self, dimension: str, r1, r2, breakdown: str, algorithm: str = "cube"):
        from .comparison import compare, compare_with_indices

        if algorithm == "cube":
            return compare(self.cube, dimension, r1, r2, breakdown)
        if algorithm == "indices":
            return compare_with_indices(self.cube, dimension, r1, r2, breakdown)
        raise AlgorithmError(
            f"algorithm must be 'cube' or 'indices', got {algorithm!r}"
        )

    def aggregate(self, **selection) -> float:
        return self.cube.aggregate(**selection)
