"""The F-Box: the framework facade of the paper's Figures 6 and 9.

Both experiment pipelines funnel their processed observations into the
"F-Box", which materializes unfairness values and answers the two generic
problems.  :class:`FBox` is that component: construct it from a marketplace
or search dataset plus a measure name, and it lazily builds the unfairness
cube and whatever index families the queries need.

    >>> fbox = FBox.for_marketplace(dataset, schema, measure="emd")
    >>> fbox.quantify("group", k=5)                     # Problem 1
    >>> fbox.compare("group", males, females, "location")  # Problem 2
"""

from __future__ import annotations

import threading
from typing import Hashable, Iterable, Sequence

import numpy as np

from ..data.schema import MarketplaceDataset, SearchDataset
from ..exceptions import AlgorithmError, MeasureError
from ..stats.histograms import DEFAULT_BINS
from .attributes import AttributeSchema
from .comparison import ComparisonReport, compare, compare_with_indices
from .cube import UnfairnessCube
from .fagin import TopKResult, naive_top_k, top_k
from .groups import Group, group_lattice
from .indices import IndexFamily, build_family, refresh_family
from .interventions import InterventionResult, apply_intervention
from .unfairness import MarketplaceUnfairness, SearchEngineUnfairness, UnfairnessEngine

__all__ = ["FBox"]


class FBox:
    """Unified fairness quantification and comparison over one site's data.

    Use the :meth:`for_marketplace` / :meth:`for_search` constructors rather
    than ``__init__`` unless supplying a custom engine.

    Parameters
    ----------
    engine:
        Any object satisfying :class:`~repro.core.unfairness.UnfairnessEngine`.
    groups / queries / locations:
        The domains of the unfairness cube.  ``groups`` defaults to the full
        group lattice of the engine's schema; queries and locations default
        to everything observed in the dataset.
    """

    def __init__(
        self,
        engine: UnfairnessEngine,
        groups: Sequence[Group],
        queries: Sequence[str],
        locations: Sequence[str],
    ) -> None:
        self.engine = engine
        self.groups = list(groups)
        self.queries = list(queries)
        self.locations = list(locations)
        self._cube: UnfairnessCube | None = None
        self._families: dict[tuple[str, bool], IndexFamily] = {}
        # Shared FBox instances (the query service) materialize lazily from
        # many threads; the lock makes each build happen exactly once.
        self._build_lock = threading.RLock()
        self.cube_builds = 0
        self.family_builds = 0
        self.delta_applies = 0
        self.cells_recomputed = 0
        self.lists_rebuilt = 0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def for_marketplace(
        cls,
        dataset: MarketplaceDataset,
        schema: AttributeSchema,
        measure: str = "emd",
        groups: Iterable[Group] | None = None,
        queries: Iterable[str] | None = None,
        locations: Iterable[str] | None = None,
        bins: int = DEFAULT_BINS,
        exposure_denominator: str = "comparables",
    ) -> "FBox":
        """F-Box over crawled worker rankings (TaskRabbit-style sites)."""
        engine = MarketplaceUnfairness(
            dataset,
            schema,
            measure=measure,
            bins=bins,
            exposure_denominator=exposure_denominator,
        )
        return cls(
            engine,
            groups=list(groups) if groups is not None else group_lattice(schema),
            queries=list(queries) if queries is not None else dataset.queries,
            locations=list(locations) if locations is not None else dataset.locations,
        )

    @classmethod
    def for_search(
        cls,
        dataset: SearchDataset,
        schema: AttributeSchema,
        measure: str = "kendall",
        groups: Iterable[Group] | None = None,
        queries: Iterable[str] | None = None,
        locations: Iterable[str] | None = None,
        **measure_options,
    ) -> "FBox":
        """F-Box over per-user result lists (Google-job-search-style sites)."""
        engine = SearchEngineUnfairness(
            dataset, schema, measure=measure, **measure_options
        )
        return cls(
            engine,
            groups=list(groups) if groups is not None else group_lattice(schema),
            queries=list(queries) if queries is not None else dataset.queries,
            locations=list(locations) if locations is not None else dataset.locations,
        )

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------

    @property
    def cube(self) -> UnfairnessCube:
        """The materialized unfairness cube (computed exactly once).

        Double-checked locking: the fast path reads the attribute without
        taking the lock, so concurrent readers pay nothing once the cube
        exists, and first-touch threads race to the lock where only the
        winner computes.
        """
        if self._cube is None:
            with self._build_lock:
                if self._cube is None:
                    self._cube = UnfairnessCube.compute(
                        self.engine, self.groups, self.queries, self.locations
                    )
                    self.cube_builds += 1
        return self._cube

    def family(self, dimension: str, order: str = "most") -> IndexFamily:
        """The ``dimension``-based index family (cached per sort direction).

        Built exactly once per ``(dimension, order)`` under the same lock as
        the cube, so concurrent first-touch queries share one build.
        """
        if order not in ("most", "least"):
            raise AlgorithmError(f"order must be 'most' or 'least', got {order!r}")
        descending = order == "most"
        key = (dimension, descending)
        if key not in self._families:
            cube = self.cube  # materialize outside the family check
            with self._build_lock:
                if key not in self._families:
                    self._families[key] = build_family(cube, dimension, descending)
                    self.family_builds += 1
        return self._families[key]

    def apply_observations(
        self,
        queries: Sequence[str],
        locations: Sequence[str],
        dirty_pairs: Sequence[tuple[str, str]],
    ) -> dict[str, int]:
        """Fold upserted observations into the live materializations.

        ``queries``/``locations`` are the dataset's *post-upsert* domains
        (first-seen order only appends, so they extend this F-Box's).  Only
        the dirty ``(query, location)`` cube columns are recomputed and only
        the posting lists they touch are re-sorted; everything else is reused
        verbatim, which is what makes the result bit-identical to a cold
        rebuild of the final dataset state.  Returns delta-work counters.
        """
        queries = list(queries)
        locations = list(locations)
        with self._build_lock:
            self.queries = queries
            self.locations = locations
            if self._cube is None:
                # Nothing materialized yet: the next lazy build sees the new
                # domains and dataset state, so there is no delta to apply.
                return {"cells_recomputed": 0, "lists_rebuilt": 0}
            old = self._cube
            self._cube = UnfairnessCube.compute_delta(
                self._cube, self.engine, queries, locations, dirty_pairs
            )
            # The exact staleness mask: which cells actually changed value
            # (NaN-aware — a cell undefined before and after is unchanged).
            # Old domains are prefixes of the new ones, so the old block
            # NaN-pads into the new shape exactly as compute_delta laid it.
            padded = np.full(self._cube.values.shape, np.nan)
            g, q, l = old.values.shape
            padded[:g, :q, :l] = old.values
            fresh_values = self._cube.values
            changed = ~(
                (padded == fresh_values)
                | (np.isnan(padded) & np.isnan(fresh_values))
            )
            rebuilt_total = 0
            for (dimension, descending), family in list(self._families.items()):
                fresh, rebuilt = refresh_family(
                    self._cube,
                    dimension,
                    descending,
                    family,
                    dirty_pairs,
                    changed=changed,
                )
                self._families[(dimension, descending)] = fresh
                rebuilt_total += rebuilt
            cells = len(dirty_pairs) * len(self.groups)
            self.delta_applies += 1
            self.cells_recomputed += cells
            self.lists_rebuilt += rebuilt_total
            return {"cells_recomputed": cells, "lists_rebuilt": rebuilt_total}

    @property
    def signature(self) -> tuple:
        """A cheap, hashable identity for cache keys: engine kind, measure,
        and domain sizes.  Stable across calls; no cube materialization."""
        return (
            type(self.engine).__name__,
            getattr(self.engine, "measure_name", None),
            len(self.groups),
            len(self.queries),
            len(self.locations),
        )

    # ------------------------------------------------------------------
    # The paper's two problems
    # ------------------------------------------------------------------

    def unfairness(self, group: Group, query: str, location: str) -> float:
        """``d<g,q,l>`` for one triple."""
        return self.cube.value(group, query, location)

    def aggregate(self, **selection) -> float:
        """§3.4 aggregation; see :meth:`UnfairnessCube.aggregate`."""
        return self.cube.aggregate(**selection)

    def quantify(
        self, dimension: str, k: int, order: str = "most", algorithm: str = "fagin"
    ) -> TopKResult:
        """Problem 1: the ``k`` most/least unfair members of ``dimension``.

        ``algorithm`` selects the threshold algorithm (``"fagin"``, default)
        or the exhaustive baseline (``"naive"``).
        """
        if algorithm == "fagin":
            family = self.family(dimension, order)
            # The TA resets then accumulates the family's access counters;
            # serialize runs on the shared family so each result reports a
            # coherent count.
            with family.query_lock:
                return top_k(self.cube, dimension, k, order=order, family=family)
        if algorithm == "naive":
            return naive_top_k(self.cube, dimension, k, order=order)
        raise AlgorithmError(f"algorithm must be 'fagin' or 'naive', got {algorithm!r}")

    def quantify_many(
        self, dimension: str, ks: Iterable[int], order: str = "most"
    ) -> dict[int, TopKResult]:
        """Problem 1 for every ``k`` in ``ks`` from one shared index sweep.

        The batch planner's core primitive: one threshold-algorithm run at
        ``max(ks)`` is sliced into each requested ``k`` (see
        :func:`repro.core.batch.multi_top_k`), so a grid of requests that
        differ only in ``k`` costs a single sweep's accesses.  All returned
        results share the sweep's frozen access stats — account them once.
        """
        from .batch import multi_top_k

        family = self.family(dimension, order)
        with family.query_lock:
            return multi_top_k(
                self.cube, dimension, ks, order=order, family=family
            )

    def compare(
        self,
        dimension: str,
        r1: Hashable,
        r2: Hashable,
        breakdown: str,
        algorithm: str = "cube",
    ) -> ComparisonReport:
        """Problem 2: breakdown members whose ordering reverses the overall.

        ``algorithm="cube"`` (default) aggregates straight from the cube;
        ``"indices"`` follows the paper's Algorithm 2 access pattern over
        the inverted indices and reports access counts in ``stats``.
        """
        if algorithm == "cube":
            return compare(self.cube, dimension, r1, r2, breakdown)
        if algorithm == "indices":
            return compare_with_indices(self.cube, dimension, r1, r2, breakdown)
        raise AlgorithmError(
            f"algorithm must be 'cube' or 'indices', got {algorithm!r}"
        )

    def whatif(
        self,
        group: Group,
        query: str,
        location: str,
        intervention: str,
        **options,
    ) -> InterventionResult:
        """What would repairing one cell's ranking do?

        Runs a registered intervention (``"fair"``, ``"exposure_lp"``, …)
        on the worker ranking behind ``d<group, query, location>`` and
        reports the before/after value of every registered group-ranking
        measure.  Purely hypothetical: neither the dataset nor any
        materialized cube/index is touched.  Only group-ranking engines
        (one shared ranking per cell) support interventions; search-engine
        cells have one ranking *per user* and raise :class:`MeasureError`.
        """
        ranked_members = getattr(self.engine, "ranked_members", None)
        if ranked_members is None:
            raise MeasureError(
                "what-if interventions need a group-ranking engine (one "
                f"worker ranking per cell); {type(self.engine).__name__} "
                "does not provide one"
            )
        ranking, members, populated = ranked_members(group, query, location)
        return apply_intervention(
            intervention, ranking, members, populated, **options
        )
