"""Protected-attribute schemas.

The paper's group model (§3.1) is parameterized by a set of *protected
attributes* — gender, ethnicity, neighborhood, income, … — each with a finite
value domain.  An :class:`AttributeSchema` pins down which attributes exist
and which values each admits; every :class:`~repro.core.groups.Group` label is
validated against a schema, and the schema is what enumerates the full group
lattice (all conjunctions of attribute-value predicates).

The case studies use the paper's two-attribute schema (gender × ethnicity),
available as :func:`default_schema`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from ..exceptions import SchemaError

__all__ = ["AttributeSchema", "default_schema", "GENDERS", "ETHNICITIES"]

GENDERS: tuple[str, ...] = ("Male", "Female")
"""Gender categories used in the paper's AMT labeling task."""

ETHNICITIES: tuple[str, ...] = ("Asian", "Black", "White")
"""Ethnicity categories used in the paper's AMT labeling task."""


@dataclass(frozen=True)
class AttributeSchema:
    """A finite set of protected attributes with finite value domains.

    Parameters
    ----------
    domains:
        Mapping from attribute name (e.g. ``"gender"``) to the tuple of
        admissible values (e.g. ``("Male", "Female")``).  Attribute names and
        values are case-sensitive strings.
    """

    domains: Mapping[str, tuple[str, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        frozen: dict[str, tuple[str, ...]] = {}
        for attribute, values in self.domains.items():
            if not attribute or not isinstance(attribute, str):
                raise SchemaError(f"attribute names must be non-empty strings, got {attribute!r}")
            values = tuple(values)
            if not values:
                raise SchemaError(f"attribute {attribute!r} has an empty value domain")
            if len(set(values)) != len(values):
                raise SchemaError(f"attribute {attribute!r} has duplicate values: {values}")
            for value in values:
                if not value or not isinstance(value, str):
                    raise SchemaError(
                        f"values of attribute {attribute!r} must be non-empty strings, "
                        f"got {value!r}"
                    )
            frozen[attribute] = values
        if not frozen:
            raise SchemaError("a schema must declare at least one attribute")
        object.__setattr__(self, "domains", frozen)

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attribute names in declaration order."""
        return tuple(self.domains)

    def values_of(self, attribute: str) -> tuple[str, ...]:
        """Return the value domain of ``attribute``.

        Raises :class:`SchemaError` for unknown attributes.
        """
        try:
            return self.domains[attribute]
        except KeyError:
            raise SchemaError(
                f"unknown attribute {attribute!r}; schema has {sorted(self.domains)}"
            ) from None

    def validate(self, attribute: str, value: str) -> None:
        """Check that ``value`` belongs to the domain of ``attribute``."""
        values = self.values_of(attribute)
        if value not in values:
            raise SchemaError(
                f"value {value!r} is not in the domain of {attribute!r} ({list(values)})"
            )

    def iter_assignments(self, attributes: Sequence[str]) -> Iterator[dict[str, str]]:
        """Yield every full assignment over the given ``attributes``.

        Used to enumerate groups at one level of the lattice: e.g. for
        ``("gender", "ethnicity")`` this yields the six full demographic
        profiles of the case study.
        """
        attributes = tuple(attributes)
        for attribute in attributes:
            self.values_of(attribute)  # validate
        if len(set(attributes)) != len(attributes):
            raise SchemaError(f"duplicate attributes in assignment request: {attributes}")

        def recurse(index: int, partial: dict[str, str]) -> Iterator[dict[str, str]]:
            if index == len(attributes):
                yield dict(partial)
                return
            attribute = attributes[index]
            for value in self.domains[attribute]:
                partial[attribute] = value
                yield from recurse(index + 1, partial)
                del partial[attribute]

        yield from recurse(0, {})

    def __contains__(self, attribute: object) -> bool:
        return attribute in self.domains


def default_schema() -> AttributeSchema:
    """The paper's case-study schema: gender × ethnicity."""
    return AttributeSchema({"gender": GENDERS, "ethnicity": ETHNICITIES})
