"""Core framework: groups, measures, unfairness cube, indices, algorithms."""

from .attributes import ETHNICITIES, GENDERS, AttributeSchema, default_schema
from .comparison import BreakdownRow, ComparisonReport, compare, compare_with_indices
from .cube import GROUP, LOCATION, QUERY, UnfairnessCube
from .explain import (
    CellContribution,
    CellExplanation,
    Contribution,
    explain_aggregate,
    explain_cell,
)
from .fagin import TopKResult, naive_top_k, top_k
from .fbox import FBox
from .groups import Group, comparable_groups, enumerate_groups, group_lattice, variants
from .indices import AccessStats, IndexFamily, InvertedIndex, build_family
from .rankings import RankedList, exposure_from_rank, relevance_from_rank
from .unfairness import (
    MarketplaceUnfairness,
    SearchEngineUnfairness,
    UnfairnessEngine,
    aggregate_unfairness,
)

__all__ = [
    "ETHNICITIES",
    "GENDERS",
    "AttributeSchema",
    "default_schema",
    "BreakdownRow",
    "ComparisonReport",
    "compare",
    "compare_with_indices",
    "GROUP",
    "LOCATION",
    "QUERY",
    "UnfairnessCube",
    "CellContribution",
    "CellExplanation",
    "Contribution",
    "explain_aggregate",
    "explain_cell",
    "TopKResult",
    "naive_top_k",
    "top_k",
    "FBox",
    "Group",
    "comparable_groups",
    "enumerate_groups",
    "group_lattice",
    "variants",
    "AccessStats",
    "IndexFamily",
    "InvertedIndex",
    "build_family",
    "RankedList",
    "exposure_from_rank",
    "relevance_from_rank",
    "MarketplaceUnfairness",
    "SearchEngineUnfairness",
    "UnfairnessEngine",
    "aggregate_unfairness",
]
