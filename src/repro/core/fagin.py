"""Fagin-style threshold algorithms for fairness quantification (Problem 1).

Algorithm 1 of the paper adapts Fagin's Threshold Algorithm (TA) to find the
``k`` groups for which a site is most unfair; the query-fairness and
location-fairness instances — and all three bottom-``k`` variants — are the
same algorithm over a different index family and sort direction.
:func:`top_k` implements all six.

The TA loop, faithful to the paper's pseudocode:

1. round-robin **sorted access** over every posting list of the chosen
   family (one list per fixed ``(dim2, dim3)`` pair);
2. for each newly seen key, **random access** into every other list to
   assemble its exact aggregate ``d<r, AGG1, AGG2>`` (the average over the
   two aggregated dimensions);
3. maintain a heap of the current best ``k``;
4. stop once the threshold ``τ`` — the average of the values at the current
   sorted-access frontier — can no longer beat the worst heap entry.

The early-termination bound is valid only when every key appears in every
posting list (a complete cube); with missing cells :func:`top_k` still
returns exact results but disables the early stop.  :func:`naive_top_k` is
the exhaustive baseline used for correctness tests and the efficiency
benchmarks.
"""

from __future__ import annotations

import heapq
import math
import statistics
from dataclasses import dataclass, field
from typing import Hashable, Sequence

import numpy as np

from ..exceptions import AlgorithmError
from .cube import UnfairnessCube
from .indices import AccessStats, IndexFamily, build_family

__all__ = ["TopKResult", "top_k", "naive_top_k"]


@dataclass(frozen=True)
class TopKResult:
    """Outcome of a fairness-quantification run.

    ``entries`` are ``(key, aggregate_unfairness)`` pairs, best-first for the
    requested order (most unfair first for ``order="most"``).  ``rounds`` is
    the number of completed sorted-access sweeps; ``early_stopped`` reports
    whether the threshold fired before the posting lists were exhausted.
    """

    entries: tuple[tuple[Hashable, float], ...]
    order: str
    rounds: int = 0
    stats: AccessStats = field(default_factory=AccessStats)
    early_stopped: bool = False

    def keys(self) -> list[Hashable]:
        """The returned dimension members, best-first."""
        return [key for key, _ in self.entries]

    def values(self) -> list[float]:
        """The aggregate unfairness values, aligned with :meth:`keys`."""
        return [value for _, value in self.entries]


def _tiebreak(key: Hashable) -> str:
    return str(key)


def _exact_aggregate(
    family: IndexFamily, key: Hashable, pairs: Sequence[tuple]
) -> float | None:
    """Average of ``key``'s values over all pairs where it is defined."""
    values = [
        family.random_access(pair, key) for pair in pairs if family.has_value(pair, key)
    ]
    if not values:
        return None
    return statistics.fmean(values)


def _validate(cube: UnfairnessCube, dimension: str, k: int, order: str) -> None:
    if k <= 0:
        raise AlgorithmError(f"k must be positive, got {k}")
    if order not in ("most", "least"):
        raise AlgorithmError(f"order must be 'most' or 'least', got {order!r}")
    cube.domain(dimension)  # raises CubeError on a bad dimension name


def top_k(
    cube: UnfairnessCube,
    dimension: str,
    k: int,
    order: str = "most",
    family: IndexFamily | None = None,
) -> TopKResult:
    """Problem 1 via the threshold algorithm (Algorithm 1, generalized).

    Parameters
    ----------
    cube:
        The materialized unfairness values.
    dimension:
        ``"group"``, ``"query"``, or ``"location"`` — the dimension whose
        top/bottom ``k`` members are returned; the other two are averaged.
    k:
        How many members to return (clamped to the domain size).
    order:
        ``"most"`` for the most unfair members, ``"least"`` for the fairest.
    family:
        A pre-built index family for ``dimension`` with the matching sort
        direction (descending for ``"most"``); built on the fly if omitted.
    """
    _validate(cube, dimension, k, order)
    descending = order == "most"
    if family is None:
        family = build_family(cube, dimension, descending=descending)
    elif family.dimension != dimension:
        raise AlgorithmError(
            f"index family is for {family.dimension!r}, not {dimension!r}"
        )
    sweep = getattr(family, "run_sweep", None)
    if sweep is not None:
        # A columnar family replays this exact loop over numpy views —
        # same rounds, tie-breaks, early stop, and access accounting.
        return sweep(k, order)
    family.reset_stats()

    pairs = family.pair_keys
    complete = cube.missing_cells == 0
    # Heap of (score_for_heap, tiebreak, key, true_value); a min-heap whose
    # root is the current *worst* retained entry for the requested order.
    sign = 1.0 if descending else -1.0
    heap: list[tuple[float, str, Hashable, float]] = []
    scored: set[Hashable] = set()
    cursors = {pair: 0 for pair in pairs}
    exhausted: set[tuple] = set()
    rounds = 0
    early_stopped = False

    domain_size = len(cube.domain(dimension))
    k = min(k, domain_size)

    while len(exhausted) < len(pairs):
        rounds += 1
        frontier: list[float] = []
        for pair in pairs:
            posting = family.posting_list(pair)
            position = cursors[pair]
            if position >= len(posting):
                exhausted.add(pair)
                if len(posting):
                    frontier.append(posting.entries[-1][1])
                continue
            key, value = family.sorted_access(pair, position)
            cursors[pair] = position + 1
            frontier.append(value)
            if key in scored:
                continue
            scored.add(key)
            aggregate = _exact_aggregate(family, key, pairs)
            if aggregate is None:
                continue
            entry = (sign * aggregate, _tiebreak(key), key, aggregate)
            if len(heap) < k:
                heapq.heappush(heap, entry)
            elif entry > heap[0]:
                heapq.heapreplace(heap, entry)
        if complete and frontier and len(heap) == k:
            threshold = statistics.fmean(frontier)
            worst_retained = heap[0][0]  # signed score of the weakest heap entry
            if worst_retained >= sign * threshold:
                early_stopped = True
                break

    ordered = sorted(heap, reverse=True)
    entries = tuple((key, value) for _, __, key, value in ordered)
    return TopKResult(
        entries=entries,
        order=order,
        rounds=rounds,
        stats=family.stats,
        early_stopped=early_stopped,
    )


def naive_top_k(
    cube: UnfairnessCube, dimension: str, k: int, order: str = "most"
) -> TopKResult:
    """Exhaustive baseline: scan the whole cube, sort, slice.

    Matches :func:`top_k` exactly (including tie-breaks) and serves as both
    the correctness oracle and the efficiency baseline in the benchmarks.
    """
    _validate(cube, dimension, k, order)
    descending = order == "most"
    axis = {"group": 0, "query": 1, "location": 2}[dimension]
    members = cube.domain(dimension)
    scored: list[tuple[float, str, Hashable]] = []
    moved = np.moveaxis(cube.values, axis, 0)
    for member, plane in zip(members, moved):
        defined = plane[~np.isnan(plane)]
        if defined.size == 0:
            continue
        scored.append((float(defined.mean()), _tiebreak(member), member))
    sign = 1.0 if descending else -1.0
    scored.sort(key=lambda item: (sign * item[0], item[1]), reverse=True)
    k = min(k, len(scored))
    entries = tuple((member, value) for value, _, member in scored[:k])
    return TopKResult(entries=entries, order=order)
