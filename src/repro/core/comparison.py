"""Fairness comparison (Problem 2; Algorithms 2 and 3).

Given two members ``r1, r2`` of one dimension (e.g. the groups *Males* and
*Females*) and a breakdown dimension ``B`` (e.g. locations), return every
``b ∈ B`` whose ``r1``-vs-``r2`` unfairness ordering differs from the overall
ordering::

    d<r1,b> ≥ d<r2,b>  ∧  d<r1> ≤ d<r2>      (or the mirror image)

as in the paper's Problem 2 definition.  The comparison is non-strict — a
breakdown member where the two sides tie counts as "differing" from a
strictly ordered overall (the paper's Table 12 lists Chicago and the SF Bay
Area, where males and females tie, against an overall where females fare
worse) — except for the degenerate case of a tie on *both* levels, which is
excluded as uninformative.

Three instances fall out of the one implementation:

* **group-comparison**:    ``r1, r2`` are groups, ``B`` is queries or locations;
* **query-comparison**:    ``r1, r2`` are queries, ``B`` is groups or locations;
* **location-comparison**: ``r1, r2`` are locations, ``B`` is groups or queries.

:func:`compare` computes aggregates straight from the cube.
:func:`compare_with_indices` follows the paper's Algorithm 2 access pattern —
Algorithm 3's random accesses for the overall values, then sorted-access
sweeps over per-breakdown posting lists — and reports access counts, which
the benchmarks use.  Both return identical :class:`ComparisonReport`\\ s.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Hashable

from ..exceptions import AlgorithmError, CubeError
from .cube import GROUP, LOCATION, QUERY, UnfairnessCube
from .indices import AccessStats, IndexFamily, build_family

__all__ = ["BreakdownRow", "ComparisonReport", "compare", "compare_with_indices"]

_DIMENSIONS = (GROUP, QUERY, LOCATION)


@dataclass(frozen=True)
class BreakdownRow:
    """One breakdown member with both sides' aggregate unfairness."""

    member: Hashable
    value_r1: float
    value_r2: float
    reversed_vs_overall: bool


@dataclass(frozen=True)
class ComparisonReport:
    """Full outcome of a fairness comparison.

    ``rows`` covers every breakdown member where both sides are defined;
    ``reversed_members`` is the paper's answer — the members whose ordering
    differs from the overall one.
    """

    dimension: str
    r1: Hashable
    r2: Hashable
    breakdown_dimension: str
    overall_r1: float
    overall_r2: float
    rows: tuple[BreakdownRow, ...]
    stats: AccessStats = field(default_factory=AccessStats)

    @property
    def reversed_members(self) -> list[Hashable]:
        """Breakdown members whose comparison differs from the overall."""
        return [row.member for row in self.rows if row.reversed_vs_overall]

    def row_for(self, member: Hashable) -> BreakdownRow:
        """The breakdown row for ``member``."""
        for row in self.rows:
            if row.member == member:
                return row
        raise AlgorithmError(f"{member!r} is not a populated breakdown member")


def _is_reversal(b1: float, b2: float, overall1: float, overall2: float) -> bool:
    """The paper's non-strict reversal predicate, minus the double tie."""
    if b1 == b2 and overall1 == overall2:
        return False
    forward = b1 >= b2 and overall1 <= overall2
    backward = b1 <= b2 and overall1 >= overall2
    return forward or backward


def _check_arguments(
    cube: UnfairnessCube, dimension: str, r1: Hashable, r2: Hashable, breakdown: str
) -> None:
    if dimension not in _DIMENSIONS:
        raise AlgorithmError(f"unknown dimension {dimension!r}")
    if breakdown not in _DIMENSIONS:
        raise AlgorithmError(f"unknown breakdown dimension {breakdown!r}")
    if breakdown == dimension:
        raise AlgorithmError("breakdown dimension must differ from the compared one")
    domain = cube.domain(dimension)
    for member in (r1, r2):
        if member not in domain:
            raise AlgorithmError(f"{member!r} is not a member of dimension {dimension!r}")
    if r1 == r2:
        raise AlgorithmError("comparison members r1 and r2 must differ")


_SELECTION_KEYWORD = {GROUP: "groups", QUERY: "queries", LOCATION: "locations"}


def _selection(dimension: str, member: Hashable) -> dict:
    return {_SELECTION_KEYWORD[dimension]: [member]}


def compare(
    cube: UnfairnessCube,
    dimension: str,
    r1: Hashable,
    r2: Hashable,
    breakdown: str,
) -> ComparisonReport:
    """Problem 2 on a materialized cube.

    Overall values are ``d<r, ·, ·>`` averaged over both non-compared
    dimensions; per-breakdown values additionally fix the breakdown member.
    Breakdown members where either side is entirely undefined are omitted
    from the report.
    """
    _check_arguments(cube, dimension, r1, r2, breakdown)
    overall_r1 = cube.aggregate(**_selection(dimension, r1))
    overall_r2 = cube.aggregate(**_selection(dimension, r2))
    rows: list[BreakdownRow] = []
    for member in cube.domain(breakdown):
        selection_r1 = {**_selection(dimension, r1), **_selection(breakdown, member)}
        selection_r2 = {**_selection(dimension, r2), **_selection(breakdown, member)}
        try:
            value_r1 = cube.aggregate(**selection_r1)
            value_r2 = cube.aggregate(**selection_r2)
        except CubeError:
            # One side has no defined values for this breakdown member.
            continue
        rows.append(
            BreakdownRow(
                member=member,
                value_r1=value_r1,
                value_r2=value_r2,
                reversed_vs_overall=_is_reversal(
                    value_r1, value_r2, overall_r1, overall_r2
                ),
            )
        )
    return ComparisonReport(
        dimension=dimension,
        r1=r1,
        r2=r2,
        breakdown_dimension=breakdown,
        overall_r1=overall_r1,
        overall_r2=overall_r2,
        rows=tuple(rows),
    )


def _third_dimension(dimension: str, breakdown: str) -> str:
    (third,) = [d for d in _DIMENSIONS if d not in (dimension, breakdown)]
    return third


def compare_with_indices(
    cube: UnfairnessCube,
    dimension: str,
    r1: Hashable,
    r2: Hashable,
    breakdown: str,
    family: IndexFamily | None = None,
) -> ComparisonReport:
    """Problem 2 following Algorithm 2's index access pattern.

    The overall values come from Algorithm 3 — random accesses into the
    ``dimension``-based family for every (aggregated, breakdown) pair — and
    each per-breakdown value from a full sorted-access sweep of the posting
    list that fixes ``(r, b)``, exactly as the pseudocode scans the
    query-based index per location.  Access counts are returned in
    ``stats``.
    """
    _check_arguments(cube, dimension, r1, r2, breakdown)
    if family is None:
        family = build_family(cube, _third_dimension(dimension, breakdown))
    third = _third_dimension(dimension, breakdown)
    if family.dimension != third:
        raise AlgorithmError(
            f"Algorithm 2 needs the {third!r}-based family, got {family.dimension!r}"
        )
    family.reset_stats()

    compared_family = build_family(cube, dimension)

    def overall(member: Hashable) -> float:
        # Algorithm 3: random access for every (third, breakdown) pair.
        values = []
        for pair in compared_family.pair_keys:
            if compared_family.has_value(pair, member):
                values.append(compared_family.random_access(pair, member))
        if not values:
            raise AlgorithmError(f"{member!r} has no defined unfairness values")
        return statistics.fmean(values)

    overall_r1 = overall(r1)
    overall_r2 = overall(r2)

    def breakdown_value(member: Hashable, compared: Hashable) -> float | None:
        # Algorithm 2's inner loop: sweep the posting list fixing (compared,
        # breakdown member) over the third dimension.
        pair = _pair_for(family, compared, member, dimension, breakdown)
        posting = family.posting_list(pair)
        if len(posting) == 0:
            return None
        total = 0.0
        for position in range(len(posting)):
            _, value = family.sorted_access(pair, position)
            total += value
        return total / len(posting)

    rows: list[BreakdownRow] = []
    for member in cube.domain(breakdown):
        value_r1 = breakdown_value(member, r1)
        value_r2 = breakdown_value(member, r2)
        if value_r1 is None or value_r2 is None:
            continue
        rows.append(
            BreakdownRow(
                member=member,
                value_r1=value_r1,
                value_r2=value_r2,
                reversed_vs_overall=_is_reversal(
                    value_r1, value_r2, overall_r1, overall_r2
                ),
            )
        )
    merged = family.stats.merged_with(compared_family.stats)
    return ComparisonReport(
        dimension=dimension,
        r1=r1,
        r2=r2,
        breakdown_dimension=breakdown,
        overall_r1=overall_r1,
        overall_r2=overall_r2,
        rows=tuple(rows),
        stats=merged,
    )


def _pair_for(
    family: IndexFamily,
    compared: Hashable,
    breakdown_member: Hashable,
    dimension: str,
    breakdown: str,
) -> tuple:
    """Order ``(compared, breakdown_member)`` to match the family's pair keys.

    Family pair keys follow cube axis order (group, query, location) minus
    the family's own dimension, so the key component order depends on which
    dimensions are being compared and broken down.
    """
    order = [d for d in _DIMENSIONS if d != family.dimension]
    components = {dimension: compared, breakdown: breakdown_member}
    return tuple(components[d] for d in order)
