"""Fairness interventions: re-rank one result list, measure what changed.

The quantification layers answer *how unfair is this ranking*; this module
answers *what would repairing it do*.  Two canonical re-rankers from the
fair-ranking literature, both consuming the same ``(ranking, group members,
comparable members)`` triple the group-ranking measures consume:

* :func:`fair_rerank` — FA*IR's greedy top-k construction (Zehlike et al.):
  walk the positions best-to-worst, placing the next-best protected
  candidate whenever the alpha-corrected binomial mtable demands one and
  the overall next-best candidate otherwise.  The output provably satisfies
  the ranked-group-fairness test at **every** prefix while preserving
  within-group order.
* :func:`exposure_lp_rerank` — Singh & Joachims' exposure-optimal ranking:
  solve a linear program over doubly-stochastic matrices minimizing each
  group's deviation from relevance-proportional exposure, decompose the
  optimum into permutations (Birkhoff–von Neumann), and pick the
  best-scoring one.  The original permutation is always a candidate, so the
  result **weakly improves** exposure deviation by construction.

Interventions register in a small registry mirroring the measure registry
(name → applier + option schema), and :func:`apply_intervention` reports the
before/after value of *every* registered group-ranking measure through
:mod:`repro.core.measures.base` — which is what ``POST /v1/whatif`` serves.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..exceptions import MeasureError
from .measures.base import (
    GROUP_RANKING,
    MeasureOption,
    get_measure,
    measures_for_family,
)
from .measures.exposure import exposure_deviation
from .measures.fair import DEFAULT_ALPHA, adjusted_alpha, mtable
from .rankings import RankedList

__all__ = [
    "InterventionInfo",
    "InterventionResult",
    "apply_intervention",
    "available_interventions",
    "exposure_lp_rerank",
    "fair_rerank",
    "intervention_info",
    "measure_deltas",
    "register_intervention",
]


def _copy(ranking: RankedList) -> RankedList:
    return RankedList(ranking.items, ranking.scores)


# ----------------------------------------------------------------------
# FA*IR greedy re-ranking
# ----------------------------------------------------------------------


def fair_rerank(
    ranking: RankedList,
    protected: Sequence[str],
    p: float | None = None,
    alpha: float = DEFAULT_ALPHA,
) -> RankedList:
    """Greedy FA*IR re-ranking: fair at every prefix, within-group order kept.

    Two queues in original order (protected / everyone else); at each
    position the protected head is placed when the prefix would otherwise
    fall below the alpha-corrected mtable, else whichever head ranked
    better originally.  ``p`` defaults to the protected share of the
    ranking, under which the mtable is always satisfiable (the requirement
    at depth ``n`` sits below the actual protected count for any
    ``alpha < 0.5``), so the guarantee holds at every prefix.
    """
    n = len(ranking)
    if n == 0:
        raise MeasureError("cannot re-rank an empty ranking")
    members = frozenset(protected)
    prot = [item for item in ranking if item in members]
    rest = [item for item in ranking if item not in members]
    if not prot or not rest:
        return _copy(ranking)
    if p is None:
        p = len(prot) / n
    if not 0.0 < p < 1.0:
        return _copy(ranking)
    effective = adjusted_alpha(n, p, alpha)
    table = mtable(n, p, effective) if effective > 0.0 else (0,) * n
    out: list[str] = []
    count = 0
    pi = ri = 0
    for position in range(n):
        if pi < len(prot) and (
            count < table[position]
            or ri >= len(rest)
            or ranking.rank(prot[pi]) < ranking.rank(rest[ri])
        ):
            out.append(prot[pi])
            pi += 1
            count += 1
        else:
            out.append(rest[ri])
            ri += 1
    return RankedList(out, ranking.scores)


# ----------------------------------------------------------------------
# Singh & Joachims exposure LP + Birkhoff decomposition
# ----------------------------------------------------------------------

_LP_UTILITY_WEIGHT = 1e-4
"""Tie-break weight pulling the doubly-stochastic optimum toward placing
relevant items high; small enough never to buy utility with group slack."""

_BVN_TOL = 1e-7
"""Mass below this is solver noise, not decomposition support."""


def _perfect_matching(support: np.ndarray) -> list[int] | None:
    """Kuhn's augmenting paths on the support: ``position -> item`` or None."""
    n = support.shape[0]
    owner = [-1] * n  # position j -> item i

    def assign(item: int, seen: list[bool]) -> bool:
        for position in range(n):
            if support[item, position] and not seen[position]:
                seen[position] = True
                if owner[position] == -1 or assign(owner[position], seen):
                    owner[position] = item
                    return True
        return False

    for item in range(n):
        if not assign(item, [False] * n):
            return None
    return owner


def _birkhoff(matrix: np.ndarray) -> list[tuple[float, list[int]]]:
    """Birkhoff–von Neumann: doubly-stochastic → weighted permutations.

    Repeatedly match on the positive support, peel off the bottleneck
    weight.  Each step zeroes at least one entry, so at most ``n^2``
    rounds; returned weights sum to ~1.
    """
    remaining = matrix.copy()
    n = remaining.shape[0]
    permutations: list[tuple[float, list[int]]] = []
    for _ in range(n * n):
        owner = _perfect_matching(remaining > _BVN_TOL)
        if owner is None:
            break
        theta = min(remaining[owner[j], j] for j in range(n))
        if theta <= _BVN_TOL:
            break
        permutations.append((float(theta), owner))
        for j in range(n):
            remaining[owner[j], j] -= theta
    return permutations


def _exposure_lp_matrix(
    ranking: RankedList,
    group_members: Sequence[str],
    comparable_members: Mapping[str, Sequence[str]],
) -> np.ndarray | None:
    """The doubly-stochastic optimum ``P[item, position]``, or ``None``.

    Each group's constraint bounds ``|exposure share − relevance share|``
    by a slack variable, with both shares normalized over the whole ranking
    so the totals are permutation-invariant constants and the constraint
    stays linear in ``P``.  Relevance comes in two regimes:

    * scored rankings carry item-bound scores, so a group's relevance share
      is a constant target its exposure share must approach;
    * score-less rankings use the rank proxy ``1 − rank/N`` — a *position*
      quantity that moves with ``P`` exactly like exposure does, so the
      constraint bounds the mass of ``P`` against the per-position
      difference ``exposure share − relevance share`` instead.  Fixing the
      proxy at the input ranking's values would chase that ranking's own
      (possibly degraded) relevance profile rather than repairing it.

    ``None`` signals the degenerate cases where the LP has nothing to do
    (zero total relevance) or the solver failed; callers fall back to the
    original ranking.
    """
    n = len(ranking)
    try:
        from scipy.optimize import linprog
    except ImportError as error:  # pragma: no cover - scipy ships in the image
        raise MeasureError(
            "exposure_lp re-ranking requires scipy.optimize"
        ) from error

    items = list(ranking.items)
    index_of = {item: i for i, item in enumerate(items)}
    weights = np.array([1.0 / math.log(position + 2.0) for position in range(n)])
    exposure_share = weights / float(weights.sum())
    scored = ranking.scores is not None
    # Utility (for the tie-break term) is item-bound either way: true scores
    # when present, else the item's rank proxy in the *input* ranking.
    utility = np.array([ranking.relevance(item) for item in items])
    if scored:
        rel_total = float(utility.sum())
    else:
        position_relevance = np.array(
            [1.0 - (position + 1.0) / n for position in range(n)]
        )
        rel_total = float(position_relevance.sum())
    if rel_total <= 0.0:
        return None

    groups: list[np.ndarray] = []
    for members in (group_members, *comparable_members.values()):
        indices = [index_of[m] for m in members if m in index_of]
        if indices:
            mask = np.zeros(n)
            mask[indices] = 1.0
            groups.append(mask)

    cells = n * n
    slack_count = len(groups)
    # Objective: minimize group slacks, tie-break toward utility.
    cost = np.zeros(cells + slack_count)
    cost[:cells] = (-_LP_UTILITY_WEIGHT * np.outer(utility, weights)).ravel()
    cost[cells:] = 1.0

    a_eq = np.zeros((2 * n, cells + slack_count))
    b_eq = np.ones(2 * n)
    for i in range(n):
        a_eq[i, i * n : (i + 1) * n] = 1.0  # item i occupies one position
    for j in range(n):
        a_eq[n + j, j::n][: n] = 1.0  # position j holds one item

    a_ub = np.zeros((2 * slack_count, cells + slack_count))
    b_ub = np.zeros(2 * slack_count)
    for g, mask in enumerate(groups):
        if scored:
            # exposure share is linear in P; relevance share is a constant.
            share_row = (mask[:, None] * exposure_share[None, :]).ravel()
            target = float(utility[mask > 0].sum()) / rel_total
        else:
            # Both shares ride on P: bound their per-position difference.
            difference = exposure_share - position_relevance / rel_total
            share_row = (mask[:, None] * difference[None, :]).ravel()
            target = 0.0
        a_ub[2 * g, :cells] = share_row
        a_ub[2 * g, cells + g] = -1.0
        b_ub[2 * g] = target
        a_ub[2 * g + 1, :cells] = -share_row
        a_ub[2 * g + 1, cells + g] = -1.0
        b_ub[2 * g + 1] = -target

    bounds = [(0.0, 1.0)] * cells + [(0.0, None)] * slack_count
    solution = linprog(
        cost, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds,
        method="highs",
    )
    if not solution.success:
        return None
    return solution.x[:cells].reshape(n, n)


def exposure_lp_rerank(
    ranking: RankedList,
    group_members: Sequence[str],
    comparable_members: Mapping[str, Sequence[str]],
    seed: int = 0,
) -> RankedList:
    """Exposure-optimal re-ranking via the Singh & Joachims LP.

    Minimizes, over doubly-stochastic position assignments ``P``, the sum
    of every group's slack from relevance-proportional exposure (the
    assessed group and each comparable each contribute one slack variable),
    with a tiny utility term keeping relevant items high.  The optimum is
    decomposed into permutations (Birkhoff–von Neumann) and the candidate
    with the lowest exposure deviation for the assessed group wins; the
    original permutation always competes, so the deviation can only improve
    or stay.  ``seed`` breaks exact score ties deterministically.
    """
    n = len(ranking)
    if n == 0:
        raise MeasureError("cannot re-rank an empty ranking")
    if not group_members:
        raise MeasureError("the assessed group has no members in this ranking")
    matrix = _exposure_lp_matrix(ranking, group_members, comparable_members)
    if matrix is None:
        return _copy(ranking)
    items = list(ranking.items)

    def deviation(candidate: RankedList) -> float:
        try:
            return exposure_deviation(candidate, group_members, comparable_members)
        except MeasureError:
            return math.inf

    candidates: list[tuple[float, float, int, RankedList]] = []
    for order, (theta, owner) in enumerate(_birkhoff(matrix)):
        candidate = RankedList(
            [items[owner[j]] for j in range(n)], ranking.scores
        )
        candidates.append((deviation(candidate), -theta, order, candidate))
    original = _copy(ranking)
    candidates.append((deviation(original), 0.0, len(candidates), original))

    best_score = min(score for score, _, _, _ in candidates)
    tied = [entry for entry in candidates if entry[0] == best_score]
    tied.sort(key=lambda entry: (entry[1], entry[2]))
    if len(tied) > 1:
        return random.Random(seed).choice(tied)[3]
    return tied[0][3]


# ----------------------------------------------------------------------
# The intervention registry and the what-if report
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class InterventionInfo:
    """One registered intervention: applier plus schema metadata."""

    name: str
    apply: Callable[..., RankedList] = field(compare=False)
    description: str = ""
    options: tuple[MeasureOption, ...] = ()

    def option_names(self) -> frozenset[str]:
        return frozenset(option.name for option in self.options)

    def describe(self) -> dict:
        """The ``GET /v1/schema`` entry for this intervention."""
        return {
            "name": self.name,
            "description": self.description,
            "options": [option.describe() for option in self.options],
        }


_INTERVENTIONS: dict[str, InterventionInfo] = {}


def register_intervention(
    name: str,
    apply: Callable[..., RankedList],
    description: str = "",
    options: Sequence[MeasureOption] = (),
) -> None:
    """Register a re-ranker under ``name`` (case-insensitive).

    ``apply(ranking, group_members, comparable_members, **options)`` must
    return a re-ranked :class:`RankedList` over the same items.
    """
    key = name.lower()
    if key in _INTERVENTIONS:
        raise MeasureError(f"intervention {name!r} is already registered")
    _INTERVENTIONS[key] = InterventionInfo(
        name=key, apply=apply, description=description, options=tuple(options)
    )


def intervention_info(name: str) -> InterventionInfo:
    """The record for ``name``; :class:`MeasureError` on a miss."""
    try:
        return _INTERVENTIONS[name.lower()]
    except KeyError:
        raise MeasureError(
            f"unknown intervention {name!r}; available: {sorted(_INTERVENTIONS)}"
        ) from None


def available_interventions() -> list[str]:
    """Names of all registered interventions."""
    return sorted(_INTERVENTIONS)


@dataclass(frozen=True)
class InterventionResult:
    """A re-ranked list plus the fairness delta across every measure."""

    intervention: str
    original: RankedList
    reranked: RankedList
    before: Mapping[str, float]
    after: Mapping[str, float]

    def delta(self, measure: str) -> float | None:
        """``after − before`` for one measure (negative = less unfair)."""
        if measure not in self.before or measure not in self.after:
            return None
        return self.after[measure] - self.before[measure]

    @property
    def moved(self) -> int:
        """How many items changed position."""
        return sum(
            1
            for before_item, after_item in zip(
                self.original.items, self.reranked.items
            )
            if before_item != after_item
        )


def measure_deltas(
    original: RankedList,
    reranked: RankedList,
    group_members: Sequence[str],
    comparable_members: Mapping[str, Sequence[str]],
) -> tuple[dict[str, float], dict[str, float]]:
    """Before/after values of every registered group-ranking measure.

    Measures undefined for this cell (a :class:`MeasureError`) are skipped
    rather than failing the report — a what-if on a cell one measure cannot
    score still answers for all the others.
    """
    before: dict[str, float] = {}
    after: dict[str, float] = {}
    for name in measures_for_family(GROUP_RANKING):
        measure = get_measure(name)
        try:
            value_before = measure.group_value(
                original, group_members, comparable_members
            )
            value_after = measure.group_value(
                reranked, group_members, comparable_members
            )
        except MeasureError:
            continue
        before[name] = value_before
        after[name] = value_after
    return before, after


def apply_intervention(
    name: str,
    ranking: RankedList,
    group_members: Sequence[str],
    comparable_members: Mapping[str, Sequence[str]],
    **options,
) -> InterventionResult:
    """Run one registered intervention and report the full measure delta.

    Options outside the intervention's declared schema (or set to ``None``)
    are dropped, so a caller can offer one option bag to any intervention.
    """
    info = intervention_info(name)
    names = info.option_names()
    kwargs = {
        key: value
        for key, value in options.items()
        if key in names and value is not None
    }
    reranked = info.apply(ranking, group_members, comparable_members, **kwargs)
    before, after = measure_deltas(
        ranking, reranked, group_members, comparable_members
    )
    return InterventionResult(
        intervention=info.name,
        original=ranking,
        reranked=reranked,
        before=before,
        after=after,
    )


def _fair_applier(
    ranking: RankedList,
    group_members: Sequence[str],
    comparable_members: Mapping[str, Sequence[str]],
    p: float | None = None,
    alpha: float = DEFAULT_ALPHA,
) -> RankedList:
    return fair_rerank(ranking, group_members, p=p, alpha=alpha)


register_intervention(
    "fair",
    _fair_applier,
    description=(
        "greedy FA*IR top-k re-ranking: satisfies the ranked-group-fairness "
        "test at every prefix while preserving within-group order"
    ),
    options=(
        MeasureOption(
            "alpha", "number", DEFAULT_ALPHA,
            "significance level of the binomial test, in (0, 0.5)",
        ),
        MeasureOption(
            "p", "number", None,
            "null-hypothesis protected probability; defaults to the group's "
            "share of the ranking",
        ),
    ),
)

register_intervention(
    "exposure_lp",
    exposure_lp_rerank,
    description=(
        "Singh & Joachims exposure-optimal re-ranking: doubly-stochastic LP "
        "toward relevance-proportional group exposure, Birkhoff-decomposed; "
        "weakly improves exposure deviation"
    ),
    options=(
        MeasureOption(
            "seed", "integer", 0,
            "deterministic tie-break among equally good permutations",
        ),
    ),
)
