"""Fixed-bin histograms over the unit interval.

The marketplace EMD measure (paper §3.3.1) compares *score distributions* of
worker groups.  Scores — whether the true marketplace scoring function
``f_q^l(w)`` or the rank proxy ``rel(w) = 1 − rank/N`` — live in ``[0, 1]``,
so a shared fixed-bin layout lets any two group histograms be compared
directly.  :class:`UnitHistogram` is the single histogram type used across
the library; it normalizes to a probability mass function on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..exceptions import MeasureError

__all__ = ["UnitHistogram", "DEFAULT_BINS"]

DEFAULT_BINS = 10
"""Default bin count for score histograms (see DESIGN.md ablation #2)."""


@dataclass(frozen=True)
class UnitHistogram:
    """A histogram of values in ``[0, 1]`` with ``bins`` equal-width bins.

    Instances are immutable; the ``counts`` array is copied on construction
    and never mutated.  Values exactly equal to 1.0 fall into the last bin.
    """

    counts: np.ndarray
    bins: int

    def __post_init__(self) -> None:
        counts = np.asarray(self.counts, dtype=float)
        if counts.ndim != 1:
            raise MeasureError(f"histogram counts must be 1-D, got shape {counts.shape}")
        if counts.shape[0] != self.bins:
            raise MeasureError(
                f"histogram declares {self.bins} bins but holds {counts.shape[0]} counts"
            )
        if np.any(counts < 0):
            raise MeasureError("histogram counts must be non-negative")
        counts.setflags(write=False)
        object.__setattr__(self, "counts", counts)

    @classmethod
    def from_values(cls, values: Iterable[float], bins: int = DEFAULT_BINS) -> "UnitHistogram":
        """Bin ``values`` (each in ``[0, 1]``) into ``bins`` equal-width bins."""
        data = np.asarray(list(values), dtype=float)
        if data.size and (np.any(data < 0.0) or np.any(data > 1.0)):
            bad = data[(data < 0.0) | (data > 1.0)][0]
            raise MeasureError(f"histogram values must lie in [0, 1]; got {bad!r}")
        if bins <= 0:
            raise MeasureError(f"bin count must be positive, got {bins}")
        counts, _ = np.histogram(data, bins=bins, range=(0.0, 1.0))
        return cls(counts=counts.astype(float), bins=bins)

    @property
    def total(self) -> float:
        """Total mass (number of values binned, for count histograms)."""
        return float(self.counts.sum())

    @property
    def is_empty(self) -> bool:
        """True when the histogram holds no mass at all."""
        return self.total == 0.0

    def pmf(self) -> np.ndarray:
        """Return the normalized probability mass function.

        Raises :class:`MeasureError` on an empty histogram — a group with no
        observed workers has no distribution to compare.
        """
        if self.is_empty:
            raise MeasureError("cannot normalize an empty histogram")
        return self.counts / self.total

    def bin_centers(self) -> np.ndarray:
        """Return the midpoints of each bin on the unit interval."""
        edges = np.linspace(0.0, 1.0, self.bins + 1)
        return (edges[:-1] + edges[1:]) / 2.0

    def merge(self, other: "UnitHistogram") -> "UnitHistogram":
        """Return the histogram of the pooled samples of ``self`` and ``other``."""
        self._check_compatible(other)
        return UnitHistogram(counts=self.counts + other.counts, bins=self.bins)

    def _check_compatible(self, other: "UnitHistogram") -> None:
        if self.bins != other.bins:
            raise MeasureError(
                f"histograms have different bin layouts ({self.bins} vs {other.bins})"
            )

    def __len__(self) -> int:
        return self.bins


def pooled_histogram(
    groups_of_values: Sequence[Iterable[float]], bins: int = DEFAULT_BINS
) -> UnitHistogram:
    """Histogram the union of several value collections."""
    merged: UnitHistogram = UnitHistogram.from_values([], bins=bins)
    for values in groups_of_values:
        merged = merged.merge(UnitHistogram.from_values(values, bins=bins))
    return merged
