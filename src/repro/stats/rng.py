"""Deterministic random-number utilities.

All randomness in the library flows through :func:`derive`, which maps a root
seed plus an arbitrary key path to an independent :class:`numpy.random.
Generator`.  Two calls with the same seed and keys always return generators in
identical states, so every synthetic dataset, user study, and benchmark in the
repository is reproducible bit-for-bit, and sub-streams never interfere: the
generator for ``("workers", "Chicago")`` is statistically independent of the
one for ``("workers", "Boston")`` even though both derive from the same root.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive", "stable_hash", "spawn_keys"]

_HASH_BYTES = 16  # 128 bits of seed material per stream


def stable_hash(*keys: object) -> int:
    """Return a stable 128-bit integer hash of a key path.

    Unlike the builtin :func:`hash`, the result does not vary across
    interpreter runs (``PYTHONHASHSEED`` does not affect it).  Keys are
    rendered with ``repr`` and joined with an unambiguous separator, so
    ``("ab", "c")`` and ``("a", "bc")`` hash differently.
    """
    rendered = "\x1f".join(repr(key) for key in keys)
    digest = hashlib.blake2b(rendered.encode("utf-8"), digest_size=_HASH_BYTES)
    return int.from_bytes(digest.digest(), "big")


def derive(seed: int, *keys: object) -> np.random.Generator:
    """Derive an independent generator from ``seed`` and a key path.

    Parameters
    ----------
    seed:
        The root seed of the experiment or dataset.
    keys:
        Any hashable-by-repr objects naming the sub-stream, e.g.
        ``derive(7, "marketplace", "workers", city_name)``.
    """
    material = stable_hash(seed, *keys)
    return np.random.default_rng(np.random.SeedSequence(material))


def spawn_keys(seed: int, prefix: tuple[object, ...], count: int) -> list[np.random.Generator]:
    """Return ``count`` independent generators under a common key prefix."""
    return [derive(seed, *prefix, index) for index in range(count)]
