"""Statistical utilities: deterministic RNG streams and unit-interval histograms."""

from .histograms import DEFAULT_BINS, UnitHistogram, pooled_histogram
from .rng import derive, spawn_keys, stable_hash

__all__ = [
    "DEFAULT_BINS",
    "UnitHistogram",
    "pooled_histogram",
    "derive",
    "spawn_keys",
    "stable_hash",
]
