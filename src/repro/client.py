"""A small Python client for the F-Box query service.

:class:`FBoxClient` wraps the HTTP JSON API with the retry discipline the
resilience layer expects from well-behaved callers:

* **capped exponential backoff with jitter** — attempt ``n`` waits
  ``min(base_delay * 2**n, max_delay)`` plus a jittered fraction, so a
  thundering herd of clients spreads out instead of re-stampeding;
* **Retry-After is honored** — when a 429 (shed) or 503 (breaker open /
  deadline) carries ``Retry-After``, the client never retries earlier than
  the server asked, whatever the backoff schedule says;
* **only retryable failures retry** — 429/503 and connection errors (the
  service may still be booting); 4xx validation errors surface immediately;
* **one keep-alive connection** — requests reuse a single HTTP/1.1
  connection instead of paying a TCP handshake per call.  A send that dies
  on a stale reused connection (the server idled it out between requests)
  is replayed once on a fresh connection without consuming a retry
  attempt; real connection failures still go through the backoff policy.
  Requests marked *idempotent* (ingest always is — its ``batch_id`` turns
  a re-application into a ledger replay) get the same one-shot replay
  after a reset on a fresh connection too.

The jitter RNG is seedable and the sleeper injectable, so tests and
benchmarks get deterministic retry schedules::

    client = FBoxClient(base_url, retry=RetryPolicy(seed=7))
    answer = client.quantify("taskrabbit", "group", k=5)
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.parse
import uuid
from dataclasses import dataclass
from random import Random

from .exceptions import ReproError

__all__ = ["RetryPolicy", "ClientError", "FBoxClient"]

_RETRYABLE_STATUSES = (429, 503)

# A reused keep-alive connection that the server has quietly closed fails
# with one of these the moment we touch it; that is the one failure worth
# replaying immediately on a fresh connection.  (RemoteDisconnected is a
# subclass of both BadStatusLine and ConnectionResetError.)
_STALE_CONNECTION_ERRORS = (
    http.client.BadStatusLine,
    ConnectionResetError,
    BrokenPipeError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff tunables for :class:`FBoxClient`.

    ``max_attempts`` counts the first try; ``jitter`` is the fraction of the
    computed delay added at random (0.1 = up to +10%); ``seed`` fixes the
    jitter sequence for reproducible tests.
    """

    max_attempts: int = 5
    base_delay: float = 0.1
    max_delay: float = 5.0
    jitter: float = 0.1
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be non-negative")


class ClientError(ReproError):
    """The request failed for good: retries exhausted or a non-retryable 4xx.

    ``status`` is the last HTTP status (0 for connection failures) and
    ``body`` the decoded JSON error body when one was readable.
    """

    def __init__(self, message: str, status: int = 0, body: dict | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.body = body


class FBoxClient:
    """Thin, retrying HTTP client for one F-Box service instance.

    Endpoint sugar (``quantify``, ``datasets``, ...) speaks the versioned
    ``/v1`` API exclusively — there is no legacy fallback.  The raw
    :meth:`request`/:meth:`post`/:meth:`get` methods use whatever path the
    caller passes; note that servers answer unversioned paths with a
    non-retryable ``410 gone`` by default (``--legacy-routes serve``
    restores the deprecated passthrough).
    """

    api_prefix = "/v1"

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retry: RetryPolicy | None = None,
        sleeper=time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        parsed = urllib.parse.urlsplit(self.base_url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ValueError(f"base_url must be http://host[:port], got {base_url!r}")
        self._host = parsed.hostname
        self._port = parsed.port if parsed.port is not None else 80
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self._sleeper = sleeper
        self._rng = Random(self.retry.seed)
        self._connection: http.client.HTTPConnection | None = None
        self._connection_lock = threading.Lock()
        self.attempts = 0
        self.retries = 0
        self.connections_opened = 0
        self.sleeps: list[float] = []

    def close(self) -> None:
        """Drop the keep-alive connection (the next request reopens one)."""
        with self._connection_lock:
            self._drop_connection()

    def __enter__(self) -> FBoxClient:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Transport with backoff
    # ------------------------------------------------------------------

    def _backoff_delay(self, attempt: int, retry_after: float | None) -> float:
        """Delay before retry ``attempt`` (0-based), honoring Retry-After."""
        delay = min(self.retry.base_delay * (2**attempt), self.retry.max_delay)
        if self.retry.jitter:
            delay += delay * self.retry.jitter * self._rng.random()
        if retry_after is not None:
            # The server's floor wins: never retry earlier than asked.
            delay = max(delay, retry_after)
        return delay

    def _ensure_connection(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self.timeout
            )
            self.connections_opened += 1
        return self._connection

    def _drop_connection(self) -> None:
        if self._connection is not None:
            try:
                self._connection.close()
            except OSError:  # pragma: no cover - close never matters
                pass
            self._connection = None

    def _send(
        self,
        method: str,
        path: str,
        data: bytes | None,
        headers: dict,
        idempotent: bool = False,
    ) -> tuple[int, str | None, bytes]:
        """One HTTP exchange on the shared keep-alive connection.

        A send that dies because the *reused* connection went stale is
        replayed once on a fresh connection, invisibly to the retry policy;
        failures on a fresh connection propagate to it.  ``idempotent``
        extends the same one-shot replay to resets on a *fresh* connection
        (e.g. the server's worker restarted mid-body): a caller that marked
        the request idempotent — ingest always does, its ``batch_id`` makes
        re-application a ledger replay — would rather resend the identical
        bytes than surface a connection error it cannot act on.
        """
        reused = self._connection is not None
        try:
            return self._exchange(method, path, data, headers)
        except _STALE_CONNECTION_ERRORS:
            if not (reused or idempotent):
                raise
        return self._exchange(method, path, data, headers)

    def _exchange(
        self, method: str, path: str, data: bytes | None, headers: dict
    ) -> tuple[int, str | None, bytes]:
        connection = self._ensure_connection()
        try:
            connection.request(method, path, body=data, headers=headers)
            response = connection.getresponse()
            status = response.status
            retry_after = response.getheader("Retry-After")
            body = response.read()
        except BaseException:
            # Whatever happened, the connection's framing state is suspect.
            self._drop_connection()
            raise
        if response.will_close:
            self._drop_connection()
        return status, retry_after, body

    def request(
        self,
        method: str,
        path: str,
        payload=None,
        retries: bool = True,
        headers: dict | None = None,
        idempotent: bool = False,
    ):
        """One API call with retries; returns ``(status, decoded_body)``.

        429/503 responses and connection errors are retried with backoff
        (unless ``retries=False``); other 4xx/5xx raise :class:`ClientError`
        immediately.  ``idempotent`` marks the request safe to resend after
        a mid-exchange connection reset (see :meth:`_send`); ``headers``
        adds extra request headers (e.g. ``X-Admin-Token``).
        """
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        send_headers = {"Content-Type": "application/json"} if data is not None else {}
        if headers:
            send_headers.update(headers)
        attempts = self.retry.max_attempts if retries else 1
        last_error: ClientError | None = None
        for attempt in range(attempts):
            self.attempts += 1
            if attempt:
                self.retries += 1
            retry_after: float | None = None
            try:
                with self._connection_lock:
                    status, header, raw = self._send(
                        method, path, data, send_headers, idempotent=idempotent
                    )
                body = _decode(raw)
                if status < 400:
                    return status, body
                if status not in _RETRYABLE_STATUSES:
                    raise ClientError(
                        f"{method} {path} answered {status}: "
                        f"{_error_message(body)}",
                        status=status,
                        body=body if isinstance(body, dict) else None,
                    ) from None
                retry_after = _retry_after_seconds(header, body)
                last_error = ClientError(
                    f"{method} {path} still answering {status} after "
                    f"{attempt + 1} attempts: {_error_message(body)}",
                    status=status,
                    body=body if isinstance(body, dict) else None,
                )
            except (OSError, http.client.HTTPException) as error:
                last_error = ClientError(
                    f"{method} {path} failed after {attempt + 1} attempts: {error}"
                )
            if attempt + 1 < attempts:
                delay = self._backoff_delay(attempt, retry_after)
                self.sleeps.append(delay)
                if delay > 0:
                    self._sleeper(delay)
        assert last_error is not None
        raise last_error

    def post(
        self,
        path: str,
        payload: dict,
        headers: dict | None = None,
        idempotent: bool = False,
    ):
        """POST returning the decoded body (status is always 200 here)."""
        _, body = self.request(
            "POST", path, payload, headers=headers, idempotent=idempotent
        )
        return body

    def get(self, path: str):
        """GET returning ``(status, decoded_body)``."""
        return self.request("GET", path)

    # ------------------------------------------------------------------
    # Endpoint sugar (versioned /v1 API)
    # ------------------------------------------------------------------

    def _api(self, path: str) -> str:
        return self.api_prefix + path

    def quantify(self, dataset: str, dimension: str, **params) -> dict:
        """``POST /v1/quantify`` — Problem 1 (top/bottom-k)."""
        return self.post(
            self._api("/quantify"),
            {"dataset": dataset, "dimension": dimension, **params},
        )

    def compare(
        self, dataset: str, dimension: str, r1: str, r2: str, breakdown: str, **params
    ) -> dict:
        """``POST /v1/compare`` — Problem 2 (reversal breakdown)."""
        return self.post(
            self._api("/compare"),
            {
                "dataset": dataset,
                "dimension": dimension,
                "r1": r1,
                "r2": r2,
                "breakdown": breakdown,
                **params,
            },
        )

    def explain(
        self, dataset: str, group: str, query: str, location: str, **params
    ) -> dict:
        """``POST /v1/explain`` — one cell's contribution breakdown."""
        return self.post(
            self._api("/explain"),
            {
                "dataset": dataset,
                "group": group,
                "query": query,
                "location": location,
                **params,
            },
        )

    def whatif(
        self,
        dataset: str,
        group: str,
        query: str,
        location: str,
        intervention: str,
        **params,
    ) -> dict:
        """``POST /v1/whatif`` — hypothetically re-rank one cell's ranking.

        ``intervention`` is a registered re-ranker (``"fair"``,
        ``"exposure_lp"``, …); extra ``params`` (``alpha``, ``p``, ``seed``,
        ``allow_stale``) pass through.
        """
        return self.post(
            self._api("/whatif"),
            {
                "dataset": dataset,
                "group": group,
                "query": query,
                "location": location,
                "intervention": intervention,
                **params,
            },
        )

    def batch(self, requests: list[dict]) -> dict:
        """``POST /v1/batch`` — many sub-requests, shared index sweeps."""
        return self.post(self._api("/batch"), {"requests": requests})

    def ingest(
        self, dataset: str, observations: list[dict], batch_id: str | None = None
    ) -> dict:
        """``POST /v1/observations`` — fold new rankings into a live dataset.

        A ``batch_id`` is generated up front when the caller does not supply
        one, so the *retries* inside :meth:`request` replay the same id: a
        POST cut off by a dropped connection that actually applied
        server-side is answered from the idempotency ledger
        (``"replayed": true``) instead of double-applying the batch.
        """
        if batch_id is None:
            batch_id = uuid.uuid4().hex
        return self.post(
            self._api("/observations"),
            {
                "dataset": dataset,
                "batch_id": batch_id,
                "observations": observations,
            },
            idempotent=True,
        )

    def resize(self, count: int, token: str | None = None) -> dict:
        """``POST /v1/admin/shards`` — live-resize the worker pool.

        ``token`` is sent as ``X-Admin-Token`` when the server was started
        with ``--admin-token``.  Safe to mark idempotent: resizing to a
        count the pool already has is a no-op, so a replayed request after
        a connection reset converges to the same state.
        """
        headers = {"X-Admin-Token": token} if token is not None else None
        return self.post(
            self._api("/admin/shards"),
            {"count": count},
            headers=headers,
            idempotent=True,
        )

    def register_scenario(
        self,
        name: str,
        scenario: str,
        overrides: dict | None = None,
        token: str | None = None,
    ) -> dict:
        """``POST /v1/datasets`` — register a dataset from a named scenario.

        ``overrides`` tweak scenario fields (``seed``, ``workers``,
        ``bias_scale``, ...); ``token`` is sent as ``X-Admin-Token`` when
        the server was started with ``--admin-token``.  Deliberately *not*
        idempotent-retried: a replay that lands after the first attempt
        succeeded answers 409 ``dataset_exists``, which is meaningful to
        the caller, not noise to be retried through.
        """
        headers = {"X-Admin-Token": token} if token is not None else None
        payload: dict = {"name": name, "scenario": scenario}
        if overrides:
            payload["overrides"] = dict(overrides)
        return self.post(self._api("/datasets"), payload, headers=headers)

    def scenarios(self) -> dict:
        """``GET /v1/scenarios`` — the scenario-preset registry."""
        return self.get(self._api("/scenarios"))[1]

    def trends(
        self, dataset: str, group: str, query: str, location: str, **params
    ) -> dict:
        """``GET /v1/trends`` — one cube cell's values across generations."""
        query_string = urllib.parse.urlencode(
            {
                "dataset": dataset,
                "group": group,
                "query": query,
                "location": location,
                **params,
            }
        )
        return self.get(self._api("/trends") + "?" + query_string)[1]

    def datasets(self) -> dict:
        return self.get(self._api("/datasets"))[1]

    def schema(self) -> dict:
        """``GET /v1/schema`` — the machine-readable API description."""
        return self.get(self._api("/schema"))[1]

    def healthz(self) -> dict:
        return self.get(self._api("/healthz"))[1]

    def readyz(self) -> tuple[int, dict]:
        """Readiness status and body (503 is a *normal* answer here).

        Unlike every other call this never retries a 503 — callers poll
        readiness themselves and want the current truth, not a wait.
        """
        try:
            return self.request("GET", self._api("/readyz"), retries=False)
        except ClientError as error:
            if error.status in _RETRYABLE_STATUSES and error.body is not None:
                return error.status, error.body
            raise

    def metrics_text(self) -> str:
        status, body = self.request("GET", self._api("/metrics"))
        return body if isinstance(body, str) else json.dumps(body)


def _decode(raw: bytes):
    text = raw.decode("utf-8", "replace")
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _error_message(body) -> str:
    if isinstance(body, dict):
        error = body.get("error")
        if isinstance(error, dict):
            return str(error.get("message", error))
    return str(body)[:200]


def _retry_after_seconds(header: str | None, body) -> float | None:
    if header is not None:
        try:
            return float(header)
        except ValueError:
            pass
    if isinstance(body, dict):
        nested = body.get("error")
        if isinstance(nested, dict) and isinstance(
            nested.get("retry_after"), (int, float)
        ):
            return float(nested["retry_after"])
    return None
