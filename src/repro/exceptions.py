"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  The concrete
subclasses mirror the layers of the system: the group/attribute model, the
distance measures, the unfairness cube and its indices, and the top-k /
comparison algorithms that run on top of them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """An attribute schema or group label is malformed or inconsistent.

    Raised for unknown attributes, unknown attribute values, duplicate
    predicates on the same attribute, or empty labels.
    """


class MeasureError(ReproError):
    """A distance measure received inputs it cannot compare.

    Raised for empty ranked lists, mismatched universes, histograms with
    different bin layouts, or non-normalizable mass.
    """


class CubeError(ReproError):
    """The unfairness cube is missing a requested cell or dimension value."""


class IndexError_(ReproError):
    """An inverted index was asked for an entry it does not contain.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`; exported as ``repro.IndexError_``.
    """


class AlgorithmError(ReproError):
    """A top-k or comparison algorithm was invoked with invalid arguments.

    Raised for ``k <= 0``, unknown dimensions, empty dimension domains, or a
    comparison whose operands are not members of the stated dimension.
    """


class DataError(ReproError):
    """Raw observation data is malformed or insufficient for a computation.

    Raised when a dataset lacks the workers, users, queries, or locations a
    caller asked the framework to analyze.
    """
