"""Command-line interface: ``repro <command>`` (or ``python -m repro``).

Commands
--------
``generate``   build and save a dataset (TaskRabbit crawl or Google study)
``quantify``   Problem 1: top/bottom-k groups, queries, or locations
``compare``    Problem 2: breakdown members whose ordering reverses
``reproduce``  regenerate one of the paper's tables/figures by name
``toy``        print the paper's worked examples (Figures 1–5)
``batch``      answer a JSON file of sub-requests with shared index sweeps
``serve``      run the long-lived F-Box query service (HTTP JSON API)
``simulate``   stream live observation batches from a simulator (JSONL)
``ingest``     POST observation batches to a running service's /v1/observations
``whatif``     hypothetically re-rank one cell with a fairness intervention
``loadgen``    replay a seeded traffic mix against a running service

``quantify`` and ``compare`` accept ``--json`` to emit the same documents
the service returns (shared encoder: :mod:`repro.service.encoding`).

``generate`` and ``simulate`` accept ``--scenario NAME [--override k=v]``
as an alternative to the positional site: the named preset from
:mod:`repro.scenarios` fixes every generation knob (population, catalogs,
demographic mix, bias intensities, seed) so the artifact is reproducible
from its name alone.
"""

from __future__ import annotations

import argparse
import json
import sys

from . import __version__
from .core.attributes import default_schema
from .core.fbox import FBox
from .core.measures.base import available_measures, default_measure_for_site
from .data.io import (
    load_marketplace_dataset,
    load_search_dataset,
    save_marketplace_dataset,
    save_search_dataset,
)
from .exceptions import ReproError
from .experiments import report as report_mod
from .experiments.datasets import (
    DEFAULT_SEED,
    build_google_dataset,
    build_taskrabbit_dataset,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fairness in online jobs: quantification and comparison (EDBT 2020 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="build and save a dataset")
    generate.add_argument(
        "site", nargs="?", choices=["taskrabbit", "google"],
        help="site to simulate (omit when --scenario names a preset)",
    )
    generate.add_argument("output", help="output JSONL path")
    generate.add_argument("--seed", type=int, default=DEFAULT_SEED)
    generate.add_argument(
        "--level", choices=["category", "job"], default="category",
        help="TaskRabbit crawl granularity",
    )
    generate.add_argument(
        "--design", choices=["paper", "full"], default="full",
        help="Google study design",
    )
    _add_scenario_arguments(generate)

    quantify = subparsers.add_parser("quantify", help="Problem 1: top/bottom-k")
    _add_dataset_arguments(quantify)
    quantify.add_argument("dimension", choices=["group", "query", "location"])
    quantify.add_argument("-k", type=int, default=5)
    quantify.add_argument("--order", choices=["most", "least"], default="most")
    quantify.add_argument("--algorithm", choices=["fagin", "naive"], default="fagin")
    quantify.add_argument(
        "--json", action="store_true", help="emit the service's JSON document"
    )

    compare = subparsers.add_parser("compare", help="Problem 2: reversal breakdown")
    _add_dataset_arguments(compare)
    compare.add_argument("dimension", choices=["group", "query", "location"])
    compare.add_argument("r1", help="first member (group label as g=v,...; else literal)")
    compare.add_argument("r2", help="second member")
    compare.add_argument("breakdown", choices=["group", "query", "location"])
    compare.add_argument(
        "--json", action="store_true", help="emit the service's JSON document"
    )

    explain = subparsers.add_parser(
        "explain", help="decompose one unfairness value into contributions"
    )
    _add_dataset_arguments(explain)
    explain.add_argument("group", help="group label as attr=value[,attr=value]")
    explain.add_argument("query")
    explain.add_argument("location")

    whatif = subparsers.add_parser(
        "whatif",
        help="hypothetically re-rank one cell with a fairness intervention",
    )
    _add_dataset_arguments(whatif)
    whatif.add_argument("group", help="group label as attr=value[,attr=value]")
    whatif.add_argument("query")
    whatif.add_argument("location")
    whatif.add_argument(
        "--intervention", default="fair",
        help="registered re-ranker (see GET /v1/schema), e.g. fair|exposure_lp",
    )
    whatif.add_argument(
        "--alpha", type=float, default=None, help="FA*IR significance level"
    )
    whatif.add_argument(
        "--p", type=float, default=None,
        help="FA*IR null-hypothesis protected probability",
    )
    whatif.add_argument(
        "--url", default=None,
        help="POST to a running service instead of computing locally",
    )
    whatif.add_argument(
        "--json", action="store_true", help="emit the service's JSON document"
    )

    toy = subparsers.add_parser("toy", help="print the paper's worked examples")
    del toy  # no extra arguments

    reproduce = subparsers.add_parser("reproduce", help="regenerate a paper table")
    reproduce.add_argument(
        "target",
        help="table8|table9|table10|table11|google-groups|google-locations|google-queries",
    )
    reproduce.add_argument("--measure", default=None)
    reproduce.add_argument("--seed", type=int, default=DEFAULT_SEED)

    batch = subparsers.add_parser(
        "batch",
        help="answer a file of quantify/compare/explain requests in one run",
    )
    batch.add_argument(
        "requests",
        help='JSON file holding an array of sub-requests (or {"requests": [...]}); '
        'each item needs an "op" of quantify|compare|explain',
    )
    batch.add_argument(
        "--url", default=None,
        help="POST to a running service's /batch instead of computing locally",
    )
    batch.add_argument("--seed", type=int, default=DEFAULT_SEED)
    batch.add_argument(
        "--scope", choices=["small", "full"], default="small",
        help="dataset scope for local (no --url) execution",
    )
    batch.add_argument(
        "--taskrabbit-data", default=None,
        help="saved JSONL marketplace dataset for local execution",
    )
    batch.add_argument(
        "--google-data", default=None,
        help="saved JSONL search dataset for local execution",
    )

    serve = subparsers.add_parser(
        "serve", help="run the F-Box query service (HTTP JSON API)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--seed", type=int, default=DEFAULT_SEED)
    serve.add_argument(
        "--scope", choices=["small", "full"], default="small",
        help="small = six-city crawl / paper study design (fast boot); "
        "full = paper-scale simulation",
    )
    serve.add_argument(
        "--taskrabbit-data", default=None,
        help="saved JSONL marketplace dataset to serve instead of simulating",
    )
    serve.add_argument(
        "--google-data", default=None,
        help="saved JSONL search dataset to serve instead of simulating",
    )
    serve.add_argument(
        "--cache-size", type=int, default=256,
        help="result-cache capacity (0 disables caching)",
    )
    serve.add_argument(
        "--cache-ttl", type=float, default=0.0,
        help="result-cache max age in seconds (0 = entries never expire)",
    )
    serve.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-request deadline in seconds (0 disables)",
    )
    serve.add_argument(
        "--max-concurrency", type=int, default=8,
        help="admission cap: POST queries executing at once (0 disables shedding)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=16,
        help="admission queue: requests allowed to wait for a slot; beyond "
        "this they are shed with 429 + Retry-After",
    )
    serve.add_argument(
        "--breaker-failures", type=int, default=3,
        help="consecutive load/build failures before a dataset's circuit opens",
    )
    serve.add_argument(
        "--breaker-reset", type=float, default=30.0,
        help="seconds an open circuit waits before its half-open probe",
    )
    serve.add_argument(
        "--preload", action="store_true",
        help="materialize datasets in the background; /readyz answers 503 "
        "until every one is built",
    )
    serve.add_argument(
        "--backend", choices=["threads", "asyncio"], default="threads",
        help="transport: threads = one OS thread per connection; asyncio = "
        "one event loop, CPU work on a bounded executor",
    )
    serve.add_argument(
        "--executor-workers", type=int, default=0,
        help="asyncio backend: threads in the CPU executor "
        "(0 = match --max-concurrency)",
    )
    serve.add_argument(
        "--drain-grace", type=float, default=10.0,
        help="seconds SIGTERM waits for admitted/queued requests to finish "
        "before the listener stops",
    )
    serve.add_argument(
        "--shards", type=int, default=0,
        help="worker processes owning dataset shards (0 = execute in-process); "
        "each dataset is pinned to one shard by consistent hashing",
    )
    serve.add_argument(
        "--alert-threshold", type=float, default=0.0,
        help="fairness-alert threshold: ingested cube cells at or above this "
        "unfairness count into fbox_fairness_alerts_total (0 disables)",
    )
    serve.add_argument(
        "--admin-token", default=None,
        help="arm the admin API (POST /v1/admin/shards): requests must carry "
        "this token in X-Admin-Token or Authorization: Bearer; unset leaves "
        "the endpoint open (local development)",
    )
    serve.add_argument(
        "--core", choices=["dict", "columnar"], default="dict",
        help="F-Box storage engine: dict = reference per-cell maps; columnar "
        "= flat numpy blocks in shared-memory segments (workers re-attach "
        "after restarts; sharded fronts answer reads from the segments)",
    )
    serve.add_argument(
        "--legacy-routes", choices=["serve", "gone"], default="gone",
        help="unversioned (pre-/v1) paths: gone = answer 410 with a v1_path "
        "pointer (default); serve = deprecated passthrough with "
        "Deprecation/Sunset headers for stragglers",
    )

    simulate = subparsers.add_parser(
        "simulate",
        help="stream live observation batches from a simulator (JSONL)",
    )
    simulate.add_argument(
        "site", nargs="?", choices=["taskrabbit", "google"],
        help="site to simulate (omit when --scenario names a preset)",
    )
    simulate.add_argument("--seed", type=int, default=DEFAULT_SEED)
    simulate.add_argument(
        "--scope", choices=["small", "full"], default="small",
        help="must match the serving registry's scope so rankings reference "
        "known workers/users",
    )
    simulate.add_argument(
        "--stream", action="store_true",
        help="emit JSONL ingest batches on stdout (one batch per line, "
        "ready for 'repro ingest')",
    )
    simulate.add_argument("--batches", type=int, default=1)
    simulate.add_argument("--batch-size", type=int, default=8)
    simulate.add_argument(
        "--swaps", type=int, default=2,
        help="seeded adjacent transpositions per ranking (the drift between crawls)",
    )
    simulate.add_argument(
        "--dataset-name", default=None,
        help="dataset name stamped on each batch (defaults to the site name)",
    )
    _add_scenario_arguments(simulate)

    loadgen = subparsers.add_parser(
        "loadgen",
        help="replay a seeded traffic mix against a running service",
    )
    loadgen.add_argument("url", help="service base URL, e.g. http://127.0.0.1:8080")
    loadgen.add_argument(
        "--dataset", default="taskrabbit",
        help="registered dataset name the operations target",
    )
    loadgen.add_argument(
        "--scenario", default="paper_taskrabbit",
        help="scenario preset the payload corpus is drawn from (must match "
        "what the target dataset serves)",
    )
    loadgen.add_argument(
        "--override", action="append", default=[], metavar="KEY=VALUE",
        help="scenario field override (repeatable)",
    )
    loadgen.add_argument(
        "--mode", choices=["closed", "open"], default="closed",
        help="closed = N workers in lockstep request loops; open = seeded "
        "Poisson arrivals at --rate (latency measured from the scheduled "
        "arrival, so queueing delay is not hidden)",
    )
    loadgen.add_argument("--workers", type=int, default=4)
    loadgen.add_argument("--requests", type=int, default=200)
    loadgen.add_argument(
        "--rate", type=float, default=50.0,
        help="open-loop target arrival rate (requests/second)",
    )
    loadgen.add_argument(
        "--warmup", type=int, default=0,
        help="leading requests excluded from the latency report",
    )
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument(
        "--mix", default=None,
        help='operation mix as "op=weight,..." over '
        "quantify|compare|batch|whatif|observations "
        "(default 45/20/15/10/10)",
    )
    loadgen.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-request client timeout in seconds",
    )
    loadgen.add_argument(
        "--quick", action="store_true",
        help="CI smoke settings: 40 requests, 2 workers, 8 warmup",
    )
    loadgen.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )

    ingest = subparsers.add_parser(
        "ingest",
        help="POST observation batches (JSONL) to a running service",
    )
    ingest.add_argument("url", help="service base URL, e.g. http://127.0.0.1:8080")
    ingest.add_argument(
        "batches",
        help="JSONL file of ingest batches ('-' reads stdin); each line is "
        '{"dataset": ..., "batch_id": ..., "observations": [...]} or a bare '
        "observation array (then --dataset names the target)",
    )
    ingest.add_argument(
        "--dataset", default=None,
        help="dataset name for bare-array lines",
    )
    return parser


def _add_scenario_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--scenario", default=None,
        help="named scenario preset (see repro.scenarios / GET /v1/scenarios)",
    )
    sub.add_argument(
        "--override", action="append", default=[], metavar="KEY=VALUE",
        help="scenario field override, e.g. seed=11 or "
        '"cities=Boston, MA;Chicago, IL" (repeatable)',
    )


def _parse_override_pairs(pairs: list[str]) -> dict:
    """``KEY=VALUE`` strings → an override mapping for ``with_overrides``."""
    overrides = {}
    for pair in pairs:
        key, separator, value = pair.partition("=")
        if not separator or not key:
            raise ReproError(f"override {pair!r} is not KEY=VALUE")
        overrides[key.strip()] = value
    return overrides


def _scenario_config(args):
    """Resolve ``--scenario``/``--override`` into a ScenarioConfig."""
    from .scenarios import get_scenario

    config = get_scenario(args.scenario)
    overrides = _parse_override_pairs(args.override)
    return config.with_overrides(overrides) if overrides else config


def _add_dataset_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("site", choices=["taskrabbit", "google"])
    sub.add_argument(
        "--dataset", default=None, help="load a saved JSONL dataset instead of simulating"
    )
    sub.add_argument("--seed", type=int, default=DEFAULT_SEED)
    sub.add_argument(
        "--measure", default=None,
        help="|".join(available_measures())
        + " (defaults to the site's registered default)",
    )


def _parse_member(dimension: str, text: str):
    from .service.encoding import parse_member

    return parse_member(dimension, text)


def _load_fbox(args) -> FBox:
    schema = default_schema()
    measure = args.measure or default_measure_for_site(args.site)
    if args.site == "taskrabbit":
        if args.dataset:
            dataset = load_marketplace_dataset(args.dataset)
        else:
            dataset = build_taskrabbit_dataset(seed=args.seed)
        return FBox.for_marketplace(dataset, schema, measure=measure)
    if args.dataset:
        dataset = load_search_dataset(args.dataset)
    else:
        dataset = build_google_dataset(seed=args.seed)
    return FBox.for_search(dataset, schema, measure=measure)


def _command_generate(args) -> int:
    if args.scenario:
        from .scenarios import build_scenario

        config = _scenario_config(args)
        dataset = build_scenario(config)
        if config.site == "taskrabbit":
            save_marketplace_dataset(dataset, args.output)
            detail = f"{len(dataset.workers)} workers"
        else:
            save_search_dataset(dataset, args.output)
            detail = f"{len(dataset.users)} users"
        print(
            f"wrote {len(dataset)} observations ({detail}) to {args.output} "
            f"[scenario {config.name}, seed {config.seed}]"
        )
        return 0
    if not args.site:
        raise ReproError("generate needs a site argument or --scenario NAME")
    if args.site == "taskrabbit":
        dataset = build_taskrabbit_dataset(seed=args.seed, level=args.level)
        save_marketplace_dataset(dataset, args.output)
        print(f"wrote {len(dataset)} observations ({len(dataset.workers)} workers) to {args.output}")
    else:
        dataset = build_google_dataset(seed=args.seed, design=args.design)
        save_search_dataset(dataset, args.output)
        print(f"wrote {len(dataset)} observations ({len(dataset.users)} users) to {args.output}")
    return 0


def _command_quantify(args) -> int:
    fbox = _load_fbox(args)
    result = fbox.quantify(args.dimension, k=args.k, order=args.order, algorithm=args.algorithm)
    if args.json:
        from .service.encoding import encode_topk

        document = encode_topk(result, args.dimension)
        document.update(dataset=args.site, k=args.k, algorithm=args.algorithm)
        print(json.dumps(document, sort_keys=True, indent=2))
        return 0
    title = f"{args.order}-unfair {args.dimension}s (k={args.k}, {args.algorithm})"
    rows = [(str(key), value) for key, value in result.entries]
    print(report_mod.render_table(title, (args.dimension, "unfairness"), rows))
    if result.stats.sorted_accesses or result.stats.random_accesses:
        print(
            f"\nsorted accesses: {result.stats.sorted_accesses}  "
            f"random accesses: {result.stats.random_accesses}  "
            f"rounds: {result.rounds}  early stop: {result.early_stopped}"
        )
    return 0


def _command_compare(args) -> int:
    fbox = _load_fbox(args)
    r1 = _parse_member(args.dimension, args.r1)
    r2 = _parse_member(args.dimension, args.r2)
    result = fbox.compare(args.dimension, r1, r2, args.breakdown)
    if args.json:
        from .service.encoding import encode_comparison

        document = encode_comparison(result)
        document.update(dataset=args.site)
        print(json.dumps(document, sort_keys=True, indent=2))
        return 0
    print(
        report_mod.render_comparison(
            f"{args.r1} vs {args.r2} by {args.breakdown}", result
        )
    )
    return 0


def _command_whatif(args) -> int:
    if args.url:
        from .client import FBoxClient

        params = {}
        if args.alpha is not None:
            params["alpha"] = args.alpha
        if args.p is not None:
            params["p"] = args.p
        with FBoxClient(args.url) as client:
            document = client.whatif(
                args.site, args.group, args.query, args.location,
                args.intervention, **params,
            )
    else:
        from .service.encoding import encode_whatif

        fbox = _load_fbox(args)
        group = _parse_member("group", args.group)
        result = fbox.whatif(
            group, args.query, args.location, args.intervention,
            alpha=args.alpha, p=args.p,
        )
        document = encode_whatif(result)
        document.update(
            dataset=args.site, group=str(group),
            query=args.query, location=args.location,
        )
    if args.json:
        print(json.dumps(document, sort_keys=True, indent=2))
        return 0
    print(
        f"{document['intervention']} on {document['group']} at "
        f"({document['query']!r}, {document['location']!r}): "
        f"{document['moved']} of {len(document['original'])} workers moved"
    )
    rows = [
        (name, entry["before"], entry["after"], entry["delta"])
        for name, entry in sorted(document["measures"].items())
    ]
    print(
        report_mod.render_table(
            "Per-measure fairness delta (negative = less unfair)",
            ("measure", "before", "after", "delta"),
            rows,
        )
    )
    return 0


def _command_explain(args) -> int:
    from .core.explain import explain_cell

    fbox = _load_fbox(args)
    group = _parse_member("group", args.group)
    explanation = explain_cell(fbox.engine, group, args.query, args.location)
    print(explanation.narrative())
    print()
    rows = [
        (
            str(contribution.comparable),
            contribution.distance,
            f"{contribution.group_size} vs {contribution.comparable_size}",
        )
        for contribution in explanation.contributions
    ]
    print(
        report_mod.render_table(
            "Per-comparable-group contributions",
            ("comparable group", "distance", "members"),
            rows,
        )
    )
    return 0


def _command_toy(args) -> int:
    from .experiments import toy

    print(f"Figure 1 (illustrative Kendall average): {toy.figure1_unfairness():.2f}")
    print(f"Figure 1 (measured on Table 1 data):     {toy.figure1_measured():.3f}")
    print(f"Figure 2 (illustrative EMD average):     {toy.figure2_unfairness():.2f}")
    print(f"Figure 3 (illustrative Jaccard average): {toy.figure3_partial_unfairness():.2f}")
    print(f"Figure 3 (measured on Table 1 data):     {toy.figure3_measured():.3f}")
    print(f"Figure 4 (illustrative EMD average):     {toy.figure4_unfairness():.2f}")
    fig5 = toy.figure5_exposure()
    print(
        "Figure 5 (exact): exposure "
        f"{fig5.group_exposure:.2f}/{fig5.group_exposure + fig5.comparable_exposure:.2f}"
        f" = {fig5.exposure_share:.2f}, relevance "
        f"{fig5.group_relevance:.2f}/{fig5.group_relevance + fig5.comparable_relevance:.2f}"
        f" = {fig5.relevance_share:.2f}, unfairness {fig5.unfairness:.3f}"
    )
    return 0


def _command_reproduce(args) -> int:
    from .experiments import quantification as quant

    target = args.target.lower()
    seed = args.seed
    if target in ("table8", "table9", "table10", "table11"):
        measure = args.measure or "emd"
        producer = {
            "table8": quant.table8_group_ranking,
            "table9": quant.table9_job_ranking,
            "table10": quant.table10_unfairest_locations,
            "table11": quant.table11_fairest_locations,
        }[target]
        rows = producer(measure=measure, seed=seed)
        label = {"table8": "group", "table9": "job", "table10": "city", "table11": "city"}[target]
    elif target in ("google-groups", "google-locations", "google-queries"):
        measure = args.measure or "kendall"
        producer = {
            "google-groups": quant.google_group_ranking,
            "google-locations": quant.google_location_ranking,
            "google-queries": quant.google_query_ranking,
        }[target]
        rows = producer(measure=measure, seed=seed)
        label = {"groups": "group", "locations": "location", "queries": "query"}[
            target.split("-")[1]
        ]
    else:
        raise ReproError(f"unknown reproduction target {args.target!r}")
    print(
        report_mod.render_table(
            f"{args.target} ({measure}, seed={seed})",
            (label, "unfairness"),
            [(row.member, row.value) for row in rows],
        )
    )
    return 0


def _command_batch(args) -> int:
    """Run a file of sub-requests through the batch planner, print the envelope.

    Exit code 1 only when *every* sub-request failed (a fully wasted run);
    partial failures exit 0 — item errors are data, reported in the
    envelope and counted on stderr — so audit pipelines keep the answers
    they did get.
    """
    with open(args.requests, encoding="utf-8") as handle:
        payload = json.load(handle)

    if args.url:
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            args.url.rstrip("/") + "/v1/batch",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request) as response:
                document = json.loads(response.read())
        except urllib.error.HTTPError as error:
            print(error.read().decode("utf-8", "replace"), file=sys.stderr)
            print(f"error: POST /v1/batch answered {error.code}", file=sys.stderr)
            return 1
    else:
        from .service.cache import LRUCache
        from .service.handlers import ServiceContext, handle_batch
        from .service.observability import ServiceMetrics
        from .service.registry import default_registry

        registry = default_registry(
            seed=args.seed,
            scope=args.scope,
            taskrabbit_path=args.taskrabbit_data,
            google_path=args.google_data,
        )
        context = ServiceContext(
            registry=registry, cache=LRUCache(256), metrics=ServiceMetrics()
        )
        document = handle_batch(context, payload)

    print(json.dumps(document, sort_keys=True, indent=2))
    failed = document.get("failed", 0)
    count = document.get("count", 0)
    if failed:
        print(f"{failed} of {count} sub-requests failed", file=sys.stderr)
    return 1 if count and failed == count else 0


def _command_serve(args) -> int:
    from .service.faults import faults_from_env
    from .service.registry import default_registry
    from .service.resilience import BreakerConfig
    from .service.server import serve

    registry = default_registry(
        seed=args.seed,
        scope=args.scope,
        taskrabbit_path=args.taskrabbit_data,
        google_path=args.google_data,
        breaker_config=BreakerConfig(
            failure_threshold=args.breaker_failures,
            reset_timeout=args.breaker_reset,
        ),
        faults=faults_from_env(),
        core=args.core,
    )
    return serve(
        registry=registry,
        host=args.host,
        port=args.port,
        cache_size=args.cache_size,
        cache_ttl=args.cache_ttl if args.cache_ttl > 0 else None,
        request_timeout=args.timeout if args.timeout > 0 else None,
        max_concurrency=args.max_concurrency,
        queue_depth=args.queue_depth,
        preload=args.preload,
        backend=args.backend,
        executor_workers=args.executor_workers or None,
        drain_grace=args.drain_grace,
        shards=args.shards,
        alert_threshold=args.alert_threshold if args.alert_threshold > 0 else None,
        core=args.core,
        admin_token=args.admin_token,
        legacy_routes=args.legacy_routes,
    )


def _command_simulate(args) -> int:
    """Stream simulator batches shaped for ``POST /v1/observations``."""
    from .experiments.datasets import (
        build_google_dataset,
        build_taskrabbit_dataset,
        build_taskrabbit_site,
    )
    from .service.registry import SMALL_CITIES

    if args.scenario:
        from .scenarios import build_scenario, build_scenario_site

        config = _scenario_config(args)
        name = args.dataset_name or config.name
        dataset = build_scenario(config)
        if config.site == "taskrabbit":
            from .marketplace.crawl import emit_observations

            stream = emit_observations(
                build_scenario_site(config),
                dataset,
                batches=args.batches,
                batch_size=args.batch_size,
                seed=config.seed,
                swaps=args.swaps,
            )
        else:
            from .searchengine.study import emit_observations

            stream = emit_observations(
                dataset,
                batches=args.batches,
                batch_size=args.batch_size,
                seed=config.seed,
                swaps=args.swaps,
            )
        if not args.stream:
            print(
                f"{config.name} ({config.site}): {len(dataset)} observations "
                f"over {len(dataset.queries)} queries × "
                f"{len(dataset.locations)} locations; --stream emits "
                f"{args.batches} batches of {args.batch_size}"
            )
            return 0
        for position, batch in enumerate(stream):
            line = {
                "dataset": name,
                "batch_id": f"sim-{config.name}-{config.seed}-{position}",
                "observations": batch,
            }
            print(json.dumps(line, sort_keys=True))
        return 0
    if not args.site:
        raise ReproError("simulate needs a site argument or --scenario NAME")
    name = args.dataset_name or args.site
    if args.site == "taskrabbit":
        from .marketplace.crawl import emit_observations

        cities = SMALL_CITIES if args.scope == "small" else None
        dataset = build_taskrabbit_dataset(seed=args.seed, cities=cities)
        stream = emit_observations(
            build_taskrabbit_site(args.seed),
            dataset,
            batches=args.batches,
            batch_size=args.batch_size,
            seed=args.seed,
            swaps=args.swaps,
        )
    else:
        from .searchengine.study import emit_observations

        design = "paper" if args.scope == "small" else "full"
        dataset = build_google_dataset(seed=args.seed, design=design)
        stream = emit_observations(
            dataset,
            batches=args.batches,
            batch_size=args.batch_size,
            seed=args.seed,
            swaps=args.swaps,
        )
    if not args.stream:
        print(
            f"{args.site}: {len(dataset)} observations over "
            f"{len(dataset.queries)} queries × {len(dataset.locations)} "
            f"locations; --stream emits {args.batches} batches of "
            f"{args.batch_size}"
        )
        return 0
    for position, batch in enumerate(stream):
        line = {
            "dataset": name,
            "batch_id": f"sim-{args.site}-{args.seed}-{position}",
            "observations": batch,
        }
        print(json.dumps(line, sort_keys=True))
    return 0


def _command_loadgen(args) -> int:
    """Replay a seeded traffic mix against a running service, print a report.

    Exit code 1 when any *hard* failure occurred (non-backpressure client
    error, transport failure, or shed requests that exhausted retries) —
    429/503 answers that eventually succeeded are backpressure working as
    designed and do not fail the run.  This is the contract the smoke
    harness and CI gate rely on.
    """
    from .scenarios import format_report, run_loadgen

    config = _scenario_config(args)
    requests = args.requests
    workers = args.workers
    warmup = args.warmup
    if args.quick:
        requests, workers, warmup = 40, 2, 8
    mix = None
    if args.mix:
        mix = {}
        for pair in args.mix.split(","):
            op, separator, weight = pair.partition("=")
            if not separator:
                raise ReproError(f"mix entry {pair!r} is not op=weight")
            try:
                mix[op.strip()] = float(weight)
            except ValueError:
                raise ReproError(f"mix weight {weight!r} is not a number") from None
    report = run_loadgen(
        args.url,
        args.dataset,
        config,
        mode=args.mode,
        requests=requests,
        workers=workers,
        rate=args.rate,
        warmup=warmup,
        seed=args.seed,
        mix=mix,
        timeout=args.timeout,
    )
    if args.json:
        print(json.dumps(report, sort_keys=True, indent=2))
    else:
        print(format_report(report))
    hard = report["errors"]["hard"]
    if hard:
        print(f"error: {hard} hard failures", file=sys.stderr)
    return 1 if hard else 0


def _command_ingest(args) -> int:
    """POST JSONL ingest batches to a live service, one request per line."""
    from .client import FBoxClient

    if args.batches == "-":
        lines = sys.stdin.read().splitlines()
    else:
        with open(args.batches, encoding="utf-8") as handle:
            lines = handle.read().splitlines()

    applied = replayed = accepted = 0
    with FBoxClient(args.url) as client:
        for number, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            batch = json.loads(line)
            if isinstance(batch, list):
                batch = {"dataset": args.dataset, "observations": batch}
            dataset = batch.get("dataset") or args.dataset
            if not dataset:
                print(
                    f"error: line {number} names no dataset and --dataset "
                    "was not given",
                    file=sys.stderr,
                )
                return 1
            document = client.ingest(
                dataset,
                batch.get("observations") or [],
                batch_id=batch.get("batch_id"),
            )
            if document.get("replayed"):
                replayed += 1
            else:
                applied += 1
                accepted += document.get("accepted", 0)
            print(
                f"{dataset}: generation {document.get('generation')}, "
                f"accepted {document.get('accepted')}, "
                f"alerts {document.get('alerts')}"
                + (" (replayed)" if document.get("replayed") else "")
            )
    print(
        f"ingested {applied} batches ({accepted} observations), "
        f"{replayed} replayed"
    )
    return 0


_COMMANDS = {
    "generate": _command_generate,
    "quantify": _command_quantify,
    "compare": _command_compare,
    "explain": _command_explain,
    "whatif": _command_whatif,
    "toy": _command_toy,
    "reproduce": _command_reproduce,
    "batch": _command_batch,
    "serve": _command_serve,
    "simulate": _command_simulate,
    "ingest": _command_ingest,
    "loadgen": _command_loadgen,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
