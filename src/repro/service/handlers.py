"""Endpoint logic: validate, consult the cache, query the F-Box, encode.

Handlers are plain functions over a :class:`ServiceContext` — no HTTP in
sight — so the full request surface (including every error path) is testable
without a socket.  The server layer maps their return values onto HTTP
responses and their :class:`~repro.service.errors.ServiceError` exceptions
onto structured 4xx JSON bodies.

Validation policy
-----------------
* envelope problems (non-object body, missing/mistyped fields) → 400;
* unknown dataset names → 404;
* semantically invalid queries (unknown dimensions or measures, malformed
  group labels, members outside a domain, undefined cells) → 422.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping

from ..core.explain import explain_cell
from ..exceptions import ReproError
from .cache import LRUCache
from .encoding import (
    canonical_key,
    encode_comparison,
    encode_explanation,
    encode_topk,
    parse_group,
    parse_member,
)
from .errors import BadRequest, ServiceError, Unprocessable
from .observability import ServiceMetrics
from .registry import DatasetRegistry

__all__ = [
    "ServiceContext",
    "handle_quantify",
    "handle_compare",
    "handle_explain",
    "handle_datasets",
    "handle_healthz",
]

_DIMENSIONS = ("group", "query", "location")
_ORDERS = ("most", "least")
_QUANTIFY_ALGORITHMS = ("fagin", "naive")
_COMPARE_ALGORITHMS = ("cube", "indices")


@dataclass
class ServiceContext:
    """Everything a handler needs: datasets, result cache, metrics."""

    registry: DatasetRegistry
    cache: LRUCache = field(default_factory=LRUCache)
    metrics: ServiceMetrics = field(default_factory=ServiceMetrics)


def _require_object(payload) -> Mapping:
    if not isinstance(payload, Mapping):
        raise BadRequest(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _string_field(payload: Mapping, name: str, required: bool = True) -> str | None:
    value = payload.get(name)
    if value is None:
        if required:
            raise BadRequest(f"missing required field {name!r}")
        return None
    if not isinstance(value, str) or not value:
        raise BadRequest(f"field {name!r} must be a non-empty string")
    return value


def _int_field(payload: Mapping, name: str, default: int) -> int:
    value = payload.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequest(f"field {name!r} must be an integer")
    return value


def _choice_field(
    payload: Mapping, name: str, choices: tuple[str, ...], default: str | None = None
) -> str:
    """A string field restricted to ``choices``.

    Missing-and-no-default is a 400 (envelope problem); present but outside
    ``choices`` is a 422 (semantic problem).
    """
    value = payload.get(name, default)
    if value is None:
        raise BadRequest(f"missing required field {name!r}")
    if not isinstance(value, str):
        raise BadRequest(f"field {name!r} must be a string")
    if value not in choices:
        raise Unprocessable(
            f"field {name!r} must be one of {list(choices)}, got {value!r}"
        )
    return value


def _parse_member_or_422(dimension: str, text: str) -> Hashable:
    try:
        return parse_member(dimension, text)
    except ServiceError:
        raise
    except ReproError as error:
        raise Unprocessable(str(error)) from error


def _run_query(fn):
    """Run one F-Box call, translating library errors into 422s."""
    try:
        return fn()
    except ServiceError:
        raise
    except ReproError as error:
        raise Unprocessable(str(error)) from error


def _cached(context: ServiceContext, key: str, compute):
    """Cache-through: return ``(document, was_hit)``."""
    hit = context.cache.get(key)
    if hit is not None:
        return hit, True
    document = compute()
    context.cache.put(key, document)
    return document, False


def handle_quantify(context: ServiceContext, payload) -> dict:
    """``POST /quantify`` — Problem 1: top/bottom-k of one dimension."""
    payload = _require_object(payload)
    dataset = _string_field(payload, "dataset")
    dimension = _choice_field(payload, "dimension", _DIMENSIONS)
    k = _int_field(payload, "k", 5)
    if k <= 0:
        raise Unprocessable(f"k must be positive, got {k}")
    order = _choice_field(payload, "order", _ORDERS, "most")
    algorithm = _choice_field(payload, "algorithm", _QUANTIFY_ALGORITHMS, "fagin")
    measure = _string_field(payload, "measure", required=False)
    spec = context.registry.spec(dataset)  # 404 before any heavy work
    measure = (measure or spec.default_measure).lower()

    key = canonical_key(
        "quantify",
        {
            "dataset": dataset,
            "measure": measure,
            "dimension": dimension,
            "k": k,
            "order": order,
            "algorithm": algorithm,
        },
    )

    def compute() -> dict:
        fbox = context.registry.fbox(dataset, measure)
        result = _run_query(
            lambda: fbox.quantify(dimension, k=k, order=order, algorithm=algorithm)
        )
        context.metrics.record_access_stats(result.stats)
        document = encode_topk(result, dimension)
        document.update(dataset=dataset, measure=measure, k=k, algorithm=algorithm)
        return document

    document, was_hit = _cached(context, key, compute)
    return {**document, "cached": was_hit}


def handle_compare(context: ServiceContext, payload) -> dict:
    """``POST /compare`` — Problem 2: reversal breakdown of r1 vs r2."""
    payload = _require_object(payload)
    dataset = _string_field(payload, "dataset")
    dimension = _choice_field(payload, "dimension", _DIMENSIONS)
    breakdown = _choice_field(payload, "breakdown", _DIMENSIONS)
    r1_text = _string_field(payload, "r1")
    r2_text = _string_field(payload, "r2")
    algorithm = _choice_field(payload, "algorithm", _COMPARE_ALGORITHMS, "cube")
    measure = _string_field(payload, "measure", required=False)
    spec = context.registry.spec(dataset)
    measure = (measure or spec.default_measure).lower()
    r1 = _parse_member_or_422(dimension, r1_text)
    r2 = _parse_member_or_422(dimension, r2_text)

    key = canonical_key(
        "compare",
        {
            "dataset": dataset,
            "measure": measure,
            "dimension": dimension,
            "breakdown": breakdown,
            "r1": str(r1),
            "r2": str(r2),
            "algorithm": algorithm,
        },
    )

    def compute() -> dict:
        fbox = context.registry.fbox(dataset, measure)
        report = _run_query(
            lambda: fbox.compare(dimension, r1, r2, breakdown, algorithm=algorithm)
        )
        context.metrics.record_access_stats(report.stats)
        document = encode_comparison(report)
        document.update(dataset=dataset, measure=measure, algorithm=algorithm)
        return document

    document, was_hit = _cached(context, key, compute)
    return {**document, "cached": was_hit}


def handle_explain(context: ServiceContext, payload) -> dict:
    """``POST /explain`` — decompose one ``d<g,q,l>`` cell."""
    payload = _require_object(payload)
    dataset = _string_field(payload, "dataset")
    group_text = _string_field(payload, "group")
    query = _string_field(payload, "query")
    location = _string_field(payload, "location")
    measure = _string_field(payload, "measure", required=False)
    spec = context.registry.spec(dataset)
    measure = (measure or spec.default_measure).lower()
    try:
        group = parse_group(group_text)
    except ReproError as error:
        raise Unprocessable(str(error)) from error

    key = canonical_key(
        "explain",
        {
            "dataset": dataset,
            "measure": measure,
            "group": str(group),
            "query": query,
            "location": location,
        },
    )

    def compute() -> dict:
        fbox = context.registry.fbox(dataset, measure)
        explanation = _run_query(
            lambda: explain_cell(fbox.engine, group, query, location)
        )
        document = encode_explanation(explanation)
        document.update(dataset=dataset, measure=measure)
        return document

    document, was_hit = _cached(context, key, compute)
    return {**document, "cached": was_hit}


def handle_datasets(context: ServiceContext, payload=None) -> dict:
    """``GET /datasets`` — the registry listing."""
    return {"datasets": context.registry.describe()}


def handle_healthz(context: ServiceContext, payload=None) -> dict:
    """``GET /healthz`` — liveness."""
    return {"status": "ok", "datasets": context.registry.names()}
