"""Endpoint logic: validate, consult the cache, query the F-Box, encode.

Handlers are plain functions over a :class:`ServiceContext` — no HTTP in
sight — so the full request surface (including every error path) is testable
without a socket.  The server layer maps their return values onto HTTP
responses and their :class:`~repro.service.errors.ServiceError` exceptions
onto structured 4xx JSON bodies.

Validation policy
-----------------
* envelope problems (non-object body, missing/mistyped fields) → 400;
* unknown dataset names → 404;
* semantically invalid queries (unknown dimensions or measures, malformed
  group labels, members outside a domain, undefined cells) → 422.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping

from ..core.batch import group_key
from ..core.explain import explain_cell
from ..exceptions import ReproError
from .cache import LRUCache
from .encoding import (
    batch_item_error,
    batch_item_ok,
    canonical_key,
    encode_batch,
    encode_comparison,
    encode_explanation,
    encode_topk,
    parse_group,
    parse_member,
)
from .errors import BadRequest, ServiceError, Unprocessable
from .observability import ServiceMetrics
from .registry import DatasetRegistry

__all__ = [
    "ServiceContext",
    "handle_quantify",
    "handle_compare",
    "handle_explain",
    "handle_batch",
    "handle_datasets",
    "handle_healthz",
]

_DIMENSIONS = ("group", "query", "location")
_ORDERS = ("most", "least")
_QUANTIFY_ALGORITHMS = ("fagin", "naive")
_COMPARE_ALGORITHMS = ("cube", "indices")
_BATCH_OPS = ("quantify", "compare", "explain")

_MAX_BATCH_ITEMS = 64
"""Upper bound on sub-requests per batch (everything runs under one
request deadline, so unbounded batches would turn into guaranteed 503s)."""


@dataclass
class ServiceContext:
    """Everything a handler needs: datasets, result cache, metrics."""

    registry: DatasetRegistry
    cache: LRUCache = field(default_factory=LRUCache)
    metrics: ServiceMetrics = field(default_factory=ServiceMetrics)


def _require_object(payload) -> Mapping:
    if not isinstance(payload, Mapping):
        raise BadRequest(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _string_field(payload: Mapping, name: str, required: bool = True) -> str | None:
    value = payload.get(name)
    if value is None:
        if required:
            raise BadRequest(f"missing required field {name!r}")
        return None
    if not isinstance(value, str) or not value:
        raise BadRequest(f"field {name!r} must be a non-empty string")
    return value


def _int_field(payload: Mapping, name: str, default: int) -> int:
    value = payload.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequest(f"field {name!r} must be an integer")
    return value


def _choice_field(
    payload: Mapping, name: str, choices: tuple[str, ...], default: str | None = None
) -> str:
    """A string field restricted to ``choices``.

    Missing-and-no-default is a 400 (envelope problem); present but outside
    ``choices`` is a 422 (semantic problem).
    """
    value = payload.get(name, default)
    if value is None:
        raise BadRequest(f"missing required field {name!r}")
    if not isinstance(value, str):
        raise BadRequest(f"field {name!r} must be a string")
    if value not in choices:
        raise Unprocessable(
            f"field {name!r} must be one of {list(choices)}, got {value!r}"
        )
    return value


def _parse_member_or_422(dimension: str, text: str) -> Hashable:
    try:
        return parse_member(dimension, text)
    except ServiceError:
        raise
    except ReproError as error:
        raise Unprocessable(str(error)) from error


def _run_query(fn):
    """Run one F-Box call, translating library errors into 422s."""
    try:
        return fn()
    except ServiceError:
        raise
    except ReproError as error:
        raise Unprocessable(str(error)) from error


def _cached(context: ServiceContext, key: str, compute):
    """Cache-through: return ``(document, was_hit)``."""
    hit = context.cache.get(key)
    if hit is not None:
        return hit, True
    document = compute()
    context.cache.put(key, document)
    return document, False


@dataclass(frozen=True)
class _QuantifyRequest:
    """One fully validated quantify sub-request plus its cache key."""

    dataset: str
    measure: str
    dimension: str
    k: int
    order: str
    algorithm: str
    key: str

    @property
    def sweep_key(self) -> tuple[str, str, str, str]:
        """The batch planner's sharing key (see :func:`repro.core.batch.group_key`)."""
        return group_key(self.dataset, self.measure, self.dimension, self.order)


def _parse_quantify(context: ServiceContext, payload) -> _QuantifyRequest:
    """Validate a quantify payload without computing anything heavy."""
    payload = _require_object(payload)
    dataset = _string_field(payload, "dataset")
    dimension = _choice_field(payload, "dimension", _DIMENSIONS)
    k = _int_field(payload, "k", 5)
    if k <= 0:
        raise Unprocessable(f"k must be positive, got {k}")
    order = _choice_field(payload, "order", _ORDERS, "most")
    algorithm = _choice_field(payload, "algorithm", _QUANTIFY_ALGORITHMS, "fagin")
    measure = _string_field(payload, "measure", required=False)
    spec = context.registry.spec(dataset)  # 404 before any heavy work
    measure = (measure or spec.default_measure).lower()

    key = canonical_key(
        "quantify",
        {
            "dataset": dataset,
            "generation": context.registry.generation(dataset),
            "measure": measure,
            "dimension": dimension,
            "k": k,
            "order": order,
            "algorithm": algorithm,
        },
    )
    return _QuantifyRequest(
        dataset=dataset,
        measure=measure,
        dimension=dimension,
        k=k,
        order=order,
        algorithm=algorithm,
        key=key,
    )


def _quantify_document(request: _QuantifyRequest, result) -> dict:
    document = encode_topk(result, request.dimension)
    document.update(
        dataset=request.dataset,
        measure=request.measure,
        k=request.k,
        algorithm=request.algorithm,
    )
    return document


def _compute_quantify(context: ServiceContext, request: _QuantifyRequest) -> dict:
    fbox = context.registry.fbox(request.dataset, request.measure)
    result = _run_query(
        lambda: fbox.quantify(
            request.dimension,
            k=request.k,
            order=request.order,
            algorithm=request.algorithm,
        )
    )
    context.metrics.record_access_stats(result.stats)
    return _quantify_document(request, result)


def handle_quantify(context: ServiceContext, payload) -> dict:
    """``POST /quantify`` — Problem 1: top/bottom-k of one dimension."""
    request = _parse_quantify(context, payload)
    document, was_hit = _cached(
        context, request.key, lambda: _compute_quantify(context, request)
    )
    return {**document, "cached": was_hit}


def handle_compare(context: ServiceContext, payload) -> dict:
    """``POST /compare`` — Problem 2: reversal breakdown of r1 vs r2."""
    payload = _require_object(payload)
    dataset = _string_field(payload, "dataset")
    dimension = _choice_field(payload, "dimension", _DIMENSIONS)
    breakdown = _choice_field(payload, "breakdown", _DIMENSIONS)
    r1_text = _string_field(payload, "r1")
    r2_text = _string_field(payload, "r2")
    algorithm = _choice_field(payload, "algorithm", _COMPARE_ALGORITHMS, "cube")
    measure = _string_field(payload, "measure", required=False)
    spec = context.registry.spec(dataset)
    measure = (measure or spec.default_measure).lower()
    r1 = _parse_member_or_422(dimension, r1_text)
    r2 = _parse_member_or_422(dimension, r2_text)

    key = canonical_key(
        "compare",
        {
            "dataset": dataset,
            "generation": context.registry.generation(dataset),
            "measure": measure,
            "dimension": dimension,
            "breakdown": breakdown,
            "r1": str(r1),
            "r2": str(r2),
            "algorithm": algorithm,
        },
    )

    def compute() -> dict:
        fbox = context.registry.fbox(dataset, measure)
        report = _run_query(
            lambda: fbox.compare(dimension, r1, r2, breakdown, algorithm=algorithm)
        )
        context.metrics.record_access_stats(report.stats)
        document = encode_comparison(report)
        document.update(dataset=dataset, measure=measure, algorithm=algorithm)
        return document

    document, was_hit = _cached(context, key, compute)
    return {**document, "cached": was_hit}


def handle_explain(context: ServiceContext, payload) -> dict:
    """``POST /explain`` — decompose one ``d<g,q,l>`` cell."""
    payload = _require_object(payload)
    dataset = _string_field(payload, "dataset")
    group_text = _string_field(payload, "group")
    query = _string_field(payload, "query")
    location = _string_field(payload, "location")
    measure = _string_field(payload, "measure", required=False)
    spec = context.registry.spec(dataset)
    measure = (measure or spec.default_measure).lower()
    try:
        group = parse_group(group_text)
    except ReproError as error:
        raise Unprocessable(str(error)) from error

    key = canonical_key(
        "explain",
        {
            "dataset": dataset,
            "generation": context.registry.generation(dataset),
            "measure": measure,
            "group": str(group),
            "query": query,
            "location": location,
        },
    )

    def compute() -> dict:
        fbox = context.registry.fbox(dataset, measure)
        explanation = _run_query(
            lambda: explain_cell(fbox.engine, group, query, location)
        )
        document = encode_explanation(explanation)
        document.update(dataset=dataset, measure=measure)
        return document

    document, was_hit = _cached(context, key, compute)
    return {**document, "cached": was_hit}


def _batch_items(payload) -> list:
    """Unwrap and bound the batch envelope (whole-batch 400s live here)."""
    if isinstance(payload, Mapping):
        payload = payload.get("requests")
        if payload is None:
            raise BadRequest(
                'batch body must be a JSON array of sub-requests or '
                '{"requests": [...]}'
            )
    if not isinstance(payload, (list, tuple)):
        raise BadRequest(
            f"batch requests must be a JSON array, got {type(payload).__name__}"
        )
    if not payload:
        raise BadRequest("batch is empty; send at least one sub-request")
    if len(payload) > _MAX_BATCH_ITEMS:
        raise BadRequest(
            f"batch exceeds {_MAX_BATCH_ITEMS} sub-requests (got {len(payload)})"
        )
    return list(payload)


def handle_batch(context: ServiceContext, payload) -> dict:
    """``POST /batch`` — many quantify/compare/explain answers in one call.

    The planner groups cold fagin-quantify sub-requests by
    ``(dataset, measure, dimension, order)`` and answers each group with a
    **single** threshold-algorithm sweep at the group's largest ``k``
    (:meth:`repro.core.fbox.FBox.quantify_many`), slicing per-request
    results out of the one heap walk.  Everything else — cache hits,
    naive-algorithm quantifies, compares, explains — runs through the
    existing single-request handlers, so per-item caching semantics are
    identical to the standalone endpoints.

    Item failures never fail the batch: each sub-request carries its own
    ``status`` and either ``body`` or ``error`` in the item-aligned
    ``results`` array, and the batch itself answers 200.  Only envelope
    problems (empty, oversized, non-array) are whole-batch 400s.
    """
    items = _batch_items(payload)
    results: list[dict | None] = [None] * len(items)
    plans: dict[tuple, list[tuple[int, _QuantifyRequest]]] = {}

    for position, item in enumerate(items):
        try:
            item = _require_object(item)
            op = _choice_field(item, "op", _BATCH_OPS)
            if op == "compare":
                results[position] = batch_item_ok(handle_compare(context, item))
            elif op == "explain":
                results[position] = batch_item_ok(handle_explain(context, item))
            else:
                request = _parse_quantify(context, item)
                hit = context.cache.get(request.key)
                if hit is not None:
                    results[position] = batch_item_ok({**hit, "cached": True})
                elif request.algorithm == "fagin":
                    plans.setdefault(request.sweep_key, []).append(
                        (position, request)
                    )
                else:
                    document, was_hit = _cached(
                        context,
                        request.key,
                        lambda request=request: _compute_quantify(context, request),
                    )
                    results[position] = batch_item_ok(
                        {**document, "cached": was_hit}
                    )
        except ServiceError as error:
            results[position] = batch_item_error(error)

    shared_items = sum(len(members) for members in plans.values() if len(members) > 1)
    for members in plans.values():
        _, first = members[0]
        try:
            fbox = context.registry.fbox(first.dataset, first.measure)
            sweep = _run_query(
                lambda: fbox.quantify_many(
                    first.dimension,
                    [request.k for _, request in members],
                    order=first.order,
                )
            )
            # Every sliced result shares the one sweep's frozen counters;
            # account the sweep once, not once per sub-request.
            context.metrics.record_access_stats(
                next(iter(sweep.values())).stats
            )
            for position, request in members:
                document = _quantify_document(request, sweep[request.k])
                context.cache.put(request.key, document)
                results[position] = batch_item_ok({**document, "cached": False})
        except ServiceError as error:
            for position, _ in members:
                results[position] = batch_item_error(error)

    context.metrics.record_batch(
        items=len(items), groups=len(plans), shared_items=shared_items
    )
    return encode_batch(results, sweep_groups=len(plans), shared_items=shared_items)


def handle_datasets(context: ServiceContext, payload=None) -> dict:
    """``GET /datasets`` — the registry listing."""
    return {"datasets": context.registry.describe()}


def handle_healthz(context: ServiceContext, payload=None) -> dict:
    """``GET /healthz`` — liveness."""
    return {"status": "ok", "datasets": context.registry.names()}
