"""Endpoint logic: validate, consult the cache, query the F-Box, encode.

Handlers are plain functions over a :class:`ServiceContext` — no HTTP in
sight — so the full request surface (including every error path) is testable
without a socket.  The server layer maps their return values onto HTTP
responses and their :class:`~repro.service.errors.ServiceError` exceptions
onto structured 4xx JSON bodies.

Validation policy
-----------------
* envelope problems (non-object body, missing/mistyped fields) → 400;
* unknown dataset names → 404;
* semantically invalid queries (unknown dimensions or measures, malformed
  group labels, members outside a domain, undefined cells) → 422.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping

from ..core.batch import group_key
from ..core.explain import explain_cell
from ..core.interventions import available_interventions, intervention_info
from ..core.measures.base import (
    GROUP_RANKING,
    available_measures,
    family_for_site,
    measure_info,
)
from ..exceptions import ReproError
from .cache import LRUCache
from .encoding import (
    batch_item_error,
    batch_item_ok,
    canonical_key,
    encode_batch,
    encode_comparison,
    encode_explanation,
    encode_topk,
    encode_whatif,
    parse_group,
    parse_member,
)
from .errors import BadRequest, ServiceError, Unprocessable, error_catalog
from .faults import FaultInjector
from .ingest import IngestManager
from .observability import ServiceMetrics
from .registry import DatasetRegistry
from .resilience import AdmissionController

__all__ = [
    "API_PREFIX",
    "API_VERSION",
    "LEGACY_SUNSET",
    "REQUEST_PARSERS",
    "ServiceContext",
    "handle_quantify",
    "handle_compare",
    "handle_explain",
    "handle_whatif",
    "handle_batch",
    "handle_front_read",
    "handle_datasets",
    "handle_healthz",
    "handle_readyz",
    "handle_schema",
    "resolve_degraded",
    "service_schema",
]

API_VERSION = "v1"
API_PREFIX = "/v1"
"""The current API version mount point: every endpoint answers at
``/v1/<endpoint>``.  The unversioned paths still work but are deprecated."""

LEGACY_SUNSET = "Thu, 31 Dec 2026 23:59:59 GMT"
"""The ``Sunset`` date legacy (unversioned) responses advertise."""

_DIMENSIONS = ("group", "query", "location")
_ORDERS = ("most", "least")
_QUANTIFY_ALGORITHMS = ("fagin", "naive")
_COMPARE_ALGORITHMS = ("cube", "indices")
_BATCH_OPS = ("quantify", "compare", "explain")

_MAX_BATCH_ITEMS = 64
"""Upper bound on sub-requests per batch (everything runs under one
request deadline, so unbounded batches would turn into guaranteed 503s)."""


@dataclass
class ServiceContext:
    """Everything a handler needs: datasets, caches, metrics, resilience.

    ``stale`` is the **last-known-good store**: one entry per logical query
    keyed *without* the dataset generation, holding ``(document,
    generation)``.  Unlike the result cache it survives re-registration on
    purpose — it is what degraded mode serves (with an explicit
    ``"degraded": true`` and ``"age_generations"``) when a deadline fires
    or a breaker is open and the request opted in via ``allow_stale``.
    """

    registry: DatasetRegistry
    cache: LRUCache = field(default_factory=LRUCache)
    metrics: ServiceMetrics = field(default_factory=ServiceMetrics)
    stale: LRUCache = field(default_factory=lambda: LRUCache(256))
    admission: AdmissionController | None = None
    faults: FaultInjector | None = None
    require_loaded: tuple[str, ...] = ()
    ingest: IngestManager = field(default_factory=IngestManager)
    router: object | None = None
    """The :class:`~repro.service.sharding.ShardRouter` when ``--shards N``
    is on (typed loosely to keep this module import-light).  When set, POST
    query execution and the dataset-truth surfaces (``/datasets``,
    ``/readyz``, the worker half of ``/metrics``) go through it."""


def _require_object(payload) -> Mapping:
    if not isinstance(payload, Mapping):
        raise BadRequest(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _string_field(payload: Mapping, name: str, required: bool = True) -> str | None:
    value = payload.get(name)
    if value is None:
        if required:
            raise BadRequest(f"missing required field {name!r}")
        return None
    if not isinstance(value, str) or not value:
        raise BadRequest(f"field {name!r} must be a non-empty string")
    return value


def _int_field(payload: Mapping, name: str, default: int) -> int:
    value = payload.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequest(f"field {name!r} must be an integer")
    return value


def _bool_field(payload: Mapping, name: str, default: bool = False) -> bool:
    value = payload.get(name, default)
    if not isinstance(value, bool):
        raise BadRequest(f"field {name!r} must be a boolean")
    return value


def _number_field(payload: Mapping, name: str) -> float | None:
    """An optional numeric field (int or float, not bool)."""
    value = payload.get(name)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BadRequest(f"field {name!r} must be a number")
    return float(value)


def _choice_field(
    payload: Mapping, name: str, choices: tuple[str, ...], default: str | None = None
) -> str:
    """A string field restricted to ``choices``.

    Missing-and-no-default is a 400 (envelope problem); present but outside
    ``choices`` is a 422 (semantic problem).
    """
    value = payload.get(name, default)
    if value is None:
        raise BadRequest(f"missing required field {name!r}")
    if not isinstance(value, str):
        raise BadRequest(f"field {name!r} must be a string")
    if value not in choices:
        raise Unprocessable(
            f"field {name!r} must be one of {list(choices)}, got {value!r}"
        )
    return value


def _parse_member_or_422(dimension: str, text: str) -> Hashable:
    try:
        return parse_member(dimension, text)
    except ServiceError:
        raise
    except ReproError as error:
        raise Unprocessable(str(error)) from error


def _run_query(fn):
    """Run one F-Box call, translating library errors into 422s."""
    try:
        return fn()
    except ServiceError:
        raise
    except ReproError as error:
        raise Unprocessable(str(error)) from error


def _answer(context: ServiceContext, request: "_ParsedRequest", compute):
    """Cache-through with a last-known-good side copy: ``(document, was_hit)``.

    A fresh computation lands in two places: the result cache (under the
    generation-tagged key, so re-registration invalidates it) and the stale
    store (under the generation-*free* key, tagged with the generation it
    was computed against) so degraded mode can still find it later.
    """
    hit = context.cache.get(request.key)
    if hit is not None:
        return hit, True
    document = compute()
    context.cache.put(request.key, document)
    context.stale.put(request.stale_key, (document, request.generation))
    return document, False


@dataclass(frozen=True)
class _ParsedRequest:
    """A fully validated request: cache keys plus degraded-mode facts."""

    dataset: str
    generation: int
    key: str
    stale_key: str
    allow_stale: bool = False


def _request_keys(
    context: ServiceContext, endpoint: str, dataset: str, params: Mapping
) -> tuple[int, str, str]:
    """The (generation, cache key, stale key) triple for one request."""
    generation = context.registry.generation(dataset)
    key = canonical_key(endpoint, {**params, "generation": generation})
    stale_key = canonical_key(endpoint, dict(params))
    return generation, key, stale_key


@dataclass(frozen=True)
class _QuantifyRequest(_ParsedRequest):
    """One fully validated quantify sub-request plus its cache keys."""

    measure: str = ""
    dimension: str = ""
    k: int = 0
    order: str = ""
    algorithm: str = ""

    @property
    def sweep_key(self) -> tuple[str, str, str, str]:
        """The batch planner's sharing key (see :func:`repro.core.batch.group_key`)."""
        return group_key(self.dataset, self.measure, self.dimension, self.order)


def _parse_quantify(context: ServiceContext, payload) -> _QuantifyRequest:
    """Validate a quantify payload without computing anything heavy."""
    payload = _require_object(payload)
    dataset = _string_field(payload, "dataset")
    dimension = _choice_field(payload, "dimension", _DIMENSIONS)
    k = _int_field(payload, "k", 5)
    if k <= 0:
        raise Unprocessable(f"k must be positive, got {k}")
    order = _choice_field(payload, "order", _ORDERS, "most")
    algorithm = _choice_field(payload, "algorithm", _QUANTIFY_ALGORITHMS, "fagin")
    allow_stale = _bool_field(payload, "allow_stale")
    measure = _string_field(payload, "measure", required=False)
    spec = context.registry.spec(dataset)  # 404 before any heavy work
    measure = (measure or spec.default_measure).lower()

    generation, key, stale_key = _request_keys(
        context,
        "quantify",
        dataset,
        {
            "dataset": dataset,
            "measure": measure,
            "dimension": dimension,
            "k": k,
            "order": order,
            "algorithm": algorithm,
        },
    )
    return _QuantifyRequest(
        dataset=dataset,
        generation=generation,
        key=key,
        stale_key=stale_key,
        allow_stale=allow_stale,
        measure=measure,
        dimension=dimension,
        k=k,
        order=order,
        algorithm=algorithm,
    )


def _quantify_document(request: _QuantifyRequest, result) -> dict:
    document = encode_topk(result, request.dimension)
    document.update(
        dataset=request.dataset,
        measure=request.measure,
        k=request.k,
        algorithm=request.algorithm,
    )
    return document


def _compute_quantify(context: ServiceContext, request: _QuantifyRequest) -> dict:
    fbox = context.registry.fbox(request.dataset, request.measure)
    result = _run_query(
        lambda: fbox.quantify(
            request.dimension,
            k=request.k,
            order=request.order,
            algorithm=request.algorithm,
        )
    )
    context.metrics.record_access_stats(result.stats)
    return _quantify_document(request, result)


def handle_quantify(context: ServiceContext, payload) -> dict:
    """``POST /quantify`` — Problem 1: top/bottom-k of one dimension."""
    request = _parse_quantify(context, payload)
    document, was_hit = _answer(
        context, request, lambda: _compute_quantify(context, request)
    )
    return {**document, "cached": was_hit}


@dataclass(frozen=True)
class _CompareRequest(_ParsedRequest):
    """One fully validated compare request plus its cache keys."""

    measure: str = ""
    dimension: str = ""
    breakdown: str = ""
    r1: Hashable = None
    r2: Hashable = None
    algorithm: str = ""


def _parse_compare(context: ServiceContext, payload) -> _CompareRequest:
    payload = _require_object(payload)
    dataset = _string_field(payload, "dataset")
    dimension = _choice_field(payload, "dimension", _DIMENSIONS)
    breakdown = _choice_field(payload, "breakdown", _DIMENSIONS)
    r1_text = _string_field(payload, "r1")
    r2_text = _string_field(payload, "r2")
    algorithm = _choice_field(payload, "algorithm", _COMPARE_ALGORITHMS, "cube")
    allow_stale = _bool_field(payload, "allow_stale")
    measure = _string_field(payload, "measure", required=False)
    spec = context.registry.spec(dataset)
    measure = (measure or spec.default_measure).lower()
    r1 = _parse_member_or_422(dimension, r1_text)
    r2 = _parse_member_or_422(dimension, r2_text)

    generation, key, stale_key = _request_keys(
        context,
        "compare",
        dataset,
        {
            "dataset": dataset,
            "measure": measure,
            "dimension": dimension,
            "breakdown": breakdown,
            "r1": str(r1),
            "r2": str(r2),
            "algorithm": algorithm,
        },
    )
    return _CompareRequest(
        dataset=dataset,
        generation=generation,
        key=key,
        stale_key=stale_key,
        allow_stale=allow_stale,
        measure=measure,
        dimension=dimension,
        breakdown=breakdown,
        r1=r1,
        r2=r2,
        algorithm=algorithm,
    )


def handle_compare(context: ServiceContext, payload) -> dict:
    """``POST /compare`` — Problem 2: reversal breakdown of r1 vs r2."""
    request = _parse_compare(context, payload)

    def compute() -> dict:
        fbox = context.registry.fbox(request.dataset, request.measure)
        report = _run_query(
            lambda: fbox.compare(
                request.dimension,
                request.r1,
                request.r2,
                request.breakdown,
                algorithm=request.algorithm,
            )
        )
        context.metrics.record_access_stats(report.stats)
        document = encode_comparison(report)
        document.update(
            dataset=request.dataset,
            measure=request.measure,
            algorithm=request.algorithm,
        )
        return document

    document, was_hit = _answer(context, request, compute)
    return {**document, "cached": was_hit}


@dataclass(frozen=True)
class _ExplainRequest(_ParsedRequest):
    """One fully validated explain request plus its cache keys."""

    measure: str = ""
    group: Hashable = None
    query: str = ""
    location: str = ""


def _parse_explain(context: ServiceContext, payload) -> _ExplainRequest:
    payload = _require_object(payload)
    dataset = _string_field(payload, "dataset")
    group_text = _string_field(payload, "group")
    query = _string_field(payload, "query")
    location = _string_field(payload, "location")
    allow_stale = _bool_field(payload, "allow_stale")
    measure = _string_field(payload, "measure", required=False)
    spec = context.registry.spec(dataset)
    measure = (measure or spec.default_measure).lower()
    try:
        group = parse_group(group_text)
    except ReproError as error:
        raise Unprocessable(str(error)) from error

    generation, key, stale_key = _request_keys(
        context,
        "explain",
        dataset,
        {
            "dataset": dataset,
            "measure": measure,
            "group": str(group),
            "query": query,
            "location": location,
        },
    )
    return _ExplainRequest(
        dataset=dataset,
        generation=generation,
        key=key,
        stale_key=stale_key,
        allow_stale=allow_stale,
        measure=measure,
        group=group,
        query=query,
        location=location,
    )


def handle_explain(context: ServiceContext, payload) -> dict:
    """``POST /explain`` — decompose one ``d<g,q,l>`` cell."""
    request = _parse_explain(context, payload)

    def compute() -> dict:
        fbox = context.registry.fbox(request.dataset, request.measure)
        explanation = _run_query(
            lambda: explain_cell(
                fbox.engine, request.group, request.query, request.location
            )
        )
        document = encode_explanation(explanation)
        document.update(dataset=request.dataset, measure=request.measure)
        return document

    document, was_hit = _answer(context, request, compute)
    return {**document, "cached": was_hit}


@dataclass(frozen=True)
class _WhatifRequest(_ParsedRequest):
    """One fully validated what-if request plus its cache keys."""

    measure: str = ""
    group: Hashable = None
    query: str = ""
    location: str = ""
    intervention: str = ""
    alpha: float | None = None
    p: float | None = None
    seed: int = 0


def _parse_whatif(context: ServiceContext, payload) -> _WhatifRequest:
    payload = _require_object(payload)
    dataset = _string_field(payload, "dataset")
    group_text = _string_field(payload, "group")
    query = _string_field(payload, "query")
    location = _string_field(payload, "location")
    intervention = _string_field(payload, "intervention")
    alpha = _number_field(payload, "alpha")
    p = _number_field(payload, "p")
    seed = _int_field(payload, "seed", 0)
    allow_stale = _bool_field(payload, "allow_stale")
    spec = context.registry.spec(dataset)  # 404 before any heavy work
    interventions = available_interventions()
    if intervention.lower() not in interventions:
        raise Unprocessable(
            f"unknown intervention {intervention!r}; available: {interventions}"
        )
    intervention = intervention.lower()
    if family_for_site(spec.site) != GROUP_RANKING:
        raise Unprocessable(
            f"dataset {dataset!r} is a {spec.site} (ranked-list) dataset; "
            "what-if interventions re-rank the shared worker ranking of a "
            "group-ranking dataset"
        )
    try:
        group = parse_group(group_text)
    except ReproError as error:
        raise Unprocessable(str(error)) from error

    generation, key, stale_key = _request_keys(
        context,
        "whatif",
        dataset,
        {
            "dataset": dataset,
            "group": str(group),
            "query": query,
            "location": location,
            "intervention": intervention,
            "alpha": alpha,
            "p": p,
            "seed": seed,
        },
    )
    return _WhatifRequest(
        dataset=dataset,
        generation=generation,
        key=key,
        stale_key=stale_key,
        allow_stale=allow_stale,
        measure=spec.default_measure,
        group=group,
        query=query,
        location=location,
        intervention=intervention,
        alpha=alpha,
        p=p,
        seed=seed,
    )


def handle_whatif(context: ServiceContext, payload) -> dict:
    """``POST /whatif`` — re-rank one cell's ranking, report every measure.

    Purely hypothetical: runs a registered intervention on the worker
    ranking behind ``d<group, query, location>`` and reports the
    before/after value of **all** registered group-ranking measures; the
    dataset and its materializations are untouched.  The F-Box is looked up
    under the dataset's default measure purely to share the already-built
    instance — the intervention consults the measure registry directly.
    """
    request = _parse_whatif(context, payload)

    def compute() -> dict:
        fbox = context.registry.fbox(request.dataset, request.measure)
        result = _run_query(
            lambda: fbox.whatif(
                request.group,
                request.query,
                request.location,
                request.intervention,
                alpha=request.alpha,
                p=request.p,
                seed=request.seed,
            )
        )
        document = encode_whatif(result)
        document.update(
            dataset=request.dataset,
            group=str(request.group),
            query=request.query,
            location=request.location,
        )
        return document

    document, was_hit = _answer(context, request, compute)
    return {**document, "cached": was_hit}


_DEGRADED_PARSERS = {
    "/quantify": _parse_quantify,
    "/compare": _parse_compare,
    "/explain": _parse_explain,
    "/whatif": _parse_whatif,
}

_FRONT_READ_PATHS = ("/quantify", "/compare")
"""Endpoints a sharded front can answer straight from a published columnar
segment.  ``/explain`` and ``/whatif`` are excluded on purpose: both reach
through the unfairness *engine* into per-observation evidence (the raw
worker rankings), which only the owning worker holds — segments carry the
materialized cube and indices, not the raw dataset."""


def _front_quantify(context: ServiceContext, request: _QuantifyRequest, fbox) -> dict:
    result = _run_query(
        lambda: fbox.quantify(
            request.dimension,
            k=request.k,
            order=request.order,
            algorithm=request.algorithm,
        )
    )
    context.metrics.record_access_stats(result.stats)
    return _quantify_document(request, result)


def _front_compare(context: ServiceContext, request: _CompareRequest, fbox) -> dict:
    report = _run_query(
        lambda: fbox.compare(
            request.dimension,
            request.r1,
            request.r2,
            request.breakdown,
            algorithm=request.algorithm,
        )
    )
    context.metrics.record_access_stats(report.stats)
    document = encode_comparison(report)
    document.update(
        dataset=request.dataset,
        measure=request.measure,
        algorithm=request.algorithm,
    )
    return document


def handle_front_read(context: ServiceContext, path: str, payload) -> dict:
    """Answer ``/quantify`` or ``/compare`` on a sharded front straight from
    the owning worker's published columnar segment — no worker roundtrip.

    Raises :class:`~repro.core.colstore.SegmentMiss` whenever the request
    cannot be served this way: a non-read endpoint, the dict core (no
    segment space), nothing published yet for the ``(dataset, measure)``,
    or a payload that fails validation — error responses must come from the
    routed path so fronted and routed answers stay byte-identical.
    """
    from ..core.colstore import AttachedFBox, SegmentMiss

    space = getattr(context.registry, "segments", None)
    if space is None or path not in _FRONT_READ_PATHS:
        raise SegmentMiss(f"no front-side read for {path}")
    parser = _DEGRADED_PARSERS[path]
    try:
        request = parser(context, payload)
    except ServiceError as error:
        raise SegmentMiss(
            "payload must be validated by the owning worker"
        ) from error
    fbox = AttachedFBox.attach(space, request.dataset, request.measure)
    if path == "/quantify":
        compute = lambda: _front_quantify(context, request, fbox)  # noqa: E731
    else:
        compute = lambda: _front_compare(context, request, fbox)  # noqa: E731
    document, was_hit = _answer(context, request, compute)
    return {**document, "cached": was_hit}

REQUEST_PARSERS = _DEGRADED_PARSERS
"""Endpoint → cheap payload parser, for callers that need a request's cache
keys without running it (the application layer's cached fast path)."""


def resolve_degraded(
    context: ServiceContext, endpoint: str, payload, reason: str
) -> dict | None:
    """The degraded-mode answer for a failed request, or ``None``.

    Called by the HTTP layer when a request hit its deadline or an open
    circuit breaker.  Serves the last-known-good document — possibly
    computed against an older dataset generation — but only when the
    request opted in with ``allow_stale: true``, and never silently: the
    document carries ``"degraded": true``, the staleness in generations,
    and the reason, and ``fbox_degraded_responses_total`` is incremented.
    Returns ``None`` (caller re-raises the original error) when the
    endpoint has no degraded mode, the request did not opt in, the payload
    does not re-parse, or there is no last-known-good entry.
    """
    parser = _DEGRADED_PARSERS.get(endpoint)
    if parser is None:
        return None
    try:
        request = parser(context, payload)
    except ServiceError:
        return None
    if not request.allow_stale:
        return None
    entry = context.stale.get(request.stale_key)
    if entry is None:
        return None
    document, generation = entry
    context.metrics.record_degraded()
    return {
        **document,
        "cached": True,
        "degraded": True,
        "degraded_reason": reason,
        "age_generations": max(0, request.generation - generation),
    }


def _batch_items(payload) -> list:
    """Unwrap and bound the batch envelope (whole-batch 400s live here)."""
    if isinstance(payload, Mapping):
        payload = payload.get("requests")
        if payload is None:
            raise BadRequest(
                'batch body must be a JSON array of sub-requests or '
                '{"requests": [...]}'
            )
    if not isinstance(payload, (list, tuple)):
        raise BadRequest(
            f"batch requests must be a JSON array, got {type(payload).__name__}"
        )
    if not payload:
        raise BadRequest("batch is empty; send at least one sub-request")
    if len(payload) > _MAX_BATCH_ITEMS:
        raise BadRequest(
            f"batch exceeds {_MAX_BATCH_ITEMS} sub-requests (got {len(payload)})"
        )
    return list(payload)


def handle_batch(context: ServiceContext, payload) -> dict:
    """``POST /batch`` — many quantify/compare/explain answers in one call.

    The planner groups cold fagin-quantify sub-requests by
    ``(dataset, measure, dimension, order)`` and answers each group with a
    **single** threshold-algorithm sweep at the group's largest ``k``
    (:meth:`repro.core.fbox.FBox.quantify_many`), slicing per-request
    results out of the one heap walk.  Everything else — cache hits,
    naive-algorithm quantifies, compares, explains — runs through the
    existing single-request handlers, so per-item caching semantics are
    identical to the standalone endpoints.

    Item failures never fail the batch: each sub-request carries its own
    ``status`` and either ``body`` or ``error`` in the item-aligned
    ``results`` array, and the batch itself answers 200.  Only envelope
    problems (empty, oversized, non-array) are whole-batch 400s.
    """
    items = _batch_items(payload)
    results: list[dict | None] = [None] * len(items)
    plans: dict[tuple, list[tuple[int, _QuantifyRequest]]] = {}

    for position, item in enumerate(items):
        try:
            item = _require_object(item)
            op = _choice_field(item, "op", _BATCH_OPS)
            if op == "compare":
                results[position] = batch_item_ok(handle_compare(context, item))
            elif op == "explain":
                results[position] = batch_item_ok(handle_explain(context, item))
            else:
                request = _parse_quantify(context, item)
                hit = context.cache.get(request.key)
                if hit is not None:
                    results[position] = batch_item_ok({**hit, "cached": True})
                elif request.algorithm == "fagin":
                    plans.setdefault(request.sweep_key, []).append(
                        (position, request)
                    )
                else:
                    document, was_hit = _answer(
                        context,
                        request,
                        lambda request=request: _compute_quantify(context, request),
                    )
                    results[position] = batch_item_ok(
                        {**document, "cached": was_hit}
                    )
        except ServiceError as error:
            results[position] = batch_item_error(error)

    shared_items = sum(len(members) for members in plans.values() if len(members) > 1)
    for members in plans.values():
        _, first = members[0]
        try:
            fbox = context.registry.fbox(first.dataset, first.measure)
            sweep = _run_query(
                lambda: fbox.quantify_many(
                    first.dimension,
                    [request.k for _, request in members],
                    order=first.order,
                )
            )
            # Every sliced result shares the one sweep's frozen counters;
            # account the sweep once, not once per sub-request.
            context.metrics.record_access_stats(
                next(iter(sweep.values())).stats
            )
            for position, request in members:
                document = _quantify_document(request, sweep[request.k])
                context.cache.put(request.key, document)
                context.stale.put(request.stale_key, (document, request.generation))
                results[position] = batch_item_ok({**document, "cached": False})
        except ServiceError as error:
            for position, _ in members:
                results[position] = batch_item_error(error)

    context.metrics.record_batch(
        items=len(items), groups=len(plans), shared_items=shared_items
    )
    return encode_batch(results, sweep_groups=len(plans), shared_items=shared_items)


_DEFAULT_PAGE_LIMIT = 100
"""Listing page size when the client sends no ``limit`` — large enough that
small catalogs still arrive whole in one response."""

_MAX_PAGE_LIMIT = 1_000


def _page_params(payload) -> tuple[int, int]:
    """Validated ``limit``/``offset`` query params (GET params are strings)."""
    params = payload if isinstance(payload, dict) else {}

    def parse(name: str, default: int, minimum: int) -> int:
        raw = params.get(name, default)
        try:
            value = int(raw)
        except (TypeError, ValueError):
            raise BadRequest(
                f"query param {name!r} must be an integer, got {raw!r}"
            ) from None
        if value < minimum:
            raise BadRequest(
                f"query param {name!r} must be >= {minimum}, got {value}"
            )
        return value

    limit = min(parse("limit", _DEFAULT_PAGE_LIMIT, 1), _MAX_PAGE_LIMIT)
    offset = parse("offset", 0, 0)
    return limit, offset


def _paginate(payload, entries: list) -> tuple[list, dict]:
    """Slice a listing by ``limit``/``offset`` and build the cursor fields.

    ``next_offset`` is the cursor: non-null while more entries remain, so a
    client pages with ``?offset=<next_offset>`` until it comes back null.
    """
    limit, offset = _page_params(payload)
    window = entries[offset : offset + limit]
    next_offset = offset + limit if offset + limit < len(entries) else None
    return window, {
        "count": len(entries),
        "offset": offset,
        "limit": limit,
        "next_offset": next_offset,
    }


def handle_datasets(context: ServiceContext, payload=None) -> tuple[int, dict]:
    """``GET /datasets`` — the registry listing.

    Every entry carries its placement and health facts — ``shard`` (0 when
    sharding is off), ``generation``, and ``breaker`` state — so one call
    answers "where does this dataset live and is it servable".  Under
    sharding the listing is worker-truth: the router overlays each owning
    worker's live load state.  ``limit``/``offset`` query params page the
    listing (``next_offset`` is the cursor) so scenario-scale catalogs
    never produce unbounded responses.
    """
    router = context.router
    if router is not None:
        entries, page = _paginate(payload, router.describe())
        return 200, {
            "datasets": entries,
            "resize": router.resize_status(),
            **page,
        }
    registry = context.registry
    entries = []
    for entry in registry.describe():
        name = entry["name"]
        entry["shard"] = 0
        entry["generation"] = registry.generation(name)
        entry["breaker"] = registry.breaker(name).state
        entry["migrating"] = False
        entry.update(context.ingest.dataset_facts(name))
        entries.append(entry)
    entries, page = _paginate(payload, entries)
    # "resize": null documents that an in-process instance has no worker
    # pool to resize (the sharded listing carries the live state machine).
    return 200, {"datasets": entries, "resize": None, **page}


def handle_scenarios(context: ServiceContext, payload=None) -> tuple[int, dict]:
    """``GET /scenarios`` — the scenario-preset registry, full config echo.

    Same ``limit``/``offset``/``next_offset`` pagination contract as the
    dataset listing.  Lazy import keeps :mod:`repro.scenarios` (which
    imports service modules for its error types) out of this module's
    import cycle.
    """
    from ..scenarios import describe_scenarios

    entries, page = _paginate(payload, describe_scenarios())
    return 200, {"scenarios": entries, **page}


def handle_healthz(context: ServiceContext, payload=None) -> tuple[int, dict]:
    """``GET /healthz`` — liveness only: the process is up and answering.

    Deliberately trivial — orchestrators must not restart a pod because a
    dataset is quarantined; that is readiness (``/readyz``), not liveness.
    """
    return 200, {"status": "ok", "datasets": context.registry.names()}


def handle_readyz(context: ServiceContext, payload=None) -> tuple[int, dict]:
    """``GET /readyz`` — readiness: can this instance serve real answers?

    503 while any preloaded dataset is still building (or not yet loaded)
    or any dataset's breaker is not closed; the body always carries the
    per-dataset breaker state so a probe failure is self-explaining.  Under
    sharding the report is the router's shard-aware one: datasets owned by
    a dead worker show an open breaker (quarantined) until it restarts.
    """
    router = context.router
    resize = None
    if router is not None:
        report = router.health_report()
        resize = router.resize_status()
    else:
        report = [
            dict(entry, shard=0, migrating=False)
            for entry in context.registry.health_report()
        ]
    states = {entry["name"]: entry for entry in report}
    blockers: list[str] = []
    for name in context.require_loaded:
        entry = states.get(name)
        if entry is None:
            blockers.append(f"dataset {name!r} is not registered")
        elif entry["building"]:
            blockers.append(f"dataset {name!r} is still building")
        elif not entry["loaded"]:
            blockers.append(f"dataset {name!r} is not loaded yet")
    for entry in report:
        if entry["breaker"] != "closed":
            blockers.append(
                f"dataset {entry['name']!r} breaker is {entry['breaker']}"
            )
        if entry.get("migrating"):
            blockers.append(
                f"dataset {entry['name']!r} is migrating (live shard-pool "
                "resize)"
            )
    status = 200 if not blockers else 503
    return status, {
        "status": "ready" if not blockers else "unavailable",
        "blockers": blockers,
        "datasets": report,
        "resize": resize,
    }


# ----------------------------------------------------------------------
# GET /schema — the machine-readable API description
# ----------------------------------------------------------------------


def _field(
    name: str,
    type_: str,
    description: str,
    required: bool = False,
    default=None,
    enum: tuple[str, ...] | None = None,
) -> dict:
    entry: dict = {
        "name": name,
        "type": type_,
        "required": required,
        "description": description,
    }
    if default is not None:
        entry["default"] = default
    if enum is not None:
        entry["enum"] = list(enum)
    return entry


def _common_query_fields() -> list[dict]:
    return [
        _field(
            "dataset", "string",
            "registered dataset name (see GET /v1/datasets)", required=True,
        ),
        _field(
            "measure", "string",
            "distance measure; defaults to the dataset's default_measure",
            enum=tuple(available_measures()),
        ),
        _field(
            "allow_stale", "boolean",
            "opt in to a degraded last-known-good answer when the deadline "
            "fires or a breaker is open",
            default=False,
        ),
    ]


def _quantify_fields() -> list[dict]:
    return _common_query_fields() + [
        _field(
            "dimension", "string", "dimension to rank", required=True,
            enum=_DIMENSIONS,
        ),
        _field("k", "integer", "how many members to return (positive)", default=5),
        _field("order", "string", "rank direction", default="most", enum=_ORDERS),
        _field(
            "algorithm", "string", "sweep strategy", default="fagin",
            enum=_QUANTIFY_ALGORITHMS,
        ),
    ]


def _compare_fields() -> list[dict]:
    return _common_query_fields() + [
        _field(
            "dimension", "string", "dimension r1/r2 belong to", required=True,
            enum=_DIMENSIONS,
        ),
        _field(
            "breakdown", "string", "dimension to break the comparison down by",
            required=True, enum=_DIMENSIONS,
        ),
        _field(
            "r1", "string",
            "first member (groups use attr=value[,attr=value] syntax)",
            required=True,
        ),
        _field("r2", "string", "second member, same syntax as r1", required=True),
        _field(
            "algorithm", "string", "comparison strategy", default="cube",
            enum=_COMPARE_ALGORITHMS,
        ),
    ]


def _explain_fields() -> list[dict]:
    return _common_query_fields() + [
        _field(
            "group", "string", "group label, attr=value[,attr=value]",
            required=True,
        ),
        _field("query", "string", "query of the cell to explain", required=True),
        _field("location", "string", "location of the cell to explain", required=True),
    ]


def _whatif_fields() -> list[dict]:
    return [
        _field(
            "dataset", "string",
            "registered dataset name (see GET /v1/datasets); must be a "
            "group-ranking (marketplace) dataset",
            required=True,
        ),
        _field(
            "group", "string",
            "group to repair the ranking for, attr=value[,attr=value]",
            required=True,
        ),
        _field("query", "string", "query of the cell to re-rank", required=True),
        _field("location", "string", "location of the cell to re-rank", required=True),
        _field(
            "intervention", "string", "registered re-ranking intervention",
            required=True, enum=tuple(available_interventions()),
        ),
        _field("alpha", "number", "FA*IR significance level, in (0, 0.5)"),
        _field(
            "p", "number",
            "FA*IR null-hypothesis protected probability; defaults to the "
            "group's share of the ranking",
        ),
        _field(
            "seed", "integer",
            "deterministic tie-break seed for exposure_lp", default=0,
        ),
        _field(
            "allow_stale", "boolean",
            "opt in to a degraded last-known-good answer when the deadline "
            "fires or a breaker is open",
            default=False,
        ),
    ]


def service_schema() -> dict:
    """The ``GET /v1/schema`` document.

    Generated from the same constants the validators consult
    (``_DIMENSIONS``, ``_ORDERS``, the algorithm tables, the batch op list
    and size cap), from the live measure and intervention registries
    (:func:`~repro.core.measures.base.available_measures` and friends — a
    measure registered at runtime appears here with no service edits), and
    from :func:`~repro.service.errors.error_catalog`, so the advertised
    enums and error codes can never drift from what the service actually
    accepts and raises.
    """
    endpoint = lambda method, path, description, **extra: {  # noqa: E731
        "method": method,
        "path": API_PREFIX + path,
        "legacy_path": path,
        "description": description,
        **extra,
    }
    return {
        "version": API_VERSION,
        "mount": API_PREFIX,
        "measures": [
            measure_info(name).describe() for name in available_measures()
        ],
        "interventions": [
            intervention_info(name).describe()
            for name in available_interventions()
        ],
        "legacy": {
            "deprecated": True,
            "sunset": LEGACY_SUNSET,
            "note": "unversioned paths are retired: the default "
            "--legacy-routes gone answers 410 with a v1_path pointer; "
            "--legacy-routes serve restores the deprecated passthrough "
            "(Deprecation: true and Sunset headers) for stragglers",
        },
        "endpoints": [
            endpoint(
                "POST", "/quantify",
                "Problem 1: top/bottom-k unfairness of one dimension",
                request_fields=_quantify_fields(),
            ),
            endpoint(
                "POST", "/compare",
                "Problem 2: reversal breakdown of two members",
                request_fields=_compare_fields(),
            ),
            endpoint(
                "POST", "/explain",
                "decompose one d<g,q,l> cell into contributions",
                request_fields=_explain_fields(),
            ),
            endpoint(
                "POST", "/whatif",
                "hypothetically re-rank one cell's worker ranking with a "
                "fairness intervention; reports before/after for every "
                "registered group-ranking measure",
                request_fields=_whatif_fields(),
            ),
            endpoint(
                "POST", "/batch",
                "many sub-requests in one call, sharing index sweeps",
                request_fields=[
                    _field(
                        "requests", "array",
                        "sub-requests; each carries an 'op' plus that "
                        "endpoint's fields",
                        required=True,
                    ),
                ],
                batch={
                    "max_items": _MAX_BATCH_ITEMS,
                    "ops": list(_BATCH_OPS),
                },
            ),
            endpoint(
                "POST", "/observations",
                "live ingest: fold a batch of new rankings into a dataset "
                "incrementally (delta cube/index maintenance)",
                request_fields=[
                    _field(
                        "dataset", "string",
                        "registered dataset name (see GET /v1/datasets)",
                        required=True,
                    ),
                    _field(
                        "batch_id", "string",
                        "client-supplied idempotency key; a replayed batch "
                        "returns the stored result instead of re-applying",
                    ),
                    _field(
                        "observations", "array",
                        "ranking batches; marketplace items carry query/"
                        "location/ranking (+optional scores), search items "
                        "query/location/results_by_user",
                        required=True,
                    ),
                ],
            ),
            endpoint(
                "GET", "/trends",
                "one cube cell's measure values across ingest generations "
                "(query params: dataset, group, query, location[, measure])",
            ),
            endpoint(
                "POST", "/admin/shards",
                "operations: live-resize the worker pool; migrates moving "
                "datasets' state and flips routing atomically per dataset "
                "(auth: X-Admin-Token when --admin-token is set)",
                request_fields=[
                    _field(
                        "count", "integer",
                        "target shard count (1-64); requires --shards",
                        required=True,
                    ),
                ],
            ),
            endpoint(
                "POST", "/datasets",
                "register a dataset from a named scenario at runtime; the "
                "owning worker builds it lazily on first touch (auth: "
                "X-Admin-Token when --admin-token is set; 409 on name "
                "collision)",
                request_fields=[
                    _field(
                        "name", "string",
                        "registry key for the new dataset",
                        required=True,
                    ),
                    _field(
                        "scenario", "string",
                        "preset name (see GET /v1/scenarios)",
                        required=True,
                    ),
                    _field(
                        "overrides", "object",
                        "scenario field overrides (seed, workers, cities, "
                        "bias_scale, ...); identity fields are protected",
                    ),
                ],
            ),
            endpoint(
                "GET", "/datasets",
                "registered datasets with shard, generation, and breaker "
                "state (query params: limit, offset; next_offset cursor)",
            ),
            endpoint(
                "GET", "/scenarios",
                "named scenario presets with full config echo (query "
                "params: limit, offset; next_offset cursor)",
            ),
            endpoint("GET", "/schema", "this document"),
            endpoint("GET", "/healthz", "liveness: the process is up"),
            endpoint(
                "GET", "/readyz",
                "readiness: 503 while datasets build or breakers are open",
            ),
            endpoint("GET", "/metrics", "Prometheus text exposition"),
        ],
        "errors": error_catalog(),
    }


def handle_schema(context: ServiceContext, payload=None) -> tuple[int, dict]:
    """``GET /schema`` — the machine-readable description of the API."""
    return 200, service_schema()
