"""The threaded transport: ``ThreadingHTTPServer`` fronting the app.

One OS thread per connection, exactly as the service always worked; the
handler's only jobs now are HTTP framing (read the body per the app's
:meth:`~repro.service.app.FBoxApp.plan_body` decision, write the returned
:class:`~repro.service.app.Response`) and connection accounting.  All
routing, validation, admission, deadlines, and metrics live in the app.
"""

from __future__ import annotations

import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import monotonic

from ..app import FBoxApp, Request, format_retry_after

__all__ = ["FBoxServer"]


class FBoxServer(ThreadingHTTPServer):
    """ThreadingHTTPServer adapter carrying the shared application."""

    daemon_threads = True
    # A deep listen backlog: overload policy belongs to the admission
    # controller (fast, explicit 429s), not to kernel SYN-queue drops that
    # surface as opaque connection resets under a burst of clients.
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        app: FBoxApp,
        quiet: bool = True,
    ) -> None:
        super().__init__(address, _RequestHandler)
        self.app = app
        self.quiet = quiet

    @property
    def context(self):
        """The shared service context (registry, cache, metrics, ...)."""
        return self.app.context

    @property
    def request_timeout(self) -> float | None:
        return self.app.request_timeout

    @request_timeout.setter
    def request_timeout(self, value: float | None) -> None:
        self.app.request_timeout = value

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def drain(self, grace: float = 10.0) -> None:
        """Graceful shutdown: refuse new work, let in-flight work finish.

        New arrivals (including queued-behind-admission ones that had not
        yet started) get 503 + ``Connection: close``; requests already
        inside the tracked section — executing or waiting in the admission
        queue — complete normally.  After ``grace`` seconds stragglers are
        abandoned to the normal ``shutdown()`` path.
        """
        self.app.begin_shutdown()
        deadline = monotonic() + grace
        metrics = self.app.context.metrics
        while monotonic() < deadline and metrics.total_in_flight() > 0:
            time.sleep(0.02)
        self.shutdown()

    def server_close(self) -> None:
        super().server_close()
        self.app.close()


class _RequestHandler(BaseHTTPRequestHandler):
    server: FBoxServer  # narrowed for readability
    protocol_version = "HTTP/1.1"
    # The response goes out as two writes (header block, then body); without
    # TCP_NODELAY, Nagle holds the small body segment until the client's
    # delayed ACK (~40ms) acknowledges the headers — a 44ms floor on every
    # keep-alive request.
    disable_nagle_algorithm = True

    def handle(self) -> None:
        # One handler instance per connection: count it so tests (and the
        # keep-alive client) can assert connection reuse from /metrics.
        self.server.app.context.metrics.record_connection()
        super().handle()

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._respond(self.server.app.handle(Request(method="GET", path=self.path)))

    def do_POST(self) -> None:  # noqa: N802
        app = self.server.app
        body = b""
        framing_error = None
        close = False
        if app.is_post_route(self.path):
            plan = app.plan_body(self.headers.get("Content-Length"))
            if plan.error is not None:
                framing_error = plan.error
                close = plan.close
                if plan.drain and not self._drain_body(plan.drain):
                    close = True
            elif plan.read:
                body = self.rfile.read(plan.read)
        self._respond(
            app.handle(
                Request(
                    method="POST",
                    path=self.path,
                    body=body,
                    framing_error=framing_error,
                    close=close,
                    headers={
                        key.lower(): value for key, value in self.headers.items()
                    },
                )
            )
        )

    # ------------------------------------------------------------------
    # Framing plumbing
    # ------------------------------------------------------------------

    def _drain_body(self, length: int) -> bool:
        """Discard ``length`` unread body bytes; False when the read fails."""
        remaining = length
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, 1 << 16))
            if not chunk:
                return False
            remaining -= len(chunk)
        return True

    def _respond(self, response) -> None:
        if response.close:
            self.close_connection = True
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        if response.retry_after is not None:
            self.send_header("Retry-After", format_retry_after(response.retry_after))
        for name, value in response.headers.items():
            self.send_header(name, value)
        if self.close_connection:
            # Tell the client explicitly; HTTP/1.1 defaults to keep-alive.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(response.body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)
