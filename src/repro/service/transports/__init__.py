"""Transport adapters: sockets in, :class:`~repro.service.app.Request` out.

Each transport is a thin shell around one shared
:class:`~repro.service.app.FBoxApp`:

* :mod:`repro.service.transports.threaded` — the original
  ``ThreadingHTTPServer`` front: one OS thread per connection, the app's
  sync surface, and the legacy guard-thread deadline.
* :mod:`repro.service.transports.aio` — an ``asyncio.start_server`` front
  with a stdlib HTTP/1.1 parser and keep-alive; CPU-bound work runs on the
  app's bounded executor so the event loop never blocks.

Both expose the same server API (``serve_forever`` / ``shutdown`` /
``server_close`` / ``drain`` / ``url`` / ``context``) so tests, benchmarks,
and ``serve()`` treat them interchangeably.
"""

from __future__ import annotations

__all__ = ["AioFBoxServer", "FBoxServer"]

from .aio import AioFBoxServer
from .threaded import FBoxServer
