"""The asyncio transport: ``asyncio.start_server`` fronting the app.

One event loop handles every connection; the stdlib-only HTTP/1.1 parser
below speaks keep-alive (and therefore pipelining, since requests on one
connection are answered strictly in order).  The loop itself only ever
parses, routes, and serves cached fast-path answers — every CPU-bound
F-Box call goes through :meth:`~repro.service.app.FBoxApp.handle_async`,
which admits via the controller's async path and executes on the app's
bounded thread pool under an ``asyncio.wait_for`` deadline.  Thread count
is thus a capacity knob (``--executor-workers``), not one-per-connection.

:class:`AioFBoxServer` deliberately mirrors the ``ThreadingHTTPServer``
surface the rest of the repo already drives — eager socket bind in the
constructor (``port=0`` works), blocking ``serve_forever()``, thread-safe
``shutdown()``/``server_close()``, plus ``drain()`` — so tests and
benchmarks run unchanged against either backend.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
from http import HTTPStatus
from time import monotonic

from ..app import FBoxApp, Request, Response, format_retry_after

__all__ = ["AioFBoxServer"]

_MAX_HEADER_COUNT = 128
_HEADER_LINE_LIMIT = 1 << 16


class _ProtocolError(Exception):
    """The request could not be framed at all; answer 400 and hang up."""


class AioFBoxServer:
    """Asyncio front-end with the same server API as the threaded one."""

    def __init__(
        self,
        address: tuple[str, int],
        app: FBoxApp,
        quiet: bool = True,
    ) -> None:
        self.app = app
        self.quiet = quiet
        # Bind eagerly, exactly like ThreadingHTTPServer's constructor, so
        # callers can read the ephemeral port before serve_forever() runs.
        self._socket = socket.create_server(address, backlog=128)
        self.server_address = self._socket.getsockname()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._shutdown_requested = threading.Event()
        # Mirrors ThreadingHTTPServer.__is_shut_down: set while not serving.
        self._done = threading.Event()
        self._done.set()

    @property
    def context(self):
        """The shared service context (registry, cache, metrics, ...)."""
        return self.app.context

    @property
    def request_timeout(self) -> float | None:
        return self.app.request_timeout

    @request_timeout.setter
    def request_timeout(self, value: float | None) -> None:
        self.app.request_timeout = value

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    # ------------------------------------------------------------------
    # Lifecycle (ThreadingHTTPServer-shaped)
    # ------------------------------------------------------------------

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        """Run the event loop on the calling thread until :meth:`shutdown`."""
        del poll_interval  # signature compatibility; the loop needs no polling
        self._done.clear()
        try:
            asyncio.run(self._main())
        finally:
            self._done.set()

    async def _main(self) -> None:
        self._stop = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        server = await asyncio.start_server(
            self._serve_connection, sock=self._socket
        )
        if self._shutdown_requested.is_set():
            self._stop.set()
        async with server:
            await self._stop.wait()

    def shutdown(self) -> None:
        """Stop the listener from another thread; blocks until the loop exits.

        In-flight connection tasks are cancelled as the loop shuts down —
        use :meth:`drain` first for a graceful stop.
        """
        self._shutdown_requested.set()
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass  # the loop finished in the same instant
        self._done.wait()

    def drain(self, grace: float = 10.0) -> None:
        """Graceful shutdown: refuse new work, let in-flight work finish."""
        self.app.begin_shutdown()
        deadline = monotonic() + grace
        metrics = self.app.context.metrics
        while monotonic() < deadline and metrics.total_in_flight() > 0:
            time.sleep(0.02)
        self.shutdown()

    def server_close(self) -> None:
        try:
            self._socket.close()
        except OSError:  # pragma: no cover - already closed by the loop
            pass
        self.app.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        app = self.app
        app.context.metrics.record_connection()
        sock = writer.get_extra_info("socket")
        if sock is not None:
            # Disable Nagle so small responses never sit behind the peer's
            # delayed ACK (a ~40ms floor per keep-alive request otherwise).
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            while True:
                try:
                    parsed = await self._read_request(reader)
                except _ProtocolError as error:
                    await self._write_response(
                        writer, _protocol_error_response(str(error)), close=True
                    )
                    break
                if parsed is None:
                    break
                request, want_close = parsed
                response = await app.handle_async(request)
                close = bool(response.close or want_close)
                await self._write_response(writer, response, close)
                if close:
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            TimeoutError,
            asyncio.IncompleteReadError,
        ):
            pass  # the client went away; nothing sensible left to send
        except asyncio.CancelledError:
            # The loop is tearing down (shutdown() without drain()); the
            # connection is abandoned by design, so end the task quietly
            # instead of leaking a cancellation traceback to the log.
            pass
        finally:
            writer.close()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[Request, bool] | None:
        """Parse one request off the connection; ``None`` on a clean EOF."""
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].upper().startswith("HTTP/"):
            raise _ProtocolError("malformed request line")
        method, path, version = parts[0].upper(), parts[1], parts[2].upper()
        headers = await self._read_headers(reader)
        connection = headers.get("connection", "").lower()
        want_close = "close" in connection or version == "HTTP/1.0"
        if method not in ("GET", "POST"):
            raise _ProtocolError(f"unsupported method {method!r}")

        app = self.app
        body = b""
        framing_error = None
        request_close = False
        if method == "POST" and app.is_post_route(path):
            plan = app.plan_body(headers.get("content-length"))
            if plan.error is not None:
                framing_error = plan.error
                request_close = plan.close
                if plan.drain:
                    try:
                        await reader.readexactly(plan.drain)
                    except asyncio.IncompleteReadError:
                        request_close = True
            elif plan.read:
                body = await reader.readexactly(plan.read)
        request = Request(
            method=method,
            path=path,
            body=body,
            framing_error=framing_error,
            close=request_close,
            headers=headers,
        )
        return request, want_close

    async def _read_headers(self, reader: asyncio.StreamReader) -> dict[str, str]:
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADER_COUNT):
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                return headers
            if len(raw) > _HEADER_LINE_LIMIT:
                raise _ProtocolError("header line too long")
            name, sep, value = raw.decode("latin-1").partition(":")
            if not sep:
                raise _ProtocolError("malformed header line")
            headers[name.strip().lower()] = value.strip()
        raise _ProtocolError("too many headers")

    async def _write_response(
        self, writer: asyncio.StreamWriter, response: Response, close: bool
    ) -> None:
        try:
            phrase = HTTPStatus(response.status).phrase
        except ValueError:  # pragma: no cover - nonstandard status
            phrase = ""
        lines = [
            f"HTTP/1.1 {response.status} {phrase}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(response.body)}",
        ]
        if response.retry_after is not None:
            lines.append(f"Retry-After: {format_retry_after(response.retry_after)}")
        for name, value in response.headers.items():
            lines.append(f"{name}: {value}")
        if close:
            # Tell the client explicitly; HTTP/1.1 defaults to keep-alive.
            lines.append("Connection: close")
        # One write: headers and body in a single segment, so the response
        # never straddles Nagle's unacked-data boundary.
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + response.body)
        await writer.drain()


def _protocol_error_response(message: str) -> Response:
    body = json.dumps(
        {
            "error": {
                "code": "bad_request",
                "kind": "bad_request",
                "message": message,
                "retryable": False,
            }
        },
        sort_keys=True,
    ).encode("utf-8")
    return Response(400, body)
