"""The HTTP layer: routing, timeouts, graceful shutdown.

A :class:`~http.server.ThreadingHTTPServer` gives each request its own
thread; shared state (registry, cache, metrics) lives on the server object
and is internally synchronized.  POST queries run under a per-request
deadline — a guard thread executes the handler and the request thread waits
``timeout`` seconds before answering 503 (the stray computation finishes in
the background and still warms the cache).

``serve`` is the blocking entry point behind ``repro serve``: it installs
SIGTERM/SIGINT handlers that trigger a clean ``shutdown()`` so in-flight
requests drain before the process exits.
"""

from __future__ import annotations

import json
import logging
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter

from .cache import LRUCache
from .errors import BadRequest, NotFound, RequestTimeout, ServiceError
from .handlers import (
    ServiceContext,
    handle_batch,
    handle_compare,
    handle_datasets,
    handle_explain,
    handle_healthz,
    handle_quantify,
)
from .observability import ServiceMetrics, render_metrics
from .registry import DatasetRegistry, default_registry

__all__ = ["FBoxServer", "make_server", "run_with_deadline", "serve"]

_logger = logging.getLogger("repro.service")

_POST_ROUTES = {
    "/quantify": handle_quantify,
    "/compare": handle_compare,
    "/explain": handle_explain,
    "/batch": handle_batch,
}
_GET_ROUTES = {
    "/datasets": handle_datasets,
    "/healthz": handle_healthz,
}

_MAX_BODY_BYTES = 1 << 20  # 1 MiB is plenty for query parameters
_MAX_DRAIN_BYTES = 8 << 20  # past this, closing beats reading an attacker's body


class FBoxServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared service context."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        context: ServiceContext,
        request_timeout: float | None = 30.0,
        quiet: bool = True,
    ) -> None:
        super().__init__(address, _RequestHandler)
        self.context = context
        self.request_timeout = request_timeout
        self.quiet = quiet

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _RequestHandler(BaseHTTPRequestHandler):
    server: FBoxServer  # narrowed for readability
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        if self.path == "/metrics":
            self._tracked("/metrics", self._metrics_response)
            return
        handler = _GET_ROUTES.get(self.path)
        if handler is None:
            self._send_error_response(NotFound(f"no such endpoint: GET {self.path}"))
            return
        self._tracked(
            self.path, lambda: (200, handler(self.server.context))
        )

    def do_POST(self) -> None:  # noqa: N802
        handler = _POST_ROUTES.get(self.path)
        if handler is None:
            self._send_error_response(NotFound(f"no such endpoint: POST {self.path}"))
            return

        def run() -> tuple[int, dict]:
            payload = self._read_json_body()
            document = self._with_deadline(
                lambda: handler(self.server.context, payload)
            )
            return 200, document

        self._tracked(self.path, run)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _tracked(self, endpoint: str, run) -> None:
        """Run one request with metrics: in-flight, latency, status counts."""
        metrics = self.server.context.metrics
        metrics.request_started(endpoint)
        started = perf_counter()
        status = 500
        try:
            try:
                status, document = run()
                body = (
                    document
                    if isinstance(document, bytes)
                    else _json_bytes(document)
                )
                content_type = (
                    "text/plain; version=0.0.4; charset=utf-8"
                    if endpoint == "/metrics"
                    else "application/json"
                )
                self._write(status, body, content_type)
            except ServiceError as error:
                status = error.status
                if isinstance(error, RequestTimeout):
                    metrics.record_timeout()
                self._send_error_response(error)
            except Exception as error:  # pragma: no cover - defensive
                status = 500
                self._write(
                    500,
                    _json_bytes(
                        {"error": {"kind": "internal", "message": str(error)}}
                    ),
                    "application/json",
                )
        finally:
            metrics.request_finished(endpoint, status, perf_counter() - started)

    def _metrics_response(self) -> tuple[int, bytes]:
        context = self.server.context
        text = render_metrics(
            context.metrics,
            context.cache.stats(),
            context.registry.build_counts(),
        )
        return 200, text.encode("utf-8")

    def _with_deadline(self, fn):
        """Run ``fn`` under the server's per-request timeout."""
        return run_with_deadline(
            fn, self.server.request_timeout, self.server.context.metrics
        )

    def _read_json_body(self):
        """Parse the request body, keeping the connection framing coherent.

        This handler speaks HTTP/1.1 keep-alive, so any early 4xx MUST NOT
        leave unread body bytes on the socket — they would be parsed as the
        next pipelined request's start line.  Rejection paths therefore
        either drain the declared body first (bounded by
        ``_MAX_DRAIN_BYTES``) or mark the connection for close so the
        client gets an unambiguous ``Connection: close`` response.
        """
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header or 0)
        except ValueError:
            # Unknown body length: we cannot resync, so drop the connection.
            self.close_connection = True
            raise BadRequest("invalid Content-Length header") from None
        if length <= 0:
            # Nothing was sent, so nothing is left unread; keep-alive is safe.
            raise BadRequest("request body is required")
        if length > _MAX_BODY_BYTES:
            if not self._drain_body(length):
                self.close_connection = True
            raise BadRequest(f"request body exceeds {_MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as error:
            raise BadRequest(f"request body is not valid JSON: {error}") from None

    def _drain_body(self, length: int) -> bool:
        """Discard ``length`` unread body bytes; False when too big to drain."""
        if length > _MAX_DRAIN_BYTES:
            return False
        remaining = length
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, 1 << 16))
            if not chunk:
                return False
            remaining -= len(chunk)
        return True

    def _send_error_response(self, error: ServiceError) -> None:
        body = _json_bytes(
            {"error": {"kind": error.kind, "message": str(error)}}
        )
        self._write(error.status, body, "application/json")

    def _write(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # Tell the client explicitly; HTTP/1.1 defaults to keep-alive.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)


def _json_bytes(document: dict) -> bytes:
    return json.dumps(document, sort_keys=True).encode("utf-8")


def run_with_deadline(fn, timeout: float | None, metrics: ServiceMetrics | None = None):
    """Run ``fn`` on a guard thread, raising 503 after ``timeout`` seconds.

    When the deadline fires, the worker thread is *abandoned*, not killed:
    it keeps running (a successful late result still warms caches), the
    ``abandoned_requests`` counter is bumped, and — the part that used to be
    silently discarded — any exception the abandoned worker eventually
    raises is logged under ``repro.service``.  The abandoned flag is flipped
    under a lock shared with the worker's error path so a failure racing the
    deadline is reported on exactly one side, never dropped.
    """
    if not timeout or timeout <= 0:
        return fn()
    outcome: dict = {}
    done = threading.Event()
    lock = threading.Lock()
    state = {"abandoned": False}

    def worker() -> None:
        try:
            value = fn()
            with lock:
                outcome["value"] = value
        except BaseException as error:  # propagated to the request thread
            with lock:
                outcome["error"] = error
                if state["abandoned"]:
                    _log_abandoned_failure(error)
        finally:
            done.set()

    threading.Thread(target=worker, daemon=True).start()
    if done.wait(timeout):
        if "error" in outcome:
            raise outcome["error"]
        return outcome["value"]
    with lock:
        state["abandoned"] = True
        late_error = outcome.get("error")
    if metrics is not None:
        metrics.record_abandoned()
    if late_error is not None:
        # The worker failed in the instant between the wait expiring and the
        # abandon flag being set; report it here instead.
        _log_abandoned_failure(late_error)
    raise RequestTimeout(
        f"request exceeded the {timeout:g}s deadline; retry once the "
        "F-Box is warm"
    )


def _log_abandoned_failure(error: BaseException) -> None:
    _logger.error(
        "abandoned request worker failed after its deadline: %s",
        error,
        exc_info=error,
    )


def make_server(
    registry: DatasetRegistry | None = None,
    host: str = "127.0.0.1",
    port: int = 8080,
    cache_size: int = 256,
    request_timeout: float | None = 30.0,
    quiet: bool = True,
) -> FBoxServer:
    """Build a ready-to-serve F-Box server (``port=0`` picks an ephemeral one)."""
    context = ServiceContext(
        registry=registry if registry is not None else default_registry(),
        cache=LRUCache(cache_size),
        metrics=ServiceMetrics(),
    )
    return FBoxServer((host, port), context, request_timeout=request_timeout, quiet=quiet)


def serve(
    registry: DatasetRegistry | None = None,
    host: str = "127.0.0.1",
    port: int = 8080,
    cache_size: int = 256,
    request_timeout: float | None = 30.0,
    preload: bool = False,
    quiet: bool = False,
) -> int:
    """Run the service until SIGTERM/SIGINT; returns a process exit code.

    Must be called from the main thread (signal handlers are installed).
    """
    server = make_server(
        registry=registry,
        host=host,
        port=port,
        cache_size=cache_size,
        request_timeout=request_timeout,
        quiet=quiet,
    )
    if preload:
        print("preloading datasets ...", flush=True)
        server.context.registry.preload()

    def _shutdown(signum, frame) -> None:
        # shutdown() must not run on the serve_forever thread; hand it off.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {
        sig: signal.signal(sig, _shutdown) for sig in (signal.SIGTERM, signal.SIGINT)
    }
    datasets = ", ".join(server.context.registry.names()) or "none"
    print(f"F-Box service listening on {server.url} (datasets: {datasets})", flush=True)
    try:
        server.serve_forever()
    finally:
        server.server_close()
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    print("F-Box service stopped", flush=True)
    return 0
