"""The HTTP layer: routing, timeouts, graceful shutdown.

A :class:`~http.server.ThreadingHTTPServer` gives each request its own
thread; shared state (registry, cache, metrics) lives on the server object
and is internally synchronized.  POST queries run under a per-request
deadline — a guard thread executes the handler and the request thread waits
``timeout`` seconds before answering 503 (the stray computation finishes in
the background and still warms the cache).

``serve`` is the blocking entry point behind ``repro serve``: it installs
SIGTERM/SIGINT handlers that trigger a clean ``shutdown()`` so in-flight
requests drain before the process exits.
"""

from __future__ import annotations

import json
import logging
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter

from .cache import LRUCache
from .errors import (
    BadRequest,
    CircuitOpen,
    NotFound,
    RequestTimeout,
    ServiceError,
)
from .faults import FaultInjector, faults_from_env
from .handlers import (
    ServiceContext,
    handle_batch,
    handle_compare,
    handle_datasets,
    handle_explain,
    handle_healthz,
    handle_quantify,
    handle_readyz,
    resolve_degraded,
)
from .observability import ServiceMetrics, render_metrics
from .registry import DatasetRegistry, default_registry
from .resilience import AdmissionController, BreakerConfig

__all__ = ["FBoxServer", "make_server", "run_with_deadline", "serve"]

_logger = logging.getLogger("repro.service")

_POST_ROUTES = {
    "/quantify": handle_quantify,
    "/compare": handle_compare,
    "/explain": handle_explain,
    "/batch": handle_batch,
}
_GET_ROUTES = {
    "/datasets": handle_datasets,
    "/healthz": handle_healthz,
    "/readyz": handle_readyz,
}

_MAX_BODY_BYTES = 1 << 20  # 1 MiB is plenty for query parameters
_MAX_DRAIN_BYTES = 8 << 20  # past this, closing beats reading an attacker's body


class FBoxServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared service context."""

    daemon_threads = True
    # A deep listen backlog: overload policy belongs to the admission
    # controller (fast, explicit 429s), not to kernel SYN-queue drops that
    # surface as opaque connection resets under a burst of clients.
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        context: ServiceContext,
        request_timeout: float | None = 30.0,
        quiet: bool = True,
    ) -> None:
        super().__init__(address, _RequestHandler)
        self.context = context
        self.request_timeout = request_timeout
        self.quiet = quiet

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _RequestHandler(BaseHTTPRequestHandler):
    server: FBoxServer  # narrowed for readability
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        if self.path == "/metrics":
            self._tracked("/metrics", self._metrics_response)
            return
        handler = _GET_ROUTES.get(self.path)
        if handler is None:
            self._send_error_response(NotFound(f"no such endpoint: GET {self.path}"))
            return
        # Health, readiness, and listings are never admission-controlled:
        # a saturated pool must still answer its probes.
        self._tracked(self.path, lambda: handler(self.server.context))

    def do_POST(self) -> None:  # noqa: N802
        handler = _POST_ROUTES.get(self.path)
        if handler is None:
            self._send_error_response(NotFound(f"no such endpoint: POST {self.path}"))
            return
        context = self.server.context

        def run() -> tuple[int, dict]:
            payload = self._read_json_body()

            def execute():
                if context.faults is not None:
                    context.faults.fail("handler", self.path)
                    context.faults.delay(self.path)
                return handler(context, payload)

            def admitted():
                if context.admission is None:
                    return self._with_deadline(execute)
                with context.admission.admit():
                    return self._with_deadline(execute)

            try:
                return 200, admitted()
            except (RequestTimeout, CircuitOpen) as error:
                # Graceful degradation: requests that opted in with
                # ``allow_stale`` get the last-known-good answer, loudly
                # marked, instead of the error.
                degraded = resolve_degraded(
                    context, self.path, payload, reason=error.kind
                )
                if degraded is None:
                    raise
                return 200, degraded

        self._tracked(self.path, run)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _tracked(self, endpoint: str, run) -> None:
        """Run one request with metrics: in-flight, latency, status counts."""
        metrics = self.server.context.metrics
        metrics.request_started(endpoint)
        started = perf_counter()
        status = 500
        content_type = "application/json"
        retry_after: float | None = None
        try:
            status, document = run()
            body = (
                document
                if isinstance(document, bytes)
                else _json_bytes(document)
            )
            if endpoint == "/metrics":
                content_type = "text/plain; version=0.0.4; charset=utf-8"
        except ServiceError as error:
            status = error.status
            retry_after = error.retry_after
            if isinstance(error, RequestTimeout):
                metrics.record_timeout()
            body = _error_body(error)
        except Exception as error:  # pragma: no cover - defensive
            status = 500
            body = _json_bytes(
                {"error": {"kind": "internal", "message": str(error)}}
            )
        # Count the request before its bytes reach the socket: a client that
        # reads its response and immediately scrapes /metrics must find the
        # request already recorded.
        metrics.request_finished(endpoint, status, perf_counter() - started)
        self._write(status, body, content_type, retry_after=retry_after)

    def _metrics_response(self) -> tuple[int, bytes]:
        context = self.server.context
        text = render_metrics(
            context.metrics,
            context.cache.stats(),
            context.registry.build_counts(),
            admission_stats=(
                context.admission.snapshot()
                if context.admission is not None
                else None
            ),
            breaker_states=context.registry.breaker_states(),
            fault_stats=(
                context.faults.snapshot() if context.faults is not None else None
            ),
        )
        return 200, text.encode("utf-8")

    def _with_deadline(self, fn):
        """Run ``fn`` under the server's per-request timeout."""
        return run_with_deadline(
            fn, self.server.request_timeout, self.server.context.metrics
        )

    def _read_json_body(self):
        """Parse the request body, keeping the connection framing coherent.

        This handler speaks HTTP/1.1 keep-alive, so any early 4xx MUST NOT
        leave unread body bytes on the socket — they would be parsed as the
        next pipelined request's start line.  Rejection paths therefore
        either drain the declared body first (bounded by
        ``_MAX_DRAIN_BYTES``) or mark the connection for close so the
        client gets an unambiguous ``Connection: close`` response.
        """
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header or 0)
        except ValueError:
            # Unknown body length: we cannot resync, so drop the connection.
            self.close_connection = True
            raise BadRequest("invalid Content-Length header") from None
        if length <= 0:
            # Nothing was sent, so nothing is left unread; keep-alive is safe.
            raise BadRequest("request body is required")
        if length > _MAX_BODY_BYTES:
            if not self._drain_body(length):
                self.close_connection = True
            raise BadRequest(f"request body exceeds {_MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as error:
            raise BadRequest(f"request body is not valid JSON: {error}") from None

    def _drain_body(self, length: int) -> bool:
        """Discard ``length`` unread body bytes; False when too big to drain."""
        if length > _MAX_DRAIN_BYTES:
            return False
        remaining = length
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, 1 << 16))
            if not chunk:
                return False
            remaining -= len(chunk)
        return True

    def _send_error_response(self, error: ServiceError) -> None:
        self._write(
            error.status,
            _error_body(error),
            "application/json",
            retry_after=error.retry_after,
        )

    def _write(
        self,
        status: int,
        body: bytes,
        content_type: str,
        retry_after: float | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            # HTTP wants integral seconds; round up so clients never retry early.
            self.send_header("Retry-After", str(max(1, int(-(-retry_after // 1)))))
        if self.close_connection:
            # Tell the client explicitly; HTTP/1.1 defaults to keep-alive.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)


def _json_bytes(document: dict) -> bytes:
    return json.dumps(document, sort_keys=True).encode("utf-8")


def _error_body(error: ServiceError) -> bytes:
    payload: dict = {"kind": error.kind, "message": str(error)}
    if error.extra:
        payload.update(error.extra)
    if error.retry_after is not None:
        payload["retry_after"] = error.retry_after
    return _json_bytes({"error": payload})


def run_with_deadline(fn, timeout: float | None, metrics: ServiceMetrics | None = None):
    """Run ``fn`` on a guard thread, raising 503 after ``timeout`` seconds.

    When the deadline fires, the worker thread is *abandoned*, not killed:
    it keeps running (a successful late result still warms caches), the
    ``abandoned_requests`` counter is bumped, and — the part that used to be
    silently discarded — any exception the abandoned worker eventually
    raises is logged under ``repro.service``.  The abandoned flag is flipped
    under a lock shared with the worker's error path so a failure racing the
    deadline is reported on exactly one side, never dropped.
    """
    if not timeout or timeout <= 0:
        return fn()
    outcome: dict = {}
    done = threading.Event()
    lock = threading.Lock()
    state = {"abandoned": False}

    def worker() -> None:
        try:
            value = fn()
            with lock:
                outcome["value"] = value
        except BaseException as error:  # propagated to the request thread
            with lock:
                outcome["error"] = error
                if state["abandoned"]:
                    _log_abandoned_failure(error)
        finally:
            done.set()

    threading.Thread(target=worker, daemon=True).start()
    if done.wait(timeout):
        if "error" in outcome:
            raise outcome["error"]
        return outcome["value"]
    with lock:
        state["abandoned"] = True
        late_error = outcome.get("error")
    if metrics is not None:
        metrics.record_abandoned()
    if late_error is not None:
        # The worker failed in the instant between the wait expiring and the
        # abandon flag being set; report it here instead.
        _log_abandoned_failure(late_error)
    raise RequestTimeout(
        f"request exceeded the {timeout:g}s deadline; retry once the "
        "F-Box is warm"
    )


def _log_abandoned_failure(error: BaseException) -> None:
    _logger.error(
        "abandoned request worker failed after its deadline: %s",
        error,
        exc_info=error,
    )


def make_server(
    registry: DatasetRegistry | None = None,
    host: str = "127.0.0.1",
    port: int = 8080,
    cache_size: int = 256,
    cache_ttl: float | None = None,
    request_timeout: float | None = 30.0,
    max_concurrency: int = 8,
    queue_depth: int = 16,
    faults: FaultInjector | None = None,
    quiet: bool = True,
) -> FBoxServer:
    """Build a ready-to-serve F-Box server (``port=0`` picks an ephemeral one).

    ``max_concurrency``/``queue_depth`` size the admission controller (0
    concurrency disables shedding).  ``faults`` defaults to whatever the
    ``FBOX_FAULTS`` environment variable configures (usually nothing); when
    an injector is attached it is also shared with the registry so
    ``dataset_load`` rules reach the loaders.
    """
    if registry is None:
        if faults is None:
            faults = faults_from_env()
        registry = default_registry(faults=faults)
    else:
        # One injector end-to-end: reuse the registry's if it has one, else
        # share ours (or the env's) with it so dataset_load rules land.
        if faults is None:
            faults = (
                registry.faults if registry.faults is not None else faults_from_env()
            )
        if registry.faults is None:
            registry.faults = faults
    admission = None
    if max_concurrency > 0:
        admission = AdmissionController(
            max_concurrency=max_concurrency,
            max_queue=queue_depth,
            queue_timeout=request_timeout,
        )
    context = ServiceContext(
        registry=registry,
        cache=LRUCache(cache_size, default_ttl=cache_ttl),
        metrics=ServiceMetrics(),
        stale=LRUCache(max(cache_size, 1)),
        admission=admission,
        faults=faults,
    )
    return FBoxServer((host, port), context, request_timeout=request_timeout, quiet=quiet)


def serve(
    registry: DatasetRegistry | None = None,
    host: str = "127.0.0.1",
    port: int = 8080,
    cache_size: int = 256,
    cache_ttl: float | None = None,
    request_timeout: float | None = 30.0,
    max_concurrency: int = 8,
    queue_depth: int = 16,
    preload: bool = False,
    quiet: bool = False,
) -> int:
    """Run the service until SIGTERM/SIGINT; returns a process exit code.

    Must be called from the main thread (signal handlers are installed).
    With ``preload`` the server starts listening immediately and
    materializes datasets on a background thread; ``/readyz`` answers 503
    until every preloaded dataset is built (``/healthz`` is 200 throughout).
    """
    server = make_server(
        registry=registry,
        host=host,
        port=port,
        cache_size=cache_size,
        cache_ttl=cache_ttl,
        request_timeout=request_timeout,
        max_concurrency=max_concurrency,
        queue_depth=queue_depth,
        quiet=quiet,
    )
    if preload:
        context = server.context
        context.require_loaded = tuple(context.registry.names())
        print("preloading datasets in the background ...", flush=True)

        def _preload() -> None:
            try:
                context.registry.preload()
            except Exception as error:  # breaker has already counted it
                _logger.error("dataset preload failed: %s", error, exc_info=error)

        threading.Thread(target=_preload, daemon=True, name="fbox-preload").start()

    def _shutdown(signum, frame) -> None:
        # shutdown() must not run on the serve_forever thread; hand it off.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {
        sig: signal.signal(sig, _shutdown) for sig in (signal.SIGTERM, signal.SIGINT)
    }
    datasets = ", ".join(server.context.registry.names()) or "none"
    print(f"F-Box service listening on {server.url} (datasets: {datasets})", flush=True)
    try:
        server.serve_forever()
    finally:
        server.server_close()
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    print("F-Box service stopped", flush=True)
    return 0
