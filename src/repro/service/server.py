"""Service wiring: build an app, pick a transport, run it until SIGTERM.

The heavy lifting moved out of this module: request policy lives in
:mod:`repro.service.app` (the transport-agnostic application layer) and the
HTTP fronts live in :mod:`repro.service.transports` — ``threaded`` (the
original thread-per-connection server) and ``aio`` (the asyncio front).
What remains here is the composition root: :func:`make_server` builds an
:class:`~repro.service.app.FBoxApp` and wraps it in the requested backend;
:func:`serve` is the blocking entry point behind ``repro serve`` that
installs SIGTERM/SIGINT handlers which *drain* — new arrivals get 503 +
``Connection: close`` while admitted and queued requests finish — before
the listener stops.

``FBoxServer``, ``make_app``, and ``run_with_deadline`` are re-exported
for compatibility with existing imports.
"""

from __future__ import annotations

import logging
import signal
import threading

from .app import FBoxApp, make_app, run_with_deadline
from .faults import FaultInjector
from .registry import DatasetRegistry
from .transports.aio import AioFBoxServer
from .transports.threaded import FBoxServer

__all__ = [
    "AioFBoxServer",
    "BACKENDS",
    "FBoxServer",
    "make_app",
    "make_server",
    "run_with_deadline",
    "serve",
]

_logger = logging.getLogger("repro.service")

BACKENDS = ("threads", "asyncio")
"""Transport choices for ``make_server``/``serve``/``repro serve --backend``."""


def make_server(
    registry: DatasetRegistry | None = None,
    host: str = "127.0.0.1",
    port: int = 8080,
    cache_size: int = 256,
    cache_ttl: float | None = None,
    request_timeout: float | None = 30.0,
    max_concurrency: int = 8,
    queue_depth: int = 16,
    faults: FaultInjector | None = None,
    quiet: bool = True,
    backend: str = "threads",
    executor_workers: int | None = None,
    shards: int = 0,
    alert_threshold: float | None = None,
    core: str = "dict",
    admin_token: str | None = None,
    legacy_routes: str = "gone",
) -> FBoxServer | AioFBoxServer:
    """Build a ready-to-serve F-Box server (``port=0`` picks an ephemeral one).

    ``backend`` selects the transport: ``"threads"`` (one OS thread per
    connection, the legacy model) or ``"asyncio"`` (one event loop, CPU
    work on the app's bounded executor sized by ``executor_workers``).
    Both fronts share the same application, so every endpoint, error path,
    and resilience behavior is identical.  ``shards`` selects the execution
    backend behind either front: ``0`` executes in-process (today's model),
    ``N > 0`` spreads dataset ownership across ``N`` worker processes for
    real CPU parallelism.  ``core`` selects the F-Box storage engine —
    ``"dict"`` (reference) or ``"columnar"`` (flat numpy blocks in
    shared-memory segments).  See :func:`repro.service.app.make_app` for
    the remaining knobs.
    """
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    app = make_app(
        registry=registry,
        cache_size=cache_size,
        cache_ttl=cache_ttl,
        request_timeout=request_timeout,
        max_concurrency=max_concurrency,
        queue_depth=queue_depth,
        faults=faults,
        executor_workers=executor_workers,
        shards=shards,
        alert_threshold=alert_threshold,
        core=core,
        admin_token=admin_token,
        legacy_routes=legacy_routes,
    )
    if backend == "asyncio":
        return AioFBoxServer((host, port), app, quiet=quiet)
    return FBoxServer((host, port), app, quiet=quiet)


def serve(
    registry: DatasetRegistry | None = None,
    host: str = "127.0.0.1",
    port: int = 8080,
    cache_size: int = 256,
    cache_ttl: float | None = None,
    request_timeout: float | None = 30.0,
    max_concurrency: int = 8,
    queue_depth: int = 16,
    preload: bool = False,
    quiet: bool = False,
    backend: str = "threads",
    executor_workers: int | None = None,
    drain_grace: float = 10.0,
    shards: int = 0,
    alert_threshold: float | None = None,
    core: str = "dict",
    admin_token: str | None = None,
    legacy_routes: str = "gone",
) -> int:
    """Run the service until SIGTERM/SIGINT; returns a process exit code.

    Must be called from the main thread (signal handlers are installed).
    A signal triggers a *drain*: the app stops admitting (new requests get
    503 ``shutting_down`` + ``Connection: close``), requests already
    executing or waiting in the admission queue complete, and after at most
    ``drain_grace`` seconds the listener stops.  With ``preload`` the
    server starts listening immediately and materializes datasets on a
    background thread; ``/readyz`` answers 503 until every preloaded
    dataset is built (``/healthz`` is 200 throughout).
    """
    server = make_server(
        registry=registry,
        host=host,
        port=port,
        cache_size=cache_size,
        cache_ttl=cache_ttl,
        request_timeout=request_timeout,
        max_concurrency=max_concurrency,
        queue_depth=queue_depth,
        quiet=quiet,
        backend=backend,
        executor_workers=executor_workers,
        shards=shards,
        alert_threshold=alert_threshold,
        core=core,
        admin_token=admin_token,
        legacy_routes=legacy_routes,
    )
    if preload:
        context = server.context
        context.require_loaded = tuple(context.registry.names())
        print("preloading datasets in the background ...", flush=True)

        def _preload() -> None:
            try:
                context.registry.preload()
            except Exception as error:  # breaker has already counted it
                _logger.error("dataset preload failed: %s", error, exc_info=error)

        threading.Thread(target=_preload, daemon=True, name="fbox-preload").start()

    def _shutdown(signum, frame) -> None:
        # drain() must not run on the serve_forever thread; hand it off.
        threading.Thread(
            target=server.drain, args=(drain_grace,), daemon=True
        ).start()

    previous = {
        sig: signal.signal(sig, _shutdown) for sig in (signal.SIGTERM, signal.SIGINT)
    }
    datasets = ", ".join(server.context.registry.names()) or "none"
    mode = f"backend: {backend}" + (f", shards: {shards}" if shards else "")
    print(
        f"F-Box service listening on {server.url} "
        f"({mode}, datasets: {datasets})",
        flush=True,
    )
    try:
        server.serve_forever()
    finally:
        server.server_close()
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    print("F-Box service stopped", flush=True)
    return 0
