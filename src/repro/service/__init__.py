"""The F-Box query service: a long-lived, concurrent fairness-query server.

The paper frames the F-Box (Figures 6 and 9) as a reusable component that
answers quantification and comparison queries on demand.  This package turns
the one-shot CLI into that component: a stdlib-only HTTP JSON API that

* loads or synthesizes each dataset **once** and shares :class:`~repro.core.
  fbox.FBox` instances across requests (:mod:`repro.service.registry`),
* caches hot query results in a thread-safe LRU (:mod:`repro.service.cache`),
* records per-endpoint latency histograms, in-flight gauges, and cumulative
  index-access counts (:mod:`repro.service.observability`), and
* maps invalid inputs to structured 4xx JSON errors rather than stack traces
  (:mod:`repro.service.handlers`, :mod:`repro.service.server`),
* stays up under stress: bounded admission with fast 429 shedding, a
  per-dataset circuit breaker around loads/builds, and opt-in degraded
  (stale last-known-good) answers (:mod:`repro.service.resilience`), all
  exercised by deterministic chaos via :mod:`repro.service.faults`.

Start it with ``repro serve`` or programmatically::

    from repro.service import make_server
    server = make_server(port=0)          # ephemeral port
    server.serve_forever()
"""

from __future__ import annotations

from .app import FBoxApp, Request, Response, make_app
from .cache import LRUCache
from .encoding import (
    canonical_key,
    encode_comparison,
    encode_explanation,
    encode_topk,
    parse_member,
)
from .faults import FaultInjector, FaultRule, InjectedFault, faults_from_env
from .observability import ServiceMetrics
from .registry import DatasetRegistry, DatasetSpec, default_registry
from .resilience import AdmissionController, BreakerConfig, CircuitBreaker

# The transport stack (repro.service.server and repro.service.transports)
# is resolved lazily: importing the application layer — or any module it
# depends on — must never pull in http.server or asyncio streams.  The
# layering test asserts exactly that.
_SERVER_EXPORTS = ("AioFBoxServer", "FBoxServer", "make_server", "serve")


def __getattr__(name: str):
    if name in _SERVER_EXPORTS:
        from . import server

        return getattr(server, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "FBoxApp",
    "Request",
    "Response",
    "make_app",
    "LRUCache",
    "ServiceMetrics",
    "DatasetRegistry",
    "DatasetSpec",
    "default_registry",
    "FBoxServer",
    "AioFBoxServer",
    "make_server",
    "serve",
    "canonical_key",
    "encode_topk",
    "encode_comparison",
    "encode_explanation",
    "parse_member",
    "AdmissionController",
    "BreakerConfig",
    "CircuitBreaker",
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
    "faults_from_env",
]
