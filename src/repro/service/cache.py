"""A thread-safe LRU cache for query results, with hit/miss/eviction counters.

The service's workloads are read-heavy and highly repetitive — the same
top-k and comparison queries arrive over and over — so a small LRU over
canonicalized request parameters (:func:`repro.service.encoding.
canonical_key`) absorbs most of the load once an F-Box is warm.  Counters
feed the ``/metrics`` endpoint.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable

__all__ = ["LRUCache"]

_MISSING = object()


class LRUCache:
    """Least-recently-used mapping with a fixed capacity.

    ``capacity <= 0`` disables caching entirely (every lookup misses and
    nothing is stored) — useful for benchmarking the cold path.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = int(capacity)
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, default=None):
        """The cached value for ``key`` (refreshing recency), else ``default``."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value) -> None:
        """Store ``key → value``, evicting the least-recently-used overflow."""
        if self.capacity <= 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """A consistent snapshot of size and counters."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
