"""A thread-safe LRU cache for query results, with hit/miss/eviction counters.

The service's workloads are read-heavy and highly repetitive — the same
top-k and comparison queries arrive over and over — so a small LRU over
canonicalized request parameters (:func:`repro.service.encoding.
canonical_key`) absorbs most of the load once an F-Box is warm.  Counters
feed the ``/metrics`` endpoint.

Entries may carry a **TTL**: a cache-wide ``default_ttl`` and/or a per-entry
``ttl`` passed to :meth:`LRUCache.put`.  An expired entry behaves exactly
like an absent one — the lookup counts as a miss, the entry is dropped, and
the drop feeds the eviction counter (plus a dedicated ``expirations``
counter so operators can tell age-outs from capacity pressure).  Generation
tags folded into keys by the handlers keep working unchanged: TTL bounds
*staleness in time*, generations bound *staleness across re-registration*.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Hashable

__all__ = ["LRUCache"]

_MISSING = object()
_UNSET = object()


class LRUCache:
    """Least-recently-used mapping with a fixed capacity and optional TTLs.

    ``capacity <= 0`` disables caching entirely (every lookup misses and
    nothing is stored) — useful for benchmarking the cold path.
    ``default_ttl`` is the max age in seconds applied to every entry unless
    :meth:`put` overrides it (``None`` = live until evicted).  The clock is
    injectable so tests can age entries deterministically.
    """

    def __init__(
        self,
        capacity: int = 256,
        default_ttl: float | None = None,
        clock=time.monotonic,
    ) -> None:
        self.capacity = int(capacity)
        self.default_ttl = default_ttl
        self._clock = clock
        self._entries: OrderedDict[Hashable, tuple[object, float | None]] = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def get(self, key: Hashable, default=None):
        """The cached value for ``key`` (refreshing recency), else ``default``.

        An entry past its TTL is dropped on sight: the lookup is a miss and
        the drop counts as both an expiration and an eviction.
        """
        with self._lock:
            entry = self._entries.get(key, _MISSING)
            if entry is _MISSING:
                self.misses += 1
                return default
            value, expires_at = entry
            if expires_at is not None and self._clock() >= expires_at:
                del self._entries[key]
                self.misses += 1
                self.expirations += 1
                self.evictions += 1
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def peek(self, key: Hashable, default=None):
        """Like :meth:`get`, but an *absent* entry is not counted as a miss.

        This is the fast-path lookup: the application layer peeks before
        dispatching to the execution pool, and on a miss the handler will
        consult the cache again on the slow path — which is where the one
        true miss is recorded.  A present entry behaves exactly like
        :meth:`get` (hit counted, recency refreshed, TTL enforced); an
        expired one is dropped and counted as expiration + eviction but
        not as a miss.
        """
        with self._lock:
            entry = self._entries.get(key, _MISSING)
            if entry is _MISSING:
                return default
            value, expires_at = entry
            if expires_at is not None and self._clock() >= expires_at:
                del self._entries[key]
                self.expirations += 1
                self.evictions += 1
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value, ttl=_UNSET) -> None:
        """Store ``key → value``, evicting the least-recently-used overflow.

        ``ttl`` overrides the cache-wide ``default_ttl`` for this entry
        (``None`` = never expires).
        """
        if self.capacity <= 0:
            return
        max_age = self.default_ttl if ttl is _UNSET else ttl
        expires_at = None if max_age is None else self._clock() + max_age
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (value, expires_at)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            entry = self._entries.get(key, _MISSING)
            if entry is _MISSING:
                return False
            _, expires_at = entry
            return expires_at is None or self._clock() < expires_at

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """A consistent snapshot of size and counters."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
            }
