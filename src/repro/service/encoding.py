"""Machine-readable encodings of F-Box results, shared by CLI and service.

One encoder per result type so ``repro quantify --json``, ``repro compare
--json``, and the HTTP endpoints emit byte-identical JSON documents, plus the
canonicalization that turns request parameters into stable cache keys.

Groups appear in two places with different needs: *inputs* are parsed from
the compact ``attr=value[,attr=value]`` syntax (:func:`parse_member`), and
*outputs* carry both the human-readable name and the exact predicate mapping
so callers can round-trip them.
"""

from __future__ import annotations

import json
from typing import Hashable, Mapping

from typing import Sequence

from ..core.comparison import ComparisonReport
from ..core.explain import CellExplanation
from ..core.fagin import TopKResult
from ..core.groups import Group
from ..core.indices import AccessStats
from ..core.interventions import InterventionResult
from ..exceptions import ReproError
from .errors import ServiceError

__all__ = [
    "parse_group",
    "parse_member",
    "member_payload",
    "encode_topk",
    "encode_comparison",
    "encode_explanation",
    "encode_whatif",
    "batch_item_ok",
    "batch_item_error",
    "encode_batch",
    "canonical_key",
]


def parse_group(text: str) -> Group:
    """Parse the CLI/service group syntax ``attr=value[,attr=value]``."""
    predicates: dict[str, str] = {}
    for part in text.split(","):
        if "=" not in part:
            raise ReproError(
                f"group members are written as attr=value[,attr=value]; got {text!r}"
            )
        name, value = part.split("=", 1)
        name, value = name.strip(), value.strip()
        if not name or not value:
            raise ReproError(
                f"group predicates need a non-empty attribute and value; got {text!r}"
            )
        predicates[name] = value
    return Group(predicates)


def parse_member(dimension: str, text: str) -> Hashable:
    """Parse one dimension member: groups get label syntax, others are literal."""
    if dimension == "group":
        return parse_group(text)
    return text


def member_payload(member: Hashable) -> dict:
    """Encode one dimension member; groups carry their predicates."""
    if isinstance(member, Group):
        return {"name": member.name, "predicates": dict(member.predicates)}
    return {"name": str(member)}


def _stats_payload(stats: AccessStats) -> dict:
    return {
        "sorted_accesses": stats.sorted_accesses,
        "random_accesses": stats.random_accesses,
    }


def encode_topk(result: TopKResult, dimension: str) -> dict:
    """JSON document for a Problem 1 (quantification) result."""
    return {
        "kind": "quantification",
        "dimension": dimension,
        "order": result.order,
        "entries": [
            {**member_payload(key), "unfairness": value}
            for key, value in result.entries
        ],
        "rounds": result.rounds,
        "early_stopped": result.early_stopped,
        "access_stats": _stats_payload(result.stats),
    }


def encode_comparison(report: ComparisonReport) -> dict:
    """JSON document for a Problem 2 (comparison) result."""
    return {
        "kind": "comparison",
        "dimension": report.dimension,
        "breakdown": report.breakdown_dimension,
        "r1": member_payload(report.r1),
        "r2": member_payload(report.r2),
        "overall": {"r1": report.overall_r1, "r2": report.overall_r2},
        "rows": [
            {
                **member_payload(row.member),
                "value_r1": row.value_r1,
                "value_r2": row.value_r2,
                "reversed": row.reversed_vs_overall,
            }
            for row in report.rows
        ],
        "reversed_members": [
            member_payload(member)["name"] for member in report.reversed_members
        ],
        "access_stats": _stats_payload(report.stats),
    }


def encode_explanation(explanation: CellExplanation) -> dict:
    """JSON document for a cell explanation."""
    return {
        "kind": "explanation",
        "group": member_payload(explanation.group),
        "query": explanation.query,
        "location": explanation.location,
        "unfairness": explanation.value,
        "narrative": explanation.narrative(),
        "contributions": [
            {
                "comparable": member_payload(contribution.comparable),
                "distance": contribution.distance,
                "group_size": contribution.group_size,
                "comparable_size": contribution.comparable_size,
            }
            for contribution in explanation.contributions
        ],
    }


def encode_whatif(result: InterventionResult) -> dict:
    """JSON document for a what-if intervention result.

    ``measures`` reports before/after/delta for every registered
    group-ranking measure that is defined on this cell; negative deltas mean
    the intervention reduced that measure's unfairness.
    """
    return {
        "kind": "whatif",
        "intervention": result.intervention,
        "original": list(result.original.items),
        "reranked": list(result.reranked.items),
        "moved": result.moved,
        "measures": {
            name: {
                "before": result.before[name],
                "after": result.after[name],
                "delta": result.after[name] - result.before[name],
            }
            for name in sorted(result.before)
        },
    }


def batch_item_ok(document: Mapping) -> dict:
    """One successful sub-request inside a batch envelope."""
    return {"status": 200, "body": dict(document)}


def batch_item_error(error: ServiceError) -> dict:
    """One failed sub-request: its own status and structured error body.

    Mirrors the single-endpoint error JSON so clients can share decoding
    logic; the enclosing batch still answers 200 (item failures are data,
    not transport errors).
    """
    return {
        "status": error.status,
        "error": {
            "code": error.code,
            "kind": error.kind,
            "message": str(error),
            "retryable": error.retryable,
        },
    }


def encode_batch(
    results: Sequence[Mapping], sweep_groups: int, shared_items: int
) -> dict:
    """The ``POST /batch`` response envelope.

    ``results`` is item-aligned with the request array; ``sweep_groups``
    and ``shared_items`` expose how much index-sweep sharing the planner
    achieved for this batch.
    """
    results = [dict(result) for result in results]
    succeeded = sum(1 for result in results if result.get("status") == 200)
    return {
        "kind": "batch",
        "count": len(results),
        "succeeded": succeeded,
        "failed": len(results) - succeeded,
        "sweep_groups": sweep_groups,
        "shared_items": shared_items,
        "results": results,
    }


def canonical_key(endpoint: str, params: Mapping[str, object]) -> str:
    """A stable cache key: endpoint plus canonically serialized parameters.

    Parameters are JSON-serialized with sorted keys and no whitespace, so two
    requests that differ only in field order (or absent-vs-default fields the
    caller normalized away) map to the same key.
    """
    return endpoint + ":" + json.dumps(
        params, sort_keys=True, separators=(",", ":"), default=str
    )
